//! The cluster router: N independent `fmml-serve` nodes behind one
//! wire-compatible endpoint.
//!
//! ```text
//!             ┌──────────────────────── router ────────────────────────┐
//!  clients ──▶│ frontend reader ─▶ dedup/replay ─▶ per-session backend │──▶ serve node A
//!   (Hello/   │   (per session)      (ReplayLog)        link           │──▶ serve node B
//!  Interval)  │        ▲                                 │            │──▶ serve node C
//!             │        └── replies ◀── link reader ◀─────┘            │
//!             │  prober: MetricsDump liveness + queue-depth load      │
//!             │  ring: seeded consistent hash over resume tokens      │
//!             └────────────────────────────────────────────────────────┘
//! ```
//!
//! ## Placement
//!
//! Sessions are placed by consistent hashing ([`crate::ring::HashRing`])
//! keyed on the *router-minted* resume token, so placement survives
//! client reconnects (same token → same shard) and node join/leave
//! moves only ring-adjacent token ranges.
//!
//! ## Exactly-once across the router hop
//!
//! The router terminates the PR-7 resume protocol: it mints the token,
//! keeps the per-session [`ReplayLog`] (record-before-send), and on
//! client reconnect replays past `last_acked` — exactly the single-node
//! semantics, just moved one hop out. Toward the backends the router
//! keeps, per session: `pending` (intervals forwarded but unanswered)
//! and `history` (the last `window_intervals - 1` *ingested* updates
//! per port — the ones answered Ack/Imputed). A backend's sliding
//! window is a pure function of the last W ingested updates, so when a
//! backend dies the router re-creates the session elsewhere by
//! replaying `history` as warm-up (replies swallowed — the client
//! already has them) and re-sending `pending` in order: the new
//! backend's replies are bitwise-identical in every semantic field, the
//! client sees each seq answered exactly once, and no interval is lost.
//! Duplicate client retransmits are answered from the replay log
//! without re-feeding any window; a reply racing a migration is dropped
//! by the `replay.get(seq)` guard on the new link.

use crate::ring::HashRing;
use fmml_obs::trace::{self, TraceContext};
use fmml_obs::{log_event, Clock, Counter, Gauge, Histogram, Unit};
use fmml_serve::protocol::{
    encode_frame_with, write_bytes, Frame, FrameReader, RawFrame, WireCodec, HEADER_LEN,
    MAX_FRAME_LEN,
};
use fmml_serve::{Accepted, Conn, Connector, ReplayLog, TcpConnector, TcpTransport, Transport};
use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

static CL_SESSIONS: Counter = Counter::new("cluster.sessions");
static CL_ACTIVE: Gauge = Gauge::new("cluster.sessions.active");
static CL_FORWARDED: Counter = Counter::new("cluster.forwarded");
static CL_REPLIES: Counter = Counter::new("cluster.replies");
static CL_REPLAYED: Counter = Counter::new("cluster.replayed");
static CL_RESUMES: Counter = Counter::new("cluster.resumes");
static CL_MIGRATIONS: Counter = Counter::new("cluster.migrations");
static CL_WARMUP: Counter = Counter::new("cluster.warmup_replayed");
static CL_PROBE_FAILS: Counter = Counter::new("cluster.probe.failures");
static CL_STUCK: Counter = Counter::new("cluster.stuck_resends");
static CL_BACKENDS_UP: Gauge = Gauge::new("cluster.backends.up");
static CL_ROUTE_US: Histogram = Histogram::new("cluster.route_us", Unit::Micros);

/// Router tuning knobs. Every duration reads the injected [`Clock`]:
/// under the simulation harness's virtual clock, probe patience, dial
/// deadlines and the pending-repair timeout all advance with virtual
/// time, so a simtest seed explores timeout behaviour deterministically
/// instead of racing the wall clock.
#[derive(Debug, Clone)]
pub struct RouterConfig {
    /// Frontend bind address (TCP spawn only); port `0` is ephemeral.
    pub addr: String,
    /// Seed of the placement ring — two routers configured with the
    /// same seed and members place sessions identically.
    pub ring_seed: u64,
    /// Virtual nodes per backend on the ring.
    pub vnodes: usize,
    /// Router-side per-session replay window (client resumes).
    pub replay_window: usize,
    /// Liveness probe cadence (injected clock — virtual under sim).
    pub probe_interval: Duration,
    /// Probe reply patience (injected clock). A healthy backend answers
    /// before any time passes; only a stalled link spends this.
    pub probe_timeout: Duration,
    /// Consecutive probe failures before a backend is marked down and
    /// removed from the ring.
    pub probe_failures: u32,
    /// Backend dial+handshake patience (injected clock).
    pub dial_timeout: Duration,
    /// How long an in-flight interval may go unanswered (injected
    /// clock) before its session is force-migrated and everything still
    /// pending is re-sent. This is the repair path for partition
    /// stalls: a frame written into a silently-partitioned link
    /// produces no I/O error and no reply until the partition heals —
    /// which may be never. Only reply absence reveals it.
    pub pending_timeout: Duration,
    /// Frame cap on client connections.
    pub client_frame_len: usize,
    /// Frame cap on router↔backend links — raised above the client cap
    /// because migration warm-up batches ride on them.
    pub backend_frame_len: usize,
    /// Socket read poll granularity.
    pub read_timeout: Duration,
    /// Socket write timeout (slow-reader guard).
    pub write_timeout: Duration,
    /// Sessions whose client vanished are kept resumable this long
    /// (injected clock) before being dropped.
    pub parked_ttl: Duration,
    /// Preferred wire codec for client sessions and backend links. The
    /// router negotiates [`WireCodec::Bin1`] only with peers that
    /// advertise it; everyone else stays on JSON, so mixed fleets keep
    /// working (`--wire` on `fmml cluster`).
    pub wire: WireCodec,
    /// Time source for probe cadence, dial/pending deadlines and parked
    /// TTLs.
    pub clock: Clock,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            addr: "127.0.0.1:0".into(),
            ring_seed: 0x5eed_0c15,
            vnodes: 64,
            replay_window: 1024,
            probe_interval: Duration::from_millis(200),
            probe_timeout: Duration::from_millis(250),
            probe_failures: 3,
            dial_timeout: Duration::from_secs(2),
            pending_timeout: Duration::from_secs(2),
            client_frame_len: MAX_FRAME_LEN,
            backend_frame_len: 4 * MAX_FRAME_LEN,
            read_timeout: Duration::from_millis(25),
            write_timeout: Duration::from_secs(2),
            parked_ttl: Duration::from_secs(30),
            wire: WireCodec::Json,
            clock: Clock::System,
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Per-router counters backing the frontend's `StatsReply`.
#[derive(Default)]
struct RCounters {
    sessions: AtomicU64,
    active: AtomicU64,
    accepted: AtomicU64,
    malformed: AtomicU64,
    replies: AtomicU64,
    resumes: AtomicU64,
    migrations: AtomicU64,
    replayed: AtomicU64,
}

impl RCounters {
    fn stats_frame(&self) -> Frame {
        Frame::StatsReply {
            sessions: self.sessions.load(Ordering::Relaxed),
            active_sessions: self.active.load(Ordering::Relaxed),
            accepted: self.accepted.load(Ordering::Relaxed),
            rejected: 0,
            malformed: self.malformed.load(Ordering::Relaxed),
            replies: self.replies.load(Ordering::Relaxed),
            batches: 0,
            deadline_misses: 0,
            violations: 0,
            slow_disconnects: 0,
        }
    }
}

/// One backend's registration + health state.
struct BackendEntry<B> {
    connector: Arc<B>,
    up: bool,
    fails: u32,
    /// Last probed `slo.queue_depth` (load signal; `-1` = unknown).
    load: i64,
}

/// Introspection snapshot of one backend ([`RouterHandle::backends`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BackendInfo {
    pub name: String,
    pub up: bool,
    /// Last probed queue depth (`-1` before the first successful probe).
    pub load: i64,
}

/// An interval forwarded to a backend and not yet answered.
struct PendingEntry {
    port: usize,
    /// The client's `Interval` frame exactly as it arrived on the wire
    /// (any codec — backend readers sniff per frame), forwarded and
    /// re-sent verbatim on migration.
    bytes: Vec<u8>,
    /// Injected-clock send time (virtual under the simulation harness).
    sent_at: Instant,
    trace_id: Option<u64>,
}

/// One ingested update retained for migration warm-up.
struct HistEntry {
    seq: u64,
    port: usize,
    bytes: Vec<u8>,
}

/// The backend-facing half of a session, guarded by one mutex: which
/// shard it lives on, the write half of the link, and the migration
/// bookkeeping. `epoch` increments on every (re)placement; a link
/// reader only acts while its epoch is current, so a superseded link
/// can never corrupt state after a migration.
struct RouteState<CB: Conn> {
    backend: String,
    writer: Option<CB>,
    epoch: u64,
    /// Codec the current backend link negotiated in its `Welcome` —
    /// what router-originated frames on this link (`Bye`) are encoded
    /// in. Routed payloads pass through verbatim regardless.
    link: WireCodec,
    pending: BTreeMap<u64, PendingEntry>,
    history: VecDeque<HistEntry>,
    /// Warm-up seqs whose backend replies must be dropped (the client
    /// was already answered before the migration).
    swallow: HashSet<u64>,
    /// Client said `Bye`; re-send it after any migration so the drain
    /// handshake completes on the new shard.
    bye: bool,
}

impl<CB: Conn> RouteState<CB> {
    /// Retain `seq`'s update for warm-up, keeping at most `w - 1`
    /// entries per port (exactly the window a fresh backend needs).
    fn push_history(&mut self, seq: u64, port: usize, bytes: Vec<u8>, window_intervals: usize) {
        let cap = window_intervals.saturating_sub(1);
        if cap == 0 {
            return;
        }
        self.history.push_back(HistEntry { seq, port, bytes });
        let count = self.history.iter().filter(|h| h.port == port).count();
        if count > cap {
            if let Some(pos) = self.history.iter().position(|h| h.port == port) {
                self.history.remove(pos);
            }
        }
    }
}

struct SessionInner<CF: Conn, CB: Conn> {
    id: u64,
    token: String,
    /// The client's `Hello` with resume fields stripped — re-sent to
    /// every backend the session is placed on.
    hello: Frame,
    window_intervals: usize,
    /// Codec negotiated with the client at birth; fixed for the whole
    /// lineage (resumes restate it) because the replay log stores
    /// encoded reply bytes.
    codec: WireCodec,
    deadline_ms: AtomicU64,
    front: Mutex<Option<CF>>,
    replay: Mutex<ReplayLog>,
    highest_seq: AtomicU64,
    answered: AtomicU64,
    state: Mutex<RouteState<CB>>,
    done: AtomicBool,
    parked_at: Mutex<Option<Instant>>,
}

impl<CF: Conn, CB: Conn> SessionInner<CF, CB> {
    fn done(&self) -> bool {
        self.done.load(Ordering::Acquire)
    }

    /// Write `bytes` to the client if one is attached; a failed write
    /// parks the session (the replay log already has the reply).
    fn send_client(&self, bytes: &[u8]) -> bool {
        let mut g = self.front.lock().unwrap_or_else(PoisonError::into_inner);
        match g.as_mut() {
            None => false,
            Some(c) => match write_bytes(c, bytes) {
                Ok(()) => true,
                Err(_) => {
                    c.shutdown_both();
                    *g = None;
                    false
                }
            },
        }
    }

    /// Commit a reply: replay log + watermark, *then* the client write
    /// (record-before-send, like the single-node server).
    fn commit_reply(&self, seq: u64, bytes: &[u8]) {
        self.highest_seq.fetch_max(seq, Ordering::AcqRel);
        self.replay
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .record(seq, bytes);
        self.answered.fetch_add(1, Ordering::Relaxed);
        self.send_client(bytes);
    }
}

/// Live sessions by resume token.
type SessionMap<CF, BC> = HashMap<String, Arc<SessionInner<CF, BC>>>;

struct RouterShared<CF: Conn, B: Connector> {
    cfg: RouterConfig,
    ring: Mutex<HashRing>,
    backends: Mutex<BTreeMap<String, BackendEntry<B>>>,
    sessions: Mutex<SessionMap<CF, B::Conn>>,
    threads: Mutex<Vec<JoinHandle<()>>>,
    shutdown: AtomicBool,
    counters: RCounters,
    next_session: AtomicU64,
    token_seed: Mutex<u64>,
}

impl<CF: Conn, B: Connector> RouterShared<CF, B> {
    fn shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    fn mint_token(&self) -> String {
        let mut seed = self
            .token_seed
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        format!("rtok-{:016x}", splitmix64(&mut seed))
    }

    fn reap_threads(&self) {
        let mut ts = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
        ts.retain(|h| !h.is_finished());
    }

    fn track(&self, h: JoinHandle<()>) {
        let mut ts = self.threads.lock().unwrap_or_else(PoisonError::into_inner);
        ts.retain(|t| !t.is_finished());
        ts.push(h);
    }

    fn backends_up(&self) -> usize {
        self.backends
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .values()
            .filter(|b| b.up)
            .count()
    }

    /// Mark `name` failed (dial error or probe miss); past the failure
    /// budget it leaves the ring and its sessions migrate. Returns true
    /// if this call demoted it.
    fn mark_backend_failed(&self, name: &str) -> bool {
        let mut demoted = false;
        {
            let mut bs = self.backends.lock().unwrap_or_else(PoisonError::into_inner);
            if let Some(b) = bs.get_mut(name) {
                b.fails = b.fails.saturating_add(1);
                CL_PROBE_FAILS.inc();
                if b.up && b.fails >= self.cfg.probe_failures {
                    b.up = false;
                    demoted = true;
                }
            }
        }
        if demoted {
            log_event!("cluster.backend.down", "backend" = name);
            self.ring
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(name);
            CL_BACKENDS_UP.set(self.backends_up() as i64);
        }
        demoted
    }
}

/// A running router, generic over the frontend connection type and the
/// backend connector (`TcpStream`/`TcpConnector` in production,
/// `SimConn`/`SimConnector` under the simulation harness).
pub struct RouterHandle<CF: Conn = TcpStream, B: Connector = TcpConnector> {
    addr: Option<SocketAddr>,
    shared: Arc<RouterShared<CF, B>>,
    acceptor: Option<JoinHandle<()>>,
    prober: Option<JoinHandle<()>>,
}

impl<B: Connector + Send + Sync + 'static> RouterHandle<TcpStream, B> {
    /// The bound frontend address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr.expect("TCP router always has a bound address")
    }
}

impl<CF: Conn, B: Connector + Send + Sync + 'static> RouterHandle<CF, B> {
    /// Register a backend and (optimistically) add it to the ring. The
    /// prober demotes it if it turns out to be unreachable. A join
    /// rebalances: only sessions in the ring ranges the new node took
    /// over migrate onto it.
    pub fn add_backend(&self, name: &str, connector: B) {
        {
            let mut bs = self
                .shared
                .backends
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            bs.insert(
                name.to_string(),
                BackendEntry {
                    connector: Arc::new(connector),
                    up: true,
                    fails: 0,
                    load: -1,
                },
            );
        }
        self.shared
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .add(name);
        CL_BACKENDS_UP.set(self.shared.backends_up() as i64);
        log_event!("cluster.backend.join", "backend" = name);
        rebalance(&self.shared);
    }

    /// Gracefully remove a backend: take it off the ring and migrate
    /// its sessions elsewhere (warm-up replay preserves exactly-once).
    pub fn remove_backend(&self, name: &str) {
        self.shared
            .ring
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name);
        self.shared
            .backends
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(name);
        CL_BACKENDS_UP.set(self.shared.backends_up() as i64);
        log_event!("cluster.backend.leave", "backend" = name);
        rebalance(&self.shared);
    }

    /// Health + load snapshot of every registered backend.
    pub fn backends(&self) -> Vec<BackendInfo> {
        self.shared
            .backends
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .iter()
            .map(|(name, b)| BackendInfo {
                name: name.clone(),
                up: b.up,
                load: b.load,
            })
            .collect()
    }

    /// This router's counters as a [`Frame::StatsReply`].
    pub fn stats(&self) -> Frame {
        self.shared.counters.stats_frame()
    }

    /// `(sessions migrated, sessions resumed, replies replayed)`.
    pub fn cluster_stats(&self) -> (u64, u64, u64) {
        (
            self.shared.counters.migrations.load(Ordering::Relaxed),
            self.shared.counters.resumes.load(Ordering::Relaxed),
            self.shared.counters.replayed.load(Ordering::Relaxed),
        )
    }

    /// Sessions currently tracked (active + parked).
    pub fn session_count(&self) -> usize {
        self.shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .len()
    }

    /// Stop accepting, kill every session and link, join all threads.
    /// Returns the router's final stats.
    pub fn shutdown(mut self) -> Frame {
        self.shared.shutdown.store(true, Ordering::Release);
        if let Some(vc) = self.shared.cfg.clock.virtual_handle() {
            vc.set_auto_advance(true);
        }
        // Wake every blocked reader by killing its connection.
        let sessions: Vec<_> = {
            let s = self
                .shared
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            s.values().cloned().collect()
        };
        for s in sessions {
            s.done.store(true, Ordering::Release);
            if let Some(c) = s
                .front
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
            {
                c.shutdown_both();
            }
            if let Some(c) = s
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .writer
                .take()
            {
                c.shutdown_both();
            }
        }
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        if let Some(p) = self.prober.take() {
            let _ = p.join();
        }
        loop {
            let drained = {
                let mut ts = self
                    .shared
                    .threads
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                std::mem::take(&mut *ts)
            };
            if drained.is_empty() {
                break;
            }
            for t in drained {
                let _ = t.join();
            }
        }
        log_event!(
            "cluster.shutdown",
            "sessions" = self.shared.counters.sessions.load(Ordering::Relaxed),
            "migrations" = self.shared.counters.migrations.load(Ordering::Relaxed)
        );
        self.shared.counters.stats_frame()
    }
}

/// Spawn a TCP router on `cfg.addr`. Backends are registered afterwards
/// via [`RouterHandle::add_backend`].
pub fn spawn(cfg: RouterConfig) -> io::Result<RouterHandle<TcpStream, TcpConnector>> {
    let transport = TcpTransport::bind(&cfg.addr)?;
    let addr = transport.addr();
    let mut handle = spawn_with(transport, cfg);
    handle.addr = Some(addr);
    Ok(handle)
}

/// Spawn a router over an arbitrary frontend [`Transport`] — the
/// simulation harness passes a `SimTransport` here and per-backend
/// `SimConnector`s to [`RouterHandle::add_backend`], and the whole
/// cluster runs in memory on virtual time.
pub fn spawn_with<F, B>(frontend: F, cfg: RouterConfig) -> RouterHandle<F::Conn, B>
where
    F: Transport,
    B: Connector + Send + Sync + 'static,
{
    let token_seed = cfg.ring_seed ^ 0x0be5_5ed5_eed5_eed5;
    let shared = Arc::new(RouterShared {
        ring: Mutex::new(HashRing::new(cfg.ring_seed, cfg.vnodes)),
        cfg,
        backends: Mutex::new(BTreeMap::new()),
        sessions: Mutex::new(HashMap::new()),
        threads: Mutex::new(Vec::new()),
        shutdown: AtomicBool::new(false),
        counters: RCounters::default(),
        next_session: AtomicU64::new(0),
        token_seed: Mutex::new(token_seed),
    });

    let acceptor = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cluster-acceptor".into())
            .spawn(move || {
                let desc = frontend.desc();
                log_event!("cluster.listening", "addr" = desc.as_str());
                loop {
                    match frontend.accept() {
                        Accepted::Conn(conn) => {
                            let sh = Arc::clone(&shared);
                            let h = std::thread::Builder::new()
                                .name("cluster-session".into())
                                .spawn(move || handle_client(&sh, conn))
                                .expect("spawn cluster session");
                            shared.track(h);
                        }
                        Accepted::Retry => {
                            if shared.shutting_down() {
                                break;
                            }
                            shared.reap_threads();
                            std::thread::sleep(Duration::from_millis(2));
                        }
                        Accepted::Closed => break,
                    }
                }
            })
            .expect("spawn cluster acceptor")
    };

    let prober = {
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("cluster-prober".into())
            .spawn(move || prober_loop(&shared))
            .expect("spawn cluster prober")
    };

    RouterHandle {
        addr: None,
        shared,
        acceptor: Some(acceptor),
        prober: Some(prober),
    }
}

/// Dial a backend and answer one `MetricsDump`. Returns the probed
/// queue depth (load signal) on success. Patience runs on the injected
/// clock: under a virtual clock a stalled probe times out when the
/// driver advances time, not when the wall clock does — so the loop
/// must also honor `abort` (shutdown), or a probe in flight when the
/// driver stops pumping time would never reach its deadline and the
/// prober join would hang.
fn probe_backend<B: Connector>(
    connector: &B,
    clock: &Clock,
    patience: Duration,
    abort: impl Fn() -> bool,
) -> Result<i64, ()> {
    let conn = connector.connect().map_err(|_| ())?;
    let _ = conn.set_read_timeout(Some(Duration::from_millis(2)));
    let _ = conn.set_write_timeout(Some(patience));
    let read_half = conn.try_clone().map_err(|_| ())?;
    let mut writer = conn;
    let dump =
        encode_frame_with(&Frame::MetricsDump, WireCodec::Json, MAX_FRAME_LEN).map_err(|_| ())?;
    write_bytes(&mut writer, &dump).map_err(|_| ())?;
    let mut reader = FrameReader::new(read_half);
    let deadline = clock.now() + patience;
    loop {
        match reader.poll_frame() {
            Ok(Some(Frame::MetricsReply { json })) => {
                let load = serde_json::from_str::<serde_json::Value>(&json)
                    .ok()
                    .and_then(|v| {
                        v.get("metrics")
                            .and_then(|m| m.get("slo.queue_depth"))
                            .and_then(|d| d.as_i64())
                    })
                    .unwrap_or(0);
                return Ok(load);
            }
            Ok(Some(_)) | Ok(None) => {
                if clock.now() >= deadline || abort() {
                    return Err(());
                }
            }
            Err(_) => return Err(()),
        }
    }
}

/// Health loop: probe every backend each tick, demote after
/// `probe_failures` consecutive misses (ring leave + migration),
/// promote on recovery (ring join + rebalance), and expire parked
/// sessions past their TTL.
fn prober_loop<CF: Conn, B: Connector + Send + Sync + 'static>(shared: &Arc<RouterShared<CF, B>>) {
    loop {
        if shared.shutting_down() {
            return;
        }
        let snapshot: Vec<(String, Arc<B>, bool)> = {
            let bs = shared
                .backends
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            bs.iter()
                .map(|(n, b)| (n.clone(), Arc::clone(&b.connector), b.up))
                .collect()
        };
        for (name, connector, was_up) in snapshot {
            let result = probe_backend(
                connector.as_ref(),
                &shared.cfg.clock,
                shared.cfg.probe_timeout,
                || shared.shutting_down(),
            );
            match result {
                Ok(load) => {
                    let mut promoted = false;
                    {
                        let mut bs = shared
                            .backends
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner);
                        if let Some(b) = bs.get_mut(&name) {
                            b.fails = 0;
                            b.load = load;
                            if !b.up {
                                b.up = true;
                                promoted = true;
                            }
                        }
                    }
                    if promoted {
                        log_event!("cluster.backend.up", "backend" = name.as_str());
                        shared
                            .ring
                            .lock()
                            .unwrap_or_else(PoisonError::into_inner)
                            .add(&name);
                        CL_BACKENDS_UP.set(shared.backends_up() as i64);
                        rebalance(shared);
                    }
                }
                Err(()) => {
                    if shared.mark_backend_failed(&name) && was_up {
                        rebalance(shared);
                    }
                }
            }
        }
        sweep_parked(shared);
        sweep_stuck(shared);
        shared.reap_threads();
        shared.cfg.clock.sleep(shared.cfg.probe_interval);
    }
}

/// Drop parked sessions whose TTL (injected clock) expired.
fn sweep_parked<CF: Conn, B: Connector>(shared: &Arc<RouterShared<CF, B>>) {
    let now = shared.cfg.clock.now();
    let expired: Vec<Arc<SessionInner<CF, B::Conn>>> = {
        let sessions = shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        sessions
            .values()
            .filter(|s| {
                s.parked_at
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .is_some_and(|at| now.saturating_duration_since(at) > shared.cfg.parked_ttl)
            })
            .cloned()
            .collect()
    };
    for s in expired {
        s.done.store(true, Ordering::Release);
        if let Some(c) = s
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .writer
            .take()
        {
            c.shutdown_both();
        }
        shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .remove(&s.token);
        log_event!("cluster.session.expired", "session" = s.id);
    }
}

/// Force-migrate any session whose oldest in-flight interval has gone
/// unanswered past `pending_timeout`. A partition stalls frames
/// already written into the link without an error, for possibly
/// unbounded time. The epoch bump re-dials the ring target (possibly
/// the same node), shuts the old link (crash semantics: its stalled
/// frames die with it) and re-sends everything still pending; the
/// epoch guard on the old link keeps a late original reply from
/// double-committing, and warm-up makes the re-computed replies
/// bitwise identical.
fn sweep_stuck<CF: Conn, B: Connector + Send + Sync + 'static>(shared: &Arc<RouterShared<CF, B>>) {
    let timeout = shared.cfg.pending_timeout;
    let now = shared.cfg.clock.now();
    let sessions: Vec<Arc<SessionInner<CF, B::Conn>>> = {
        let s = shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.values().cloned().collect()
    };
    for session in sessions {
        if session.done() {
            continue;
        }
        let epoch = {
            let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
            let aged = st
                .pending
                .values()
                .any(|p| now.saturating_duration_since(p.sent_at) > timeout);
            // A goodbye whose link died (or that never found a live
            // backend) has no pending entry to age: `bye` with no
            // writer is the same "will never be answered" state.
            let orphaned_bye = st.bye && st.writer.is_none();
            if !aged && !orphaned_bye {
                continue;
            }
            st.epoch
        };
        CL_STUCK.inc();
        log_event!("cluster.session.stuck", "session" = session.id);
        migrate(shared, &session, epoch);
    }
}

/// Re-place every session whose ring assignment no longer matches where
/// it lives — exactly the sessions in the token ranges a join/leave
/// moved; everyone else stays put (bounded churn).
///
/// The migrations run on a tracked background thread, never inline on
/// the caller: membership changes arrive through the public API from
/// arbitrary threads, and under a virtual clock the caller (the test
/// driver) is the very thread that advances time — migrating inline
/// would park it inside dial deadlines only it could expire.
fn rebalance<CF: Conn, B: Connector + Send + Sync + 'static>(shared: &Arc<RouterShared<CF, B>>) {
    let shared2 = Arc::clone(shared);
    let spawned = std::thread::Builder::new()
        .name("cluster-rebalance".into())
        .spawn(move || rebalance_sync(&shared2));
    match spawned {
        Ok(h) => shared.track(h),
        // Out of threads: degrade to the blocking path rather than
        // dropping the rebalance.
        Err(_) => rebalance_sync(shared),
    }
}

fn rebalance_sync<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
) {
    let sessions: Vec<Arc<SessionInner<CF, B::Conn>>> = {
        let s = shared
            .sessions
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        s.values().cloned().collect()
    };
    for session in sessions {
        if session.done() {
            continue;
        }
        let desired = {
            let ring = shared.ring.lock().unwrap_or_else(PoisonError::into_inner);
            ring.assign(&session.token).map(String::from)
        };
        let Some(desired) = desired else { continue };
        let epoch = {
            let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
            // Re-place when the assignment moved — or when the session
            // has no live link at all (it was stranded by an empty ring
            // and its assigned member has since come back: the name
            // matches but nothing is connected).
            if st.backend == desired && st.writer.is_some() {
                continue;
            }
            st.epoch
        };
        migrate(shared, &session, epoch);
    }
}

/// What a backend handshake attempt came back with.
enum DialOutcome<CB: Conn> {
    Ok {
        writer: CB,
        reader: FrameReader<CB>,
        deadline_ms: u64,
        /// Codec the backend's `Welcome` picked for this link.
        codec: WireCodec,
    },
    /// The backend answered `Error{draining}` — place elsewhere.
    Draining,
    Failed,
}

/// Dial `connector` and run the session's `Hello` handshake.
fn dial_backend<CF: Conn, CB: Conn, B: Connector<Conn = CB>>(
    shared: &RouterShared<CF, B>,
    connector: &B,
    hello: &Frame,
) -> DialOutcome<CB> {
    let Ok(conn) = connector.connect() else {
        return DialOutcome::Failed;
    };
    let _ = conn.set_read_timeout(Some(Duration::from_millis(2)));
    let _ = conn.set_write_timeout(Some(shared.cfg.write_timeout));
    let _ = conn.set_nodelay(true);
    let Ok(read_half) = conn.try_clone() else {
        return DialOutcome::Failed;
    };
    let mut reader = FrameReader::with_max_len(read_half, shared.cfg.backend_frame_len);
    let mut writer = conn;
    // The Hello itself always travels as JSON (pre-negotiation); its
    // `codecs` field carries the advertisement.
    let Ok(hello_bytes) = encode_frame_with(hello, WireCodec::Json, shared.cfg.backend_frame_len)
    else {
        return DialOutcome::Failed;
    };
    if write_bytes(&mut writer, &hello_bytes).is_err() {
        return DialOutcome::Failed;
    }
    let deadline = shared.cfg.clock.now() + shared.cfg.dial_timeout;
    loop {
        match reader.poll_frame() {
            Ok(Some(Frame::Welcome {
                deadline_ms, codec, ..
            })) => {
                let codec = codec
                    .as_deref()
                    .and_then(WireCodec::parse)
                    .unwrap_or_default();
                return DialOutcome::Ok {
                    writer,
                    reader,
                    deadline_ms,
                    codec,
                };
            }
            Ok(Some(Frame::Error { code, .. })) if code == "draining" => {
                return DialOutcome::Draining;
            }
            Ok(Some(_)) => return DialOutcome::Failed,
            Ok(None) => {
                if shared.cfg.clock.now() >= deadline || shared.shutting_down() {
                    return DialOutcome::Failed;
                }
            }
            Err(_) => return DialOutcome::Failed,
        }
    }
}

/// (Re-)place `session` on the shard the ring assigns it to: dial, run
/// the warm-up replay (`history`, replies swallowed), re-send `pending`
/// in seq order, and hand the link to a fresh reader thread. Retries —
/// marking failed backends down as it goes — until it commits, the
/// session ends, the epoch moves (someone else migrated first), or the
/// ring runs out of live members (each retry either succeeds or demotes
/// a member, so the loop is bounded; an un-placed session is repaired
/// by `sweep_stuck` / the next rebalance).
fn migrate<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
    session: &Arc<SessionInner<CF, B::Conn>>,
    from_epoch: u64,
) {
    loop {
        if shared.shutting_down() || session.done() {
            return;
        }
        {
            let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
            if st.epoch != from_epoch {
                return;
            }
        }
        let target = {
            let ring = shared.ring.lock().unwrap_or_else(PoisonError::into_inner);
            ring.assign(&session.token).map(String::from)
        };
        let Some(target) = target else {
            // No live backend. Do NOT spin here: migrate runs on
            // driver/prober threads, and under a virtual clock a
            // blocked caller is exactly what keeps the prober from
            // promoting a backend again (circular wait). Explicitly
            // un-place the session — sever any stale link and clear the
            // owner — so the next join/promotion rebalance (or
            // `sweep_stuck`) re-places it: a session that *looks*
            // placed (name set, dead writer) would be skipped forever.
            {
                let mut st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                if st.epoch == from_epoch {
                    if let Some(w) = st.writer.take() {
                        w.shutdown_both();
                    }
                    st.backend.clear();
                }
            }
            log_event!("cluster.migrate.no_backend", "session" = session.id);
            return;
        };
        let connector = {
            let bs = shared
                .backends
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            bs.get(&target).map(|b| Arc::clone(&b.connector))
        };
        let Some(connector) = connector else { continue };
        match dial_backend(shared, connector.as_ref(), &session.hello) {
            DialOutcome::Failed => {
                shared.mark_backend_failed(&target);
                // Injected-clock backoff: under the simulation harness
                // the driver's idle pump advances virtual time, so the
                // retry never burns a wall-clock budget.
                shared.cfg.clock.sleep(Duration::from_millis(2));
                continue;
            }
            DialOutcome::Draining => {
                // A draining node refuses new placements: treat like a
                // leave for this session's range.
                log_event!("cluster.backend.draining", "backend" = target.as_str());
                shared
                    .ring
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .remove(&target);
                continue;
            }
            DialOutcome::Ok {
                mut writer,
                reader,
                deadline_ms,
                codec,
            } => {
                session.deadline_ms.store(deadline_ms, Ordering::Relaxed);
                let epoch = {
                    let mut st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if st.epoch != from_epoch {
                        writer.shutdown_both();
                        return;
                    }
                    st.epoch += 1;
                    let epoch = st.epoch;
                    if let Some(old) = st.writer.take() {
                        old.shutdown_both();
                    }
                    st.backend = target.clone();
                    st.link = codec;
                    // Warm-up: replay the ingested window so the new
                    // shard's sliding state matches the old one's
                    // exactly; its replies are swallowed.
                    st.swallow = st.history.iter().map(|h| h.seq).collect();
                    log_event!(
                        "cluster.migrate.resend",
                        "session" = session.id,
                        "epoch" = epoch,
                        "history" = st.history.len() as u64,
                        "pending" = st.pending.len() as u64,
                        "pend_lo" = st.pending.keys().next().copied().unwrap_or(0),
                        "pend_hi" = st.pending.keys().next_back().copied().unwrap_or(0)
                    );
                    let mut ok = true;
                    for h in &st.history {
                        if write_bytes(&mut writer, &h.bytes).is_err() {
                            ok = false;
                            break;
                        }
                        CL_WARMUP.inc();
                    }
                    // Re-send pending in seq order (exactly-once: the
                    // client never saw replies for these).
                    if ok {
                        let now = shared.cfg.clock.now();
                        for p in st.pending.values_mut() {
                            p.sent_at = now;
                            if write_bytes(&mut writer, &p.bytes).is_err() {
                                ok = false;
                                break;
                            }
                        }
                    }
                    if ok && st.bye {
                        if let Ok(bye) =
                            encode_frame_with(&Frame::Bye, codec, shared.cfg.backend_frame_len)
                        {
                            ok = write_bytes(&mut writer, &bye).is_ok();
                        }
                    }
                    if !ok {
                        // The fresh link died mid-warm-up; undo nothing
                        // (pending/history intact) and retry from the
                        // new epoch.
                        writer.shutdown_both();
                        st.writer = None;
                        drop(st);
                        shared.mark_backend_failed(&target);
                        return migrate(shared, session, epoch);
                    }
                    st.writer = Some(writer);
                    epoch
                };
                // Epoch 1 is the initial placement; only re-placements
                // count as migrations.
                if epoch > 1 {
                    CL_MIGRATIONS.inc();
                    shared.counters.migrations.fetch_add(1, Ordering::Relaxed);
                }
                log_event!(
                    "cluster.migrate",
                    "session" = session.id,
                    "backend" = target.as_str(),
                    "epoch" = epoch
                );
                let sh = Arc::clone(shared);
                let sess = Arc::clone(session);
                let h = std::thread::Builder::new()
                    .name("cluster-link".into())
                    .spawn(move || link_loop(&sh, &sess, reader, epoch))
                    .expect("spawn cluster link");
                shared.track(h);
                return;
            }
        }
    }
}

/// Read replies off one backend link and forward them to the client.
/// Exits when superseded (epoch moved), on session end, or after
/// migrating a dead link.
fn link_loop<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
    session: &Arc<SessionInner<CF, B::Conn>>,
    mut reader: FrameReader<B::Conn>,
    my_epoch: u64,
) {
    loop {
        if shared.shutting_down() || session.done() {
            return;
        }
        match reader.poll_frame_raw() {
            Ok(None) => {
                let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                if st.epoch != my_epoch {
                    return;
                }
            }
            Ok(Some(raw)) => {
                if !handle_backend_frame(shared, session, raw, my_epoch) {
                    return;
                }
            }
            Err(_) => {
                if shared.shutting_down() || session.done() {
                    return;
                }
                {
                    let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if st.epoch != my_epoch {
                        return;
                    }
                }
                migrate(shared, session, my_epoch);
                return;
            }
        }
    }
}

/// Process one backend reply. Returns false when this link thread
/// should exit.
///
/// Replies are routed from the frame *as it sits on the wire*: a
/// wire-v2 payload exposes its tag and seq at fixed offsets
/// ([`RawFrame::meta`]), so the hot path (`Ack`/`Imputed`) never decodes
/// the body, and the bytes the backend produced are committed to the
/// replay log and the client verbatim — no re-encode, no frame-cap
/// mismatch (the old decode→`encode_frame` round trip silently dropped
/// any legal reply over the *default* cap on links configured with a
/// raised one), and bitwise-identical content across the hop by
/// construction. JSON payloads and rare control frames take the full
/// decode fallback.
fn handle_backend_frame<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
    session: &Arc<SessionInner<CF, B::Conn>>,
    raw: RawFrame,
    my_epoch: u64,
) -> bool {
    let (seq, ingested) = match raw.meta() {
        // `meta()` only yields seq-carrying tags; a backend never sends
        // `Interval`, so anything else here is bogus and falls through
        // to the decode path below to be ignored or rejected.
        Some(m) if matches!(m.tag, "Ack" | "Imputed" | "Busy" | "Reject") => {
            (m.seq, matches!(m.tag, "Ack" | "Imputed"))
        }
        _ => match raw.decode() {
            Ok(frame) => match route_control_frame(shared, session, frame, my_epoch) {
                ControlRouted::Reply { seq, ingested } => (seq, ingested),
                ControlRouted::Continue => return true,
                ControlRouted::Exit => return false,
            },
            Err(_) => {
                // A frame that framed correctly but fails to decode
                // means the link is corrupt: repair exactly like a read
                // error.
                {
                    let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                    if st.epoch != my_epoch {
                        return false;
                    }
                }
                if !shared.shutting_down() && !session.done() {
                    migrate(shared, session, my_epoch);
                }
                return false;
            }
        },
    };

    {
        let mut st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
        if st.epoch != my_epoch {
            return false;
        }
        if st.swallow.remove(&seq) {
            // Warm-up echo: the client was answered long ago.
            return true;
        }
        let already_answered = session
            .replay
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .get(seq)
            .is_some();
        if already_answered {
            // Raced a migration: the old link's reply landed first.
            return true;
        }
        if let Some(p) = st.pending.remove(&seq) {
            let elapsed = shared.cfg.clock.now().saturating_duration_since(p.sent_at);
            CL_ROUTE_US.record(elapsed.as_nanos() as u64);
            if let Some(tid) = p.trace_id {
                // Parent the router hop into the interval's trace (the
                // backend rooted `serve.interval` under the same id).
                let ctx = TraceContext {
                    trace_id: tid,
                    span_id: 0,
                };
                trace::record_span("cluster.route", ctx, p.sent_at, elapsed);
            }
            if ingested {
                st.push_history(seq, p.port, p.bytes, session.window_intervals);
            }
        }
    }
    session.commit_reply(seq, raw.bytes());
    CL_REPLIES.inc();
    shared.counters.replies.fetch_add(1, Ordering::Relaxed);
    true
}

/// What [`route_control_frame`] decided about a fully-decoded backend
/// frame.
enum ControlRouted {
    /// A seq-carrying reply (JSON link): route it like the fast path.
    Reply { seq: u64, ingested: bool },
    /// Nothing to route; keep reading.
    Continue,
    /// The link thread should exit.
    Exit,
}

/// Handle the decoded-frame fallback of [`handle_backend_frame`]:
/// `ByeAck` completes the session, `Error` triggers re-placement, JSON
/// replies are routed by seq, and stray control frames are ignored.
fn route_control_frame<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
    session: &Arc<SessionInner<CF, B::Conn>>,
    frame: Frame,
    my_epoch: u64,
) -> ControlRouted {
    match &frame {
        Frame::Ack { seq, .. }
        | Frame::Imputed { seq, .. }
        | Frame::Busy { seq, .. }
        | Frame::Reject { seq, .. } => ControlRouted::Reply {
            seq: *seq,
            ingested: matches!(frame, Frame::Ack { .. } | Frame::Imputed { .. }),
        },
        Frame::ByeAck { .. } => {
            let remaining = {
                let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                if st.epoch != my_epoch {
                    return ControlRouted::Exit;
                }
                st.pending.len() as u64
            };
            let ba = Frame::ByeAck {
                answered: session.answered.load(Ordering::Relaxed),
                remaining,
            };
            if let Ok(bytes) = encode_frame_with(&ba, session.codec, shared.cfg.client_frame_len) {
                session.send_client(&bytes);
            }
            session.done.store(true, Ordering::Release);
            if let Some(c) = session
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .writer
                .take()
            {
                c.shutdown_both();
            }
            shared
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .remove(&session.token);
            CL_ACTIVE.add(-1);
            shared.counters.active.fetch_sub(1, Ordering::Relaxed);
            log_event!("cluster.session.close", "session" = session.id);
            ControlRouted::Exit
        }
        Frame::Error { code, .. } => {
            // Backend-level error (shutting_down, …): the link is gone.
            log_event!(
                "cluster.backend.error",
                "session" = session.id,
                "code" = code.as_str()
            );
            let cur = {
                let st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.epoch
            };
            if cur == my_epoch && !shared.shutting_down() && !session.done() {
                migrate(shared, session, my_epoch);
            }
            ControlRouted::Exit
        }
        // Welcome (late), StatsReply, MetricsReply: nothing to route.
        _ => ControlRouted::Continue,
    }
}

/// One client connection: pre-handshake probes, `Hello` (fresh or
/// resume), then the forwarding loop.
fn handle_client<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
    conn: CF,
) {
    let cfg = &shared.cfg;
    let _ = conn.set_read_timeout(Some(cfg.read_timeout));
    let _ = conn.set_write_timeout(Some(cfg.write_timeout));
    let _ = conn.set_nodelay(true);
    let Ok(read_half) = conn.try_clone() else {
        return;
    };
    let mut reader = FrameReader::with_max_len(read_half, cfg.client_frame_len);
    let mut writer = conn;

    // Pre-handshake: answer Stats / MetricsDump probes until a Hello.
    // No codec is negotiated yet, so these travel as JSON.
    let hello = loop {
        if shared.shutting_down() {
            return;
        }
        match reader.poll_frame() {
            Ok(Some(Frame::Stats)) => {
                let Ok(b) = encode_frame_with(
                    &shared.counters.stats_frame(),
                    WireCodec::Json,
                    cfg.client_frame_len,
                ) else {
                    return;
                };
                if write_bytes(&mut writer, &b).is_err() {
                    return;
                }
            }
            Ok(Some(Frame::MetricsDump)) => {
                let reply = Frame::MetricsReply {
                    json: fmml_obs::dump_json(),
                };
                let Ok(b) = encode_frame_with(&reply, WireCodec::Json, cfg.client_frame_len) else {
                    return;
                };
                if write_bytes(&mut writer, &b).is_err() {
                    return;
                }
            }
            Ok(Some(f)) => break f,
            Ok(None) => continue,
            Err(_) => return,
        }
    };
    let Frame::Hello {
        tenant,
        ports,
        queues,
        interval_len,
        window_intervals,
        resume_token,
        last_acked,
        codecs,
    } = hello
    else {
        shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
        let err = Frame::Error {
            code: "bad_handshake".into(),
            message: format!("expected Hello, got {}", hello.tag()),
        };
        if let Ok(b) = encode_frame_with(&err, WireCodec::Json, cfg.client_frame_len) {
            let _ = write_bytes(&mut writer, &b);
        }
        return;
    };

    // Resume: re-attach to a tracked session with a matching identity.
    if let Some(tok) = resume_token.as_ref() {
        let existing = {
            let sessions = shared
                .sessions
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            sessions.get(tok).cloned()
        };
        if let Some(session) = existing.filter(|s| {
            !s.done()
                && matches!(
                    &s.hello,
                    Frame::Hello {
                        tenant: t,
                        ports: p,
                        queues: q,
                        interval_len: il,
                        window_intervals: wi,
                        ..
                    } if *t == tenant && *p == ports && *q == queues
                        && *il == interval_len && *wi == window_intervals
                )
        }) {
            {
                let mut front = session.front.lock().unwrap_or_else(PoisonError::into_inner);
                if let Some(old) = front.take() {
                    old.shutdown_both();
                }
                *front = Some(writer);
            }
            let was_parked = session
                .parked_at
                .lock()
                .unwrap_or_else(PoisonError::into_inner)
                .take()
                .is_some();
            if was_parked {
                CL_ACTIVE.add(1);
                shared.counters.active.fetch_add(1, Ordering::Relaxed);
            }
            CL_RESUMES.inc();
            shared.counters.resumes.fetch_add(1, Ordering::Relaxed);
            let hw = session.highest_seq.load(Ordering::Acquire);
            let welcome = Frame::Welcome {
                session: session.id,
                deadline_ms: session.deadline_ms.load(Ordering::Relaxed),
                resume_token: Some(session.token.clone()),
                resumed: Some(true),
                resume_seq: Some(hw),
                // The lineage keeps the codec it negotiated at birth
                // (replayed bytes are pre-encoded); the Welcome — itself
                // JSON — restates it rather than renegotiating.
                codec: Some(session.codec.label().into()),
            };
            if let Ok(b) = encode_frame_with(&welcome, WireCodec::Json, cfg.client_frame_len) {
                if !session.send_client(&b) {
                    return;
                }
            }
            // Replay everything past the client's watermark.
            let missed: Vec<(u64, Vec<u8>)> = {
                let replay = session
                    .replay
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner);
                replay.since(last_acked.unwrap_or(0))
            };
            for (_seq, bytes) in missed {
                CL_REPLAYED.inc();
                shared.counters.replayed.fetch_add(1, Ordering::Relaxed);
                shared.counters.replies.fetch_add(1, Ordering::Relaxed);
                if !session.send_client(&bytes) {
                    return;
                }
            }
            log_event!("cluster.session.resume", "session" = session.id);
            client_loop(shared, &session, reader);
            return;
        }
        // Unknown/expired/mismatched token: fall through to fresh.
    }

    // Fresh session: mint a token, place it on the ring, answer Welcome.
    let id = shared.next_session.fetch_add(1, Ordering::Relaxed) + 1;
    let token = shared.mint_token();
    // Negotiate the client-facing codec, and advertise binary to the
    // backends only for binary sessions — that way a session's reply
    // bytes are produced in its own codec end-to-end and pass through
    // this router verbatim.
    let codec = WireCodec::negotiate(cfg.wire, codecs.as_deref());
    let hello_template = Frame::Hello {
        tenant,
        ports,
        queues,
        interval_len,
        window_intervals,
        resume_token: None,
        last_acked: None,
        codecs: (codec == WireCodec::Bin1).then(WireCodec::advertise),
    };
    let session = Arc::new(SessionInner {
        id,
        token: token.clone(),
        hello: hello_template,
        window_intervals,
        codec,
        deadline_ms: AtomicU64::new(0),
        front: Mutex::new(Some(writer)),
        replay: Mutex::new(ReplayLog::new(shared.cfg.replay_window)),
        highest_seq: AtomicU64::new(0),
        answered: AtomicU64::new(0),
        state: Mutex::new(RouteState {
            backend: String::new(),
            writer: None,
            epoch: 0,
            link: WireCodec::Json,
            pending: BTreeMap::new(),
            history: VecDeque::new(),
            swallow: HashSet::new(),
            bye: false,
        }),
        done: AtomicBool::new(false),
        parked_at: Mutex::new(None),
    });
    shared
        .sessions
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .insert(token.clone(), Arc::clone(&session));
    CL_SESSIONS.inc();
    CL_ACTIVE.add(1);
    shared.counters.sessions.fetch_add(1, Ordering::Relaxed);
    shared.counters.active.fetch_add(1, Ordering::Relaxed);

    migrate(shared, &session, 0);
    if shared.shutting_down() || session.done() {
        return;
    }
    let welcome = Frame::Welcome {
        session: id,
        deadline_ms: session.deadline_ms.load(Ordering::Relaxed),
        resume_token: Some(token),
        resumed: Some(false),
        resume_seq: None,
        codec: Some(session.codec.label().into()),
    };
    // The Welcome itself is always JSON so a pre-v2 client can read the
    // verdict; everything after it speaks the negotiated codec.
    if let Ok(b) = encode_frame_with(&welcome, WireCodec::Json, cfg.client_frame_len) {
        if !session.send_client(&b) {
            park(shared, &session);
            return;
        }
    }
    log_event!(
        "cluster.session.open",
        "session" = id,
        "backend" = session
            .state
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .backend
            .as_str()
    );
    client_loop(shared, &session, reader);
}

/// Detach the client connection, keeping the session resumable.
fn park<CF: Conn, B: Connector>(
    shared: &Arc<RouterShared<CF, B>>,
    session: &Arc<SessionInner<CF, B::Conn>>,
) {
    if let Some(c) = session
        .front
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .take()
    {
        c.shutdown_both();
    }
    let mut parked = session
        .parked_at
        .lock()
        .unwrap_or_else(PoisonError::into_inner);
    if parked.is_none() {
        *parked = Some(shared.cfg.clock.now());
        CL_ACTIVE.add(-1);
        shared.counters.active.fetch_sub(1, Ordering::Relaxed);
        log_event!("cluster.session.park", "session" = session.id);
    }
}

/// The post-handshake frontend loop: dedup + forward intervals, answer
/// probes, relay `Bye`. Exits by parking on client disconnect or when
/// the session completes.
///
/// Intervals are forwarded to the backend as the exact bytes the client
/// sent (backend readers sniff the codec per frame), decoded here only
/// for validation, dedup and routing metadata — the decode/re-encode
/// round trip of the JSON-era router is gone from both directions of
/// the hot path.
fn client_loop<CF: Conn, B: Connector + Send + Sync + 'static>(
    shared: &Arc<RouterShared<CF, B>>,
    session: &Arc<SessionInner<CF, B::Conn>>,
    mut reader: FrameReader<CF>,
) {
    loop {
        if shared.shutting_down() || session.done() {
            return;
        }
        let raw = match reader.poll_frame_raw() {
            Ok(None) => continue,
            Err(_) => {
                if !session.done() {
                    park(shared, session);
                }
                return;
            }
            Ok(Some(raw)) => raw,
        };
        let frame = match raw.decode() {
            Ok(f) => f,
            Err(_) => {
                // Framed correctly but undecodable: treat like the
                // malformed-stream read error above.
                if !session.done() {
                    park(shared, session);
                }
                return;
            }
        };
        match frame {
            Frame::Interval {
                seq,
                update,
                trace_id,
            } => {
                shared.counters.accepted.fetch_add(1, Ordering::Relaxed);
                let port = update.port;
                // The client reader's cap is normally below the backend
                // link's raised cap; guard the inverted-config case
                // rather than feeding the backend a frame its reader
                // must reject.
                if raw.bytes().len() > HEADER_LEN + shared.cfg.backend_frame_len {
                    shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
                    continue;
                }
                let bytes = raw.into_bytes();
                // Duplicate retransmit of an answered seq: replay from
                // the log, never re-forward (no window is fed twice).
                if seq <= session.highest_seq.load(Ordering::Acquire) {
                    let logged = session
                        .replay
                        .lock()
                        .unwrap_or_else(PoisonError::into_inner)
                        .get(seq);
                    if let Some(b) = logged {
                        CL_REPLAYED.inc();
                        shared.counters.replayed.fetch_add(1, Ordering::Relaxed);
                        shared.counters.replies.fetch_add(1, Ordering::Relaxed);
                        session.send_client(&b);
                        continue;
                    }
                }
                let mut st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                if st.pending.contains_key(&seq) {
                    // Already in flight (client retransmit racing the
                    // backend's reply): drop, the reply will arrive.
                    continue;
                }
                st.pending.insert(
                    seq,
                    PendingEntry {
                        port,
                        bytes: bytes.clone(),
                        sent_at: shared.cfg.clock.now(),
                        trace_id,
                    },
                );
                CL_FORWARDED.inc();
                if let Some(w) = st.writer.as_mut() {
                    if write_bytes(w, &bytes).is_err() {
                        // Link is dead: leave the interval in pending —
                        // the link reader notices and migrates, and the
                        // migration re-sends it.
                        w.shutdown_both();
                    }
                }
            }
            Frame::Stats => {
                if let Ok(b) = encode_frame_with(
                    &shared.counters.stats_frame(),
                    session.codec,
                    shared.cfg.client_frame_len,
                ) {
                    session.send_client(&b);
                }
            }
            Frame::MetricsDump => {
                let reply = Frame::MetricsReply {
                    json: fmml_obs::dump_json(),
                };
                if let Ok(b) = encode_frame_with(&reply, session.codec, shared.cfg.client_frame_len)
                {
                    session.send_client(&b);
                }
            }
            Frame::Bye => {
                let mut st = session.state.lock().unwrap_or_else(PoisonError::into_inner);
                st.bye = true;
                if let Ok(bye) =
                    encode_frame_with(&Frame::Bye, st.link, shared.cfg.backend_frame_len)
                {
                    if let Some(w) = st.writer.as_mut() {
                        if write_bytes(w, &bye).is_err() {
                            w.shutdown_both();
                        }
                    }
                }
                // Keep reading: the ByeAck arrives via the link reader
                // and flips `done`.
            }
            _ => {
                shared.counters.malformed.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}
