//! Seeded consistent-hash ring for session placement.
//!
//! Each node contributes `vnodes` points on a 64-bit ring; a key is
//! assigned to the node owning the first point clockwise of the key's
//! hash. Two properties the cluster leans on (and `tests/ring_props.rs`
//! proves):
//!
//! * **Determinism** — placement is a pure function of
//!   `(seed, members, key)`. Two routers configured identically place
//!   every session identically, and a reconnecting client (same resume
//!   token) lands on the same shard.
//! * **Bounded churn** — adding or removing a node only reassigns keys
//!   whose ring-successor changed, i.e. the ring-adjacent token ranges
//!   of the touched node's points. Everything else stays put, so a
//!   join/leave migrates `~1/n` of sessions, not all of them.

use std::collections::BTreeMap;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv(h: u64, data: &[u8]) -> u64 {
    let mut h = h;
    for &b in data {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Final avalanche (splitmix64 finalizer) so FNV's weak low bits don't
/// cluster vnode points on the ring.
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// A seeded consistent-hash ring mapping string keys to named nodes.
#[derive(Debug, Clone)]
pub struct HashRing {
    seed: u64,
    default_vnodes: usize,
    /// Ring point → owning node.
    points: BTreeMap<u64, String>,
    /// Node → its vnode count (weight).
    nodes: BTreeMap<String, usize>,
}

impl HashRing {
    /// An empty ring. `default_vnodes` is the weight used by
    /// [`add`](HashRing::add); more vnodes → smoother balance and a
    /// proportionally larger share of keys.
    pub fn new(seed: u64, default_vnodes: usize) -> HashRing {
        HashRing {
            seed,
            default_vnodes: default_vnodes.max(1),
            points: BTreeMap::new(),
            nodes: BTreeMap::new(),
        }
    }

    fn point(&self, node: &str, vnode: usize) -> u64 {
        let h = fnv(FNV_OFFSET ^ self.seed, node.as_bytes());
        mix(fnv(h, &(vnode as u64).to_le_bytes()))
    }

    fn key_hash(&self, key: &str) -> u64 {
        mix(fnv(FNV_OFFSET ^ self.seed, key.as_bytes()))
    }

    /// Add `node` at the default weight. Re-adding is a no-op.
    pub fn add(&mut self, node: &str) {
        self.add_weighted(node, self.default_vnodes);
    }

    /// Add `node` with an explicit vnode count (weight). Re-adding an
    /// existing node changes nothing.
    pub fn add_weighted(&mut self, node: &str, vnodes: usize) {
        let vnodes = vnodes.max(1);
        if self.nodes.contains_key(node) {
            return;
        }
        self.nodes.insert(node.to_string(), vnodes);
        for v in 0..vnodes {
            // Ties between distinct nodes on the same point are broken
            // by insertion refusal: first owner keeps it (astronomically
            // rare at 64 bits, but determinism must not depend on luck).
            self.points
                .entry(self.point(node, v))
                .or_insert_with(|| node.to_string());
        }
    }

    /// Remove `node` and all its points. Unknown nodes are a no-op.
    pub fn remove(&mut self, node: &str) {
        let Some(vnodes) = self.nodes.remove(node) else {
            return;
        };
        for v in 0..vnodes {
            let p = self.point(node, v);
            if self.points.get(&p).is_some_and(|n| n == node) {
                self.points.remove(&p);
            }
        }
    }

    /// The node owning `key`: first ring point clockwise of the key's
    /// hash (wrapping). `None` on an empty ring.
    pub fn assign(&self, key: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let h = self.key_hash(key);
        self.points
            .range(h..)
            .next()
            .or_else(|| self.points.iter().next())
            .map(|(_, n)| n.as_str())
    }

    /// Member nodes, sorted by name.
    pub fn nodes(&self) -> Vec<String> {
        self.nodes.keys().cloned().collect()
    }

    pub fn contains(&self, node: &str) -> bool {
        self.nodes.contains_key(node)
    }

    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_is_deterministic_and_total() {
        let mut r = HashRing::new(7, 16);
        r.add("a");
        r.add("b");
        r.add("c");
        for i in 0..100 {
            let k = format!("rtok-{i:016x}");
            let n1 = r.assign(&k).unwrap().to_string();
            let n2 = r.assign(&k).unwrap().to_string();
            assert_eq!(n1, n2);
        }
        assert_eq!(r.nodes(), vec!["a", "b", "c"]);
    }

    #[test]
    fn empty_ring_assigns_nothing() {
        let r = HashRing::new(1, 8);
        assert!(r.assign("k").is_none());
        assert!(r.is_empty());
    }

    #[test]
    fn remove_returns_keys_to_survivors_only() {
        let mut r = HashRing::new(3, 32);
        r.add("a");
        r.add("b");
        r.add("c");
        let before: Vec<String> = (0..500)
            .map(|i| r.assign(&format!("k{i}")).unwrap().to_string())
            .collect();
        r.remove("b");
        for (i, owner) in before.iter().enumerate() {
            let now = r.assign(&format!("k{i}")).unwrap();
            if owner != "b" {
                assert_eq!(now, owner, "key k{i} moved although its owner survived");
            } else {
                assert_ne!(now, "b");
            }
        }
    }
}
