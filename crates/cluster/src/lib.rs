//! `fmml-cluster` — sharded multi-node serving for the imputation
//! server.
//!
//! A [`router`](crate::router) speaks the existing length-prefixed wire
//! protocol on both sides: clients connect to it exactly as they would
//! to a single `fmml-serve` node, and it fans sessions out across N
//! independent backend nodes by consistent hashing
//! ([`ring::HashRing`]) on the router-minted resume token. A prober
//! watches backend health (`MetricsDump` liveness + queue-depth load
//! signal); when a backend dies, drains, or leaves, its sessions
//! migrate to another shard with a warm-up replay that preserves
//! exactly-once reply semantics end to end. Everything is generic over
//! [`Transport`](fmml_serve::Transport) /
//! [`Connector`](fmml_serve::Connector) with an injected clock, so the
//! whole cluster also runs deterministically in-memory under the
//! simulation harness.

pub mod ring;
pub mod router;

pub use ring::HashRing;
pub use router::{spawn, spawn_with, BackendInfo, RouterConfig, RouterHandle};
