//! Property tests for the placement ring — the three guarantees the
//! cluster's stability rests on: deterministic placement, bounded churn
//! on membership change, and weight-proportional key share.

use fmml_cluster::HashRing;
use proptest::prelude::*;

fn keys(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("rtok-{i:016x}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Placement is a pure function of `(seed, members, key)`: two
    /// rings with the same seed and members agree on every key even
    /// when the members were added in a different order.
    #[test]
    fn placement_is_seed_deterministic_and_order_free(
        seed in 0u64..100_000,
        nodes in 2usize..8,
    ) {
        let names: Vec<String> = (0..nodes).map(|i| format!("node-{i}")).collect();
        let mut forward = HashRing::new(seed, 16);
        let mut reverse = HashRing::new(seed, 16);
        for n in &names {
            forward.add(n);
        }
        for n in names.iter().rev() {
            reverse.add(n);
        }
        for k in keys(200) {
            prop_assert_eq!(forward.assign(&k), reverse.assign(&k));
        }
    }

    /// A join only pulls keys *onto* the new node: no key moves between
    /// two surviving nodes, and the stolen share is in the right
    /// ballpark for an equal-weight member (bounded churn).
    #[test]
    fn join_moves_only_ring_adjacent_ranges(seed in 0u64..100_000) {
        let mut ring = HashRing::new(seed, 64);
        for i in 0..4 {
            ring.add(&format!("node-{i}"));
        }
        let ks = keys(2_000);
        let before: Vec<String> =
            ks.iter().map(|k| ring.assign(k).unwrap().to_string()).collect();
        ring.add("joiner");
        let mut moved = 0usize;
        for (k, old) in ks.iter().zip(&before) {
            let now = ring.assign(k).unwrap();
            if now != old {
                prop_assert_eq!(
                    now, "joiner",
                    "key {} moved between survivors ({} -> {})", k, old, now
                );
                moved += 1;
            }
        }
        // An equal-weight 5th member owns ~1/5 of the space; allow wide
        // slack for vnode variance but reject "everything reshuffled".
        prop_assert!(
            moved <= ks.len() / 2,
            "join moved {}/{} keys — churn is not bounded", moved, ks.len()
        );
    }

    /// A leave only moves the departed node's keys; survivors keep
    /// every key they already owned.
    #[test]
    fn leave_strands_no_survivor_keys(seed in 0u64..100_000) {
        let mut ring = HashRing::new(seed, 64);
        for i in 0..4 {
            ring.add(&format!("node-{i}"));
        }
        let ks = keys(2_000);
        let before: Vec<String> =
            ks.iter().map(|k| ring.assign(k).unwrap().to_string()).collect();
        ring.remove("node-2");
        for (k, old) in ks.iter().zip(&before) {
            let now = ring.assign(k).unwrap();
            if old != "node-2" {
                prop_assert_eq!(now, old, "survivor key {} moved", k);
            } else {
                prop_assert!(now != "node-2");
            }
        }
    }

    /// Weights matter: a node with 4x the vnodes owns a clearly larger
    /// share of keys than an equal peer.
    #[test]
    fn vnode_weighting_shifts_key_share(seed in 0u64..100_000) {
        let mut ring = HashRing::new(seed, 16);
        ring.add_weighted("heavy", 64);
        ring.add_weighted("light", 16);
        let ks = keys(2_000);
        let heavy = ks.iter().filter(|k| ring.assign(k) == Some("heavy")).count();
        // Expectation is 80%; demand at least a strict majority so the
        // test is robust to hash variance across seeds.
        prop_assert!(
            heavy > ks.len() * 6 / 10,
            "heavy node owns only {}/{} keys despite 4x weight", heavy, ks.len()
        );
    }
}

/// Re-adding a present node must not perturb the ring (the prober
/// re-promotes backends; placement must not wobble when it does).
#[test]
fn re_add_is_a_no_op() {
    let mut ring = HashRing::new(42, 32);
    ring.add("a");
    ring.add("b");
    let ks = keys(500);
    let before: Vec<String> = ks
        .iter()
        .map(|k| ring.assign(k).unwrap().to_string())
        .collect();
    ring.add("a");
    ring.add_weighted("b", 1); // even with a different weight
    for (k, old) in ks.iter().zip(&before) {
        assert_eq!(ring.assign(k).unwrap(), old);
    }
}
