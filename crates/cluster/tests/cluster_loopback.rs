//! Loopback integration tests for the cluster router over real TCP:
//! placement, bitwise identity with offline enforcement across a
//! backend kill + migration, client resume at the router, and the
//! drain-driven rebalance path.

use fmml_cluster::{RouterConfig, RouterHandle};
use fmml_core::streaming::{IntervalUpdate, StreamOptions, StreamingImputer};
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fm::cem::{CemEngine, DegradationLevel, LadderConfig};
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_serve::protocol::{
    encode_frame, encode_frame_capped, write_bytes, write_frame, write_frame_with, Frame,
    FrameReader, WireCodec, MAX_FRAME_LEN,
};
use fmml_serve::{spawn, ServerConfig, ServerHandle, TcpConnector, WireError};
use fmml_telemetry::{windows_from_trace, PortWindow};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

const INTERVAL_LEN: usize = 10;
const WINDOW_INTERVALS: usize = 3;

fn model() -> Arc<TransformerImputer> {
    let cfg = SimConfig::small();
    Arc::new(TransformerImputer::new(
        3,
        Scales {
            qlen: cfg.buffer_packets as f32,
            count: 830.0,
        },
    ))
}

fn windows() -> Vec<PortWindow> {
    let cfg = SimConfig::small();
    let gt = Simulation::new(
        cfg.clone(),
        TrafficConfig::websearch_incast(cfg.num_ports, 0.6),
        19,
    )
    .run_ms(360);
    // 12 intervals per window: long enough to split a session around a
    // backend kill with full context windows on both sides.
    windows_from_trace(
        &gt,
        INTERVAL_LEN * WINDOW_INTERVALS * 4,
        INTERVAL_LEN,
        INTERVAL_LEN * WINDOW_INTERVALS * 4,
    )
    .into_iter()
    .filter(|w| w.has_activity())
    .collect()
}

fn backend(model: &Arc<TransformerImputer>) -> ServerHandle {
    spawn(
        Arc::clone(model),
        ServerConfig {
            workers: 1,
            deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("spawn backend")
}

fn router() -> RouterHandle {
    fmml_cluster::spawn(RouterConfig {
        probe_interval: Duration::from_millis(50),
        probe_failures: 2,
        dial_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("spawn router")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, FrameReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let reader = FrameReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn hello(port: usize, queues: usize) -> Frame {
    Frame::Hello {
        tenant: "test".into(),
        ports: vec![port],
        queues,
        interval_len: INTERVAL_LEN,
        window_intervals: WINDOW_INTERVALS,
        resume_token: None,
        last_acked: None,
        codecs: None,
    }
}

fn offline(
    model: &Arc<TransformerImputer>,
    w: &PortWindow,
) -> StreamingImputer<Arc<TransformerImputer>> {
    let opts = StreamOptions {
        ladder: LadderConfig {
            engine: CemEngine::Fast,
            ..LadderConfig::default()
        },
        ..StreamOptions::default()
    };
    StreamingImputer::with_options(
        Arc::clone(model),
        opts,
        w.port,
        w.num_queues(),
        INTERVAL_LEN,
        WINDOW_INTERVALS,
    )
}

/// Assert one router reply matches the offline reference for interval
/// `k` of window `w` at sequence `seq`.
fn check_reply(
    reply: Frame,
    expect: Option<fmml_core::streaming::ImputedInterval>,
    w: &PortWindow,
    seq: u64,
    k: usize,
) {
    match reply {
        Frame::Ack { seq: s, .. } => {
            assert_eq!(s, seq);
            assert!(
                expect.is_none(),
                "router acked where offline emitted (k={k})"
            );
        }
        Frame::Imputed {
            seq: s,
            port,
            series,
            level,
            enforced,
            ..
        } => {
            let expect = expect.expect("offline must emit too");
            assert_eq!(s, seq);
            assert_eq!(port, w.port);
            assert_eq!(series, expect.series, "series diverge at k={k}");
            assert_eq!(
                DegradationLevel::from_label(&level),
                Some(expect.level),
                "levels diverge at k={k}"
            );
            assert_eq!(enforced, expect.enforced);
        }
        other => panic!("unexpected {other:?} at k={k}"),
    }
}

/// The tentpole end-to-end test: a session placed on backend "a"
/// survives "a" being killed mid-stream. The router migrates it to "b"
/// with a warm-up replay, and every reply — before and after the kill —
/// is **bitwise identical** to the offline enforcement path. The client
/// never sees the failure: each seq is answered exactly once, in order.
#[test]
fn kill_one_backend_loses_nothing_and_stays_bitwise() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = router();
    let a = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &hello(w.port, w.num_queues())).unwrap();
    let token = match rx.read_frame().unwrap() {
        Frame::Welcome {
            resume_token: Some(t),
            resumed,
            ..
        } => {
            assert_eq!(resumed, Some(false));
            assert!(
                t.starts_with("rtok-"),
                "router must mint its own token: {t}"
            );
            t
        }
        other => panic!("expected Welcome, got {other:?}"),
    };

    let mut reference = offline(&model, w);
    let total = w.intervals();
    assert!(total >= 6, "fixture too small to split around a kill");
    let split = total / 2;

    // First half on backend "a".
    for (k, seq) in (0..split).zip(1u64..) {
        let u = IntervalUpdate::from_window(w, k);
        let expect = reference.try_push(u.clone()).unwrap();
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: Some(seq),
            },
        )
        .unwrap();
        check_reply(rx.read_frame().unwrap(), expect, w, seq, k);
    }

    // Bring up "b", then kill "a" hard. The session must migrate.
    let b = backend(&model);
    rt.add_backend(
        "b",
        TcpConnector {
            addr: b.addr().to_string(),
        },
    );
    a.shutdown();

    // Second half: same wire conversation, now transparently on "b".
    for (k, seq) in (split..total).zip(split as u64 + 1..) {
        let u = IntervalUpdate::from_window(w, k);
        let expect = reference.try_push(u.clone()).unwrap();
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: Some(seq),
            },
        )
        .unwrap();
        check_reply(rx.read_frame().unwrap(), expect, w, seq, k);
    }

    // Graceful goodbye through the router: everything answered.
    write_frame(&mut tx, &Frame::Bye).unwrap();
    match rx.read_frame().unwrap() {
        Frame::ByeAck {
            answered,
            remaining,
        } => {
            assert_eq!(answered, total as u64);
            assert_eq!(remaining, 0);
        }
        other => panic!("expected ByeAck, got {other:?}"),
    }

    let (migrations, _resumes, _replayed) = rt.cluster_stats();
    assert!(migrations >= 1, "the kill must have forced a migration");
    let _ = token;
    let stats = rt.shutdown();
    let Frame::StatsReply { replies, .. } = stats else {
        panic!("stats frame")
    };
    assert_eq!(replies, total as u64);
    b.shutdown();
}

/// PR-7 resume semantics terminate at the router: a client that
/// vanishes and reconnects with its token gets `resumed: true` plus a
/// replay of everything past its ack watermark — while the backend
/// session hums along untouched.
#[test]
fn client_resume_replays_from_router_log() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = router();
    let a = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &hello(w.port, w.num_queues())).unwrap();
    let token = match rx.read_frame().unwrap() {
        Frame::Welcome {
            resume_token: Some(t),
            ..
        } => t,
        other => panic!("expected Welcome, got {other:?}"),
    };

    let mut reference = offline(&model, w);
    let mut expected = Vec::new();
    for (k, seq) in (0..3usize).zip(1u64..) {
        let u = IntervalUpdate::from_window(w, k);
        expected.push((seq, k, reference.try_push(u.clone()).unwrap()));
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: None,
            },
        )
        .unwrap();
        let reply = rx.read_frame().unwrap();
        let (s, kk, e) = expected.last().cloned().unwrap();
        check_reply(reply, e, w, s, kk);
    }

    // Vanish without a Bye, then come back claiming nothing was acked:
    // the router replays all three replies from its own log.
    drop(tx);
    drop(rx);
    std::thread::sleep(Duration::from_millis(30));
    let (mut tx2, mut rx2) = connect(rt.addr());
    write_frame(
        &mut tx2,
        &Frame::Hello {
            tenant: "test".into(),
            ports: vec![w.port],
            queues: w.num_queues(),
            interval_len: INTERVAL_LEN,
            window_intervals: WINDOW_INTERVALS,
            resume_token: Some(token),
            last_acked: Some(0),
            codecs: None,
        },
    )
    .unwrap();
    match rx2.read_frame().unwrap() {
        Frame::Welcome {
            resumed,
            resume_seq,
            ..
        } => {
            assert_eq!(resumed, Some(true));
            assert_eq!(resume_seq, Some(3));
        }
        other => panic!("expected resumed Welcome, got {other:?}"),
    }
    for (seq, k, expect) in expected {
        check_reply(rx2.read_frame().unwrap(), expect, w, seq, k);
    }
    // And the session still works for new intervals.
    let u = IntervalUpdate::from_window(w, 3);
    let expect = reference.try_push(u.clone()).unwrap();
    write_frame(
        &mut tx2,
        &Frame::Interval {
            seq: 4,
            update: u,
            trace_id: None,
        },
    )
    .unwrap();
    check_reply(rx2.read_frame().unwrap(), expect, w, 4, 3);

    let (_m, resumes, replayed) = rt.cluster_stats();
    assert_eq!(resumes, 1);
    assert!(
        replayed >= 3,
        "expected >=3 replayed replies, got {replayed}"
    );
    rt.shutdown();
    a.shutdown();
}

/// A draining backend pushes its placements away: `begin_drain` on the
/// only backend makes new placements land on the other node once it
/// joins, without dropping the existing session.
#[test]
fn draining_backend_sheds_new_placements() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = router();
    let a = backend(&model);
    let b = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );
    rt.add_backend(
        "b",
        TcpConnector {
            addr: b.addr().to_string(),
        },
    );

    // Open a session, then drain *both* prospective homes' peer: drain
    // "a" so every new placement that hashes there bounces to "b".
    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &hello(w.port, w.num_queues())).unwrap();
    assert!(matches!(rx.read_frame().unwrap(), Frame::Welcome { .. }));
    let u = IntervalUpdate::from_window(w, 0);
    write_frame(
        &mut tx,
        &Frame::Interval {
            seq: 1,
            update: u,
            trace_id: None,
        },
    )
    .unwrap();
    assert!(matches!(
        rx.read_frame().unwrap(),
        Frame::Ack { seq: 1, .. } | Frame::Imputed { seq: 1, .. }
    ));

    a.begin_drain();
    // New sessions keep working no matter which shard the ring picks:
    // placements that hash to "a" are refused with `draining` and
    // bounce to "b" transparently.
    for _ in 0..4 {
        let (mut tx2, mut rx2) = connect(rt.addr());
        write_frame(&mut tx2, &hello(w.port, w.num_queues())).unwrap();
        assert!(matches!(rx2.read_frame().unwrap(), Frame::Welcome { .. }));
        let u = IntervalUpdate::from_window(w, 0);
        write_frame(
            &mut tx2,
            &Frame::Interval {
                seq: 1,
                update: u,
                trace_id: None,
            },
        )
        .unwrap();
        assert!(matches!(
            rx2.read_frame().unwrap(),
            Frame::Ack { seq: 1, .. } | Frame::Imputed { seq: 1, .. }
        ));
        write_frame(&mut tx2, &Frame::Bye).unwrap();
        assert!(matches!(rx2.read_frame().unwrap(), Frame::ByeAck { .. }));
    }

    rt.shutdown();
    a.shutdown();
    b.shutdown();
}

/// Pre-handshake `Stats` probes are answered by the router itself, and
/// its `StatsReply` reflects cluster-level counters.
#[test]
fn router_answers_probes_locally() {
    let model = model();
    let rt = router();
    let a = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &Frame::Stats).unwrap();
    assert!(matches!(rx.read_frame().unwrap(), Frame::StatsReply { .. }));
    write_frame(&mut tx, &Frame::MetricsDump).unwrap();
    match rx.read_frame().unwrap() {
        Frame::MetricsReply { json } => {
            assert!(json.contains("metrics"), "dump must carry a metrics object");
        }
        other => panic!("expected MetricsReply, got {other:?}"),
    }

    let infos = rt.backends();
    assert_eq!(infos.len(), 1);
    assert!(infos[0].up);
    rt.shutdown();
    a.shutdown();
}

// ---------------------------------------------------------------------
// Raised-cap regression: frames past the default 1 MiB cap must cross
// the router intact, including the migration warm-up replay. The model
// server can't produce over-cap replies in test time, so these tests
// stand up a protocol-faithful fake backend whose replies are a pure
// function of the request seq — which also makes bitwise identity
// across a migration checkable without a model in the loop.
// ---------------------------------------------------------------------

/// Links raised four-fold above the stock frame cap.
const RAISED: usize = 4 * MAX_FRAME_LEN;

/// A deterministic interval update whose JSON encoding exceeds the
/// default [`MAX_FRAME_LEN`] (240k four-digit values ≈ 1.2 MiB).
fn big_update(seq: u64) -> IntervalUpdate {
    let n = 120_000usize;
    IntervalUpdate {
        port: 1,
        samples: (0..n)
            .map(|i| 1000 + ((seq as usize * 13 + i) % 9000) as u32)
            .collect(),
        maxes: (0..n)
            .map(|i| 1000 + ((seq as usize * 17 + i) % 9000) as u32)
            .collect(),
        sent: 10,
        dropped: 0,
        received: 10,
    }
}

/// The fake backend's reply series for `seq` — again over-cap as JSON
/// (230k four-digit values ≈ 1.15 MiB) and derivable by the client for
/// exact comparison.
fn big_series(seq: u64) -> Vec<Vec<u32>> {
    (0..96usize)
        .map(|q| {
            (0..2400usize)
                .map(|t| 1000 + ((seq as usize * 31 + q * 7 + t) % 9000) as u32)
                .collect()
        })
        .collect()
}

/// One fake-backend connection: answer router probes, the session
/// handshake, and every interval with the deterministic oversized reply.
fn fake_conn(stream: TcpStream) {
    let mut reader = FrameReader::with_max_len(stream.try_clone().unwrap(), RAISED);
    let mut writer = stream;
    while let Ok(frame) = reader.read_frame() {
        let out = match frame {
            Frame::MetricsDump => Frame::MetricsReply {
                json: r#"{"metrics":{"slo.queue_depth":0}}"#.into(),
            },
            Frame::Hello { .. } => Frame::Welcome {
                session: 1,
                deadline_ms: 500,
                resume_token: None,
                resumed: Some(false),
                resume_seq: None,
                codec: None,
            },
            Frame::Interval {
                seq,
                update,
                trace_id,
            } => Frame::Imputed {
                seq,
                port: update.port,
                series: big_series(seq),
                level: "full".into(),
                enforced: true,
                latency_us: 7,
                trace_id,
            },
            Frame::Bye => {
                let bye = Frame::ByeAck {
                    answered: 0,
                    remaining: 0,
                };
                if let Ok(b) = encode_frame_capped(&bye, RAISED) {
                    let _ = write_bytes(&mut writer, &b);
                }
                return;
            }
            _ => continue,
        };
        let Ok(b) = encode_frame_capped(&out, RAISED) else {
            return;
        };
        if write_bytes(&mut writer, &b).is_err() {
            return;
        }
    }
}

struct FakeBackend {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    conns: Arc<Mutex<Vec<TcpStream>>>,
    accept: Option<std::thread::JoinHandle<()>>,
}

impl FakeBackend {
    fn spawn() -> FakeBackend {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        listener.set_nonblocking(true).unwrap();
        let stop = Arc::new(AtomicBool::new(false));
        let conns: Arc<Mutex<Vec<TcpStream>>> = Arc::new(Mutex::new(Vec::new()));
        let accept = {
            let stop = Arc::clone(&stop);
            let conns = Arc::clone(&conns);
            std::thread::spawn(move || loop {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                match listener.accept() {
                    Ok((s, _)) => {
                        s.set_nonblocking(false).unwrap();
                        s.set_nodelay(true).unwrap();
                        conns.lock().unwrap().push(s.try_clone().unwrap());
                        std::thread::spawn(move || fake_conn(s));
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => return,
                }
            })
        };
        FakeBackend {
            addr,
            stop,
            conns,
            accept: Some(accept),
        }
    }

    /// Hard kill: stop accepting and sever every live connection, so the
    /// router sees link death exactly as with a crashed process.
    fn kill(mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for c in self.conns.lock().unwrap().drain(..) {
            let _ = c.shutdown(Shutdown::Both);
        }
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
    }
}

/// Regression for the raised-cap forwarder bug: interval updates and
/// replies **larger than the default frame cap** must cross the router
/// intact — including the migration warm-up replay, which re-sends the
/// whole ingested window over a fresh backend link. The old forwarder
/// round-tripped frames through default-cap `encode_frame`, so exactly
/// these frames were silently dropped at the re-encode.
#[test]
fn raised_cap_migration_replays_oversized_frames() {
    // Prove the fixtures really exceed the stock cap: default-cap
    // encoding must reject them, the raised cap must accept them.
    let probe = Frame::Interval {
        seq: 1,
        update: big_update(1),
        trace_id: None,
    };
    assert!(matches!(
        encode_frame(&probe),
        Err(WireError::Oversized { .. })
    ));
    assert!(encode_frame_capped(&probe, RAISED).is_ok());
    let reply_probe = Frame::Imputed {
        seq: 1,
        port: 1,
        series: big_series(1),
        level: "full".into(),
        enforced: true,
        latency_us: 7,
        trace_id: None,
    };
    assert!(matches!(
        encode_frame(&reply_probe),
        Err(WireError::Oversized { .. })
    ));

    let a = FakeBackend::spawn();
    let rt = fmml_cluster::spawn(RouterConfig {
        probe_interval: Duration::from_millis(50),
        probe_failures: 2,
        dial_timeout: Duration::from_millis(500),
        client_frame_len: RAISED,
        backend_frame_len: RAISED,
        ..RouterConfig::default()
    })
    .expect("spawn router");
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr.to_string(),
        },
    );

    let stream = TcpStream::connect(rt.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut rx = FrameReader::with_max_len(stream.try_clone().unwrap(), RAISED);
    let mut tx = stream;

    write_frame(&mut tx, &hello(1, 4)).unwrap();
    assert!(matches!(rx.read_frame().unwrap(), Frame::Welcome { .. }));

    fn send(tx: &mut TcpStream, seq: u64) {
        let f = Frame::Interval {
            seq,
            update: big_update(seq),
            trace_id: Some(seq),
        };
        let b = encode_frame_capped(&f, RAISED).expect("raised-cap encode");
        write_bytes(tx, &b).expect("send oversized interval");
    }
    fn expect_reply(rx: &mut FrameReader<TcpStream>, seq: u64) {
        match rx.read_frame().expect("reply") {
            Frame::Imputed {
                seq: s,
                series,
                level,
                enforced,
                ..
            } => {
                assert_eq!(s, seq);
                assert_eq!(series, big_series(seq), "series mangled at seq={seq}");
                assert_eq!(level, "full");
                assert!(enforced);
            }
            other => panic!("expected Imputed at seq={seq}, got {other:?}"),
        }
    }

    for seq in 1..=3u64 {
        send(&mut tx, seq);
        expect_reply(&mut rx, seq);
    }

    // Fail "a" over to "b": the warm-up replay pushes three >1 MiB
    // interval frames through the new backend link before the live
    // stream resumes.
    let b = FakeBackend::spawn();
    rt.add_backend(
        "b",
        TcpConnector {
            addr: b.addr.to_string(),
        },
    );
    a.kill();

    for seq in 4..=6u64 {
        send(&mut tx, seq);
        expect_reply(&mut rx, seq);
    }

    write_frame(&mut tx, &Frame::Bye).unwrap();
    match rx.read_frame().unwrap() {
        Frame::ByeAck {
            answered,
            remaining,
        } => {
            assert_eq!(answered, 6);
            assert_eq!(remaining, 0);
        }
        other => panic!("expected ByeAck, got {other:?}"),
    }
    let (migrations, _resumes, _replayed) = rt.cluster_stats();
    assert!(migrations >= 1, "the kill must have forced a migration");
    rt.shutdown();
    b.kill();
}

/// A bin1-negotiated session through the router: the client advertises,
/// the router (preferring bin1) upgrades both hops, and every reply —
/// forwarded verbatim, before and after a backend kill — arrives on the
/// binary wire **bitwise identical** to the offline enforcement path.
#[test]
fn bin1_negotiated_session_survives_migration_bitwise() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = fmml_cluster::spawn(RouterConfig {
        probe_interval: Duration::from_millis(50),
        probe_failures: 2,
        dial_timeout: Duration::from_millis(500),
        wire: WireCodec::Bin1,
        ..RouterConfig::default()
    })
    .expect("spawn router");
    let bin_backend = || {
        spawn(
            Arc::clone(&model),
            ServerConfig {
                workers: 1,
                deadline: Duration::from_millis(500),
                wire: WireCodec::Bin1,
                ..ServerConfig::default()
            },
        )
        .expect("spawn backend")
    };
    let a = bin_backend();
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    let hi = Frame::Hello {
        tenant: "test".into(),
        ports: vec![w.port],
        queues: w.num_queues(),
        interval_len: INTERVAL_LEN,
        window_intervals: WINDOW_INTERVALS,
        resume_token: None,
        last_acked: None,
        codecs: Some(WireCodec::advertise()),
    };
    write_frame(&mut tx, &hi).unwrap();
    let raw = rx.poll_frame_raw().expect("welcome").expect("welcome");
    assert_eq!(raw.codec(), WireCodec::Json, "Welcome must travel as JSON");
    match raw.decode().unwrap() {
        Frame::Welcome { codec, .. } => assert_eq!(codec.as_deref(), Some("bin1")),
        other => panic!("expected Welcome, got {other:?}"),
    }

    let mut reference = offline(&model, w);
    let total = w.intervals();
    assert!(total >= 6, "fixture too small to split around a kill");
    let split = total / 2;
    let push = |tx: &mut TcpStream,
                rx: &mut FrameReader<TcpStream>,
                reference: &mut StreamingImputer<Arc<TransformerImputer>>,
                k: usize,
                seq: u64| {
        let u = IntervalUpdate::from_window(w, k);
        let expect = reference.try_push(u.clone()).unwrap();
        write_frame_with(
            tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: Some(seq),
            },
            WireCodec::Bin1,
        )
        .unwrap();
        let raw = loop {
            if let Some(r) = rx.poll_frame_raw().expect("reply") {
                break r;
            }
        };
        assert_eq!(
            raw.codec(),
            WireCodec::Bin1,
            "negotiated replies must ride the binary wire (seq={seq})"
        );
        check_reply(raw.decode().unwrap(), expect, w, seq, k);
    };

    for (k, seq) in (0..split).zip(1u64..) {
        push(&mut tx, &mut rx, &mut reference, k, seq);
    }

    let b = bin_backend();
    rt.add_backend(
        "b",
        TcpConnector {
            addr: b.addr().to_string(),
        },
    );
    a.shutdown();

    for (k, seq) in (split..total).zip(split as u64 + 1..) {
        push(&mut tx, &mut rx, &mut reference, k, seq);
    }

    write_frame_with(&mut tx, &Frame::Bye, WireCodec::Bin1).unwrap();
    match rx.read_frame().unwrap() {
        Frame::ByeAck {
            answered,
            remaining,
        } => {
            assert_eq!(answered, total as u64);
            assert_eq!(remaining, 0);
        }
        other => panic!("expected ByeAck, got {other:?}"),
    }
    let (migrations, _resumes, _replayed) = rt.cluster_stats();
    assert!(migrations >= 1, "the kill must have forced a migration");
    rt.shutdown();
    b.shutdown();
}
