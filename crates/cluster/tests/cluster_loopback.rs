//! Loopback integration tests for the cluster router over real TCP:
//! placement, bitwise identity with offline enforcement across a
//! backend kill + migration, client resume at the router, and the
//! drain-driven rebalance path.

use fmml_cluster::{RouterConfig, RouterHandle};
use fmml_core::streaming::{IntervalUpdate, StreamOptions, StreamingImputer};
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fm::cem::{CemEngine, DegradationLevel, LadderConfig};
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_serve::protocol::{write_frame, Frame, FrameReader};
use fmml_serve::{spawn, ServerConfig, ServerHandle, TcpConnector};
use fmml_telemetry::{windows_from_trace, PortWindow};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

const INTERVAL_LEN: usize = 10;
const WINDOW_INTERVALS: usize = 3;

fn model() -> Arc<TransformerImputer> {
    let cfg = SimConfig::small();
    Arc::new(TransformerImputer::new(
        3,
        Scales {
            qlen: cfg.buffer_packets as f32,
            count: 830.0,
        },
    ))
}

fn windows() -> Vec<PortWindow> {
    let cfg = SimConfig::small();
    let gt = Simulation::new(
        cfg.clone(),
        TrafficConfig::websearch_incast(cfg.num_ports, 0.6),
        19,
    )
    .run_ms(360);
    // 12 intervals per window: long enough to split a session around a
    // backend kill with full context windows on both sides.
    windows_from_trace(
        &gt,
        INTERVAL_LEN * WINDOW_INTERVALS * 4,
        INTERVAL_LEN,
        INTERVAL_LEN * WINDOW_INTERVALS * 4,
    )
    .into_iter()
    .filter(|w| w.has_activity())
    .collect()
}

fn backend(model: &Arc<TransformerImputer>) -> ServerHandle {
    spawn(
        Arc::clone(model),
        ServerConfig {
            workers: 1,
            deadline: Duration::from_millis(500),
            ..ServerConfig::default()
        },
    )
    .expect("spawn backend")
}

fn router() -> RouterHandle {
    fmml_cluster::spawn(RouterConfig {
        probe_interval: Duration::from_millis(50),
        probe_failures: 2,
        dial_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("spawn router")
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, FrameReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).unwrap();
    let reader = FrameReader::new(stream.try_clone().unwrap());
    (stream, reader)
}

fn hello(port: usize, queues: usize) -> Frame {
    Frame::Hello {
        tenant: "test".into(),
        ports: vec![port],
        queues,
        interval_len: INTERVAL_LEN,
        window_intervals: WINDOW_INTERVALS,
        resume_token: None,
        last_acked: None,
    }
}

fn offline(
    model: &Arc<TransformerImputer>,
    w: &PortWindow,
) -> StreamingImputer<Arc<TransformerImputer>> {
    let opts = StreamOptions {
        ladder: LadderConfig {
            engine: CemEngine::Fast,
            ..LadderConfig::default()
        },
        ..StreamOptions::default()
    };
    StreamingImputer::with_options(
        Arc::clone(model),
        opts,
        w.port,
        w.num_queues(),
        INTERVAL_LEN,
        WINDOW_INTERVALS,
    )
}

/// Assert one router reply matches the offline reference for interval
/// `k` of window `w` at sequence `seq`.
fn check_reply(
    reply: Frame,
    expect: Option<fmml_core::streaming::ImputedInterval>,
    w: &PortWindow,
    seq: u64,
    k: usize,
) {
    match reply {
        Frame::Ack { seq: s, .. } => {
            assert_eq!(s, seq);
            assert!(
                expect.is_none(),
                "router acked where offline emitted (k={k})"
            );
        }
        Frame::Imputed {
            seq: s,
            port,
            series,
            level,
            enforced,
            ..
        } => {
            let expect = expect.expect("offline must emit too");
            assert_eq!(s, seq);
            assert_eq!(port, w.port);
            assert_eq!(series, expect.series, "series diverge at k={k}");
            assert_eq!(
                DegradationLevel::from_label(&level),
                Some(expect.level),
                "levels diverge at k={k}"
            );
            assert_eq!(enforced, expect.enforced);
        }
        other => panic!("unexpected {other:?} at k={k}"),
    }
}

/// The tentpole end-to-end test: a session placed on backend "a"
/// survives "a" being killed mid-stream. The router migrates it to "b"
/// with a warm-up replay, and every reply — before and after the kill —
/// is **bitwise identical** to the offline enforcement path. The client
/// never sees the failure: each seq is answered exactly once, in order.
#[test]
fn kill_one_backend_loses_nothing_and_stays_bitwise() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = router();
    let a = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &hello(w.port, w.num_queues())).unwrap();
    let token = match rx.read_frame().unwrap() {
        Frame::Welcome {
            resume_token: Some(t),
            resumed,
            ..
        } => {
            assert_eq!(resumed, Some(false));
            assert!(
                t.starts_with("rtok-"),
                "router must mint its own token: {t}"
            );
            t
        }
        other => panic!("expected Welcome, got {other:?}"),
    };

    let mut reference = offline(&model, w);
    let total = w.intervals();
    assert!(total >= 6, "fixture too small to split around a kill");
    let split = total / 2;

    // First half on backend "a".
    for (k, seq) in (0..split).zip(1u64..) {
        let u = IntervalUpdate::from_window(w, k);
        let expect = reference.try_push(u.clone()).unwrap();
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: Some(seq),
            },
        )
        .unwrap();
        check_reply(rx.read_frame().unwrap(), expect, w, seq, k);
    }

    // Bring up "b", then kill "a" hard. The session must migrate.
    let b = backend(&model);
    rt.add_backend(
        "b",
        TcpConnector {
            addr: b.addr().to_string(),
        },
    );
    a.shutdown();

    // Second half: same wire conversation, now transparently on "b".
    for (k, seq) in (split..total).zip(split as u64 + 1..) {
        let u = IntervalUpdate::from_window(w, k);
        let expect = reference.try_push(u.clone()).unwrap();
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: Some(seq),
            },
        )
        .unwrap();
        check_reply(rx.read_frame().unwrap(), expect, w, seq, k);
    }

    // Graceful goodbye through the router: everything answered.
    write_frame(&mut tx, &Frame::Bye).unwrap();
    match rx.read_frame().unwrap() {
        Frame::ByeAck {
            answered,
            remaining,
        } => {
            assert_eq!(answered, total as u64);
            assert_eq!(remaining, 0);
        }
        other => panic!("expected ByeAck, got {other:?}"),
    }

    let (migrations, _resumes, _replayed) = rt.cluster_stats();
    assert!(migrations >= 1, "the kill must have forced a migration");
    let _ = token;
    let stats = rt.shutdown();
    let Frame::StatsReply { replies, .. } = stats else {
        panic!("stats frame")
    };
    assert_eq!(replies, total as u64);
    b.shutdown();
}

/// PR-7 resume semantics terminate at the router: a client that
/// vanishes and reconnects with its token gets `resumed: true` plus a
/// replay of everything past its ack watermark — while the backend
/// session hums along untouched.
#[test]
fn client_resume_replays_from_router_log() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = router();
    let a = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &hello(w.port, w.num_queues())).unwrap();
    let token = match rx.read_frame().unwrap() {
        Frame::Welcome {
            resume_token: Some(t),
            ..
        } => t,
        other => panic!("expected Welcome, got {other:?}"),
    };

    let mut reference = offline(&model, w);
    let mut expected = Vec::new();
    for (k, seq) in (0..3usize).zip(1u64..) {
        let u = IntervalUpdate::from_window(w, k);
        expected.push((seq, k, reference.try_push(u.clone()).unwrap()));
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u,
                trace_id: None,
            },
        )
        .unwrap();
        let reply = rx.read_frame().unwrap();
        let (s, kk, e) = expected.last().cloned().unwrap();
        check_reply(reply, e, w, s, kk);
    }

    // Vanish without a Bye, then come back claiming nothing was acked:
    // the router replays all three replies from its own log.
    drop(tx);
    drop(rx);
    std::thread::sleep(Duration::from_millis(30));
    let (mut tx2, mut rx2) = connect(rt.addr());
    write_frame(
        &mut tx2,
        &Frame::Hello {
            tenant: "test".into(),
            ports: vec![w.port],
            queues: w.num_queues(),
            interval_len: INTERVAL_LEN,
            window_intervals: WINDOW_INTERVALS,
            resume_token: Some(token),
            last_acked: Some(0),
        },
    )
    .unwrap();
    match rx2.read_frame().unwrap() {
        Frame::Welcome {
            resumed,
            resume_seq,
            ..
        } => {
            assert_eq!(resumed, Some(true));
            assert_eq!(resume_seq, Some(3));
        }
        other => panic!("expected resumed Welcome, got {other:?}"),
    }
    for (seq, k, expect) in expected {
        check_reply(rx2.read_frame().unwrap(), expect, w, seq, k);
    }
    // And the session still works for new intervals.
    let u = IntervalUpdate::from_window(w, 3);
    let expect = reference.try_push(u.clone()).unwrap();
    write_frame(
        &mut tx2,
        &Frame::Interval {
            seq: 4,
            update: u,
            trace_id: None,
        },
    )
    .unwrap();
    check_reply(rx2.read_frame().unwrap(), expect, w, 4, 3);

    let (_m, resumes, replayed) = rt.cluster_stats();
    assert_eq!(resumes, 1);
    assert!(
        replayed >= 3,
        "expected >=3 replayed replies, got {replayed}"
    );
    rt.shutdown();
    a.shutdown();
}

/// A draining backend pushes its placements away: `begin_drain` on the
/// only backend makes new placements land on the other node once it
/// joins, without dropping the existing session.
#[test]
fn draining_backend_sheds_new_placements() {
    let model = model();
    let ws = windows();
    let w = &ws[0];
    let rt = router();
    let a = backend(&model);
    let b = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );
    rt.add_backend(
        "b",
        TcpConnector {
            addr: b.addr().to_string(),
        },
    );

    // Open a session, then drain *both* prospective homes' peer: drain
    // "a" so every new placement that hashes there bounces to "b".
    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &hello(w.port, w.num_queues())).unwrap();
    assert!(matches!(rx.read_frame().unwrap(), Frame::Welcome { .. }));
    let u = IntervalUpdate::from_window(w, 0);
    write_frame(
        &mut tx,
        &Frame::Interval {
            seq: 1,
            update: u,
            trace_id: None,
        },
    )
    .unwrap();
    assert!(matches!(
        rx.read_frame().unwrap(),
        Frame::Ack { seq: 1, .. } | Frame::Imputed { seq: 1, .. }
    ));

    a.begin_drain();
    // New sessions keep working no matter which shard the ring picks:
    // placements that hash to "a" are refused with `draining` and
    // bounce to "b" transparently.
    for _ in 0..4 {
        let (mut tx2, mut rx2) = connect(rt.addr());
        write_frame(&mut tx2, &hello(w.port, w.num_queues())).unwrap();
        assert!(matches!(rx2.read_frame().unwrap(), Frame::Welcome { .. }));
        let u = IntervalUpdate::from_window(w, 0);
        write_frame(
            &mut tx2,
            &Frame::Interval {
                seq: 1,
                update: u,
                trace_id: None,
            },
        )
        .unwrap();
        assert!(matches!(
            rx2.read_frame().unwrap(),
            Frame::Ack { seq: 1, .. } | Frame::Imputed { seq: 1, .. }
        ));
        write_frame(&mut tx2, &Frame::Bye).unwrap();
        assert!(matches!(rx2.read_frame().unwrap(), Frame::ByeAck { .. }));
    }

    rt.shutdown();
    a.shutdown();
    b.shutdown();
}

/// Pre-handshake `Stats` probes are answered by the router itself, and
/// its `StatsReply` reflects cluster-level counters.
#[test]
fn router_answers_probes_locally() {
    let model = model();
    let rt = router();
    let a = backend(&model);
    rt.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let (mut tx, mut rx) = connect(rt.addr());
    write_frame(&mut tx, &Frame::Stats).unwrap();
    assert!(matches!(rx.read_frame().unwrap(), Frame::StatsReply { .. }));
    write_frame(&mut tx, &Frame::MetricsDump).unwrap();
    match rx.read_frame().unwrap() {
        Frame::MetricsReply { json } => {
            assert!(json.contains("metrics"), "dump must carry a metrics object");
        }
        other => panic!("expected MetricsReply, got {other:?}"),
    }

    let infos = rt.backends();
    assert_eq!(infos.len(), 1);
    assert!(infos[0].up);
    rt.shutdown();
    a.shutdown();
}
