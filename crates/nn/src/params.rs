//! Parameter storage shared across tapes, and gradient accumulators.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Handle to a parameter in a [`ParamStore`].
pub type ParamId = usize;

/// All trainable parameters of a model, owned outside any tape so that
/// many tapes (one per example) can reference them concurrently.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Tensor>,
    names: Vec<String>,
}

impl ParamStore {
    pub fn new() -> ParamStore {
        ParamStore::default()
    }

    pub fn add(&mut self, name: &str, value: Tensor) -> ParamId {
        self.values.push(value);
        self.names.push(name.to_string());
        self.values.len() - 1
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id]
    }

    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id]
    }

    pub fn name(&self, id: ParamId) -> &str {
        &self.names[id]
    }

    /// Total number of scalar parameters.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(|t| t.len()).sum()
    }

    /// Serialize to JSON (checkpointing).
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("param store serializes")
    }

    pub fn from_json(s: &str) -> Result<ParamStore, String> {
        serde_json::from_str(s).map_err(|e| e.to_string())
    }
}

/// Per-parameter gradient accumulator (the result of one or more backward
/// passes).
#[derive(Debug, Clone)]
pub struct Gradients {
    pub by_param: Vec<Option<Tensor>>,
}

impl Gradients {
    pub fn new(num_params: usize) -> Gradients {
        Gradients {
            by_param: vec![None; num_params],
        }
    }

    /// Add a gradient contribution for one parameter.
    pub fn add(&mut self, id: ParamId, grad: &Tensor) {
        match &mut self.by_param[id] {
            Some(g) => g.add_inplace(grad),
            slot => *slot = Some(grad.clone()),
        }
    }

    /// Merge another accumulator into this one (batch reduction).
    pub fn merge(&mut self, other: &Gradients) {
        assert_eq!(self.by_param.len(), other.by_param.len());
        for (id, g) in other.by_param.iter().enumerate() {
            if let Some(g) = g {
                self.add(id, g);
            }
        }
    }

    /// Scale all gradients (e.g. 1/batch for mean reduction).
    pub fn scale(&mut self, k: f32) {
        for g in self.by_param.iter_mut().flatten() {
            g.scale_inplace(k);
        }
    }

    /// Global L2 norm across all parameter gradients.
    pub fn global_norm(&self) -> f32 {
        self.by_param
            .iter()
            .flatten()
            .map(|g| g.data.iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt()
    }

    /// Clip by global norm (returns the pre-clip norm).
    pub fn clip_global_norm(&mut self, max_norm: f32) -> f32 {
        let n = self.global_norm();
        if n > max_norm && n > 0.0 {
            self.scale(max_norm / n);
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn store_roundtrip() {
        let mut s = ParamStore::new();
        let w = s.add("w", Tensor::from_vec(vec![1.0, 2.0], &[2]));
        let b = s.add("b", Tensor::scalar(0.5));
        assert_eq!(s.len(), 2);
        assert_eq!(s.num_scalars(), 3);
        assert_eq!(s.name(w), "w");
        assert_eq!(s.value(b).data, vec![0.5]);
        let json = s.to_json();
        let s2 = ParamStore::from_json(&json).unwrap();
        assert_eq!(s2.value(w).data, vec![1.0, 2.0]);
        assert_eq!(s2.name(b), "b");
    }

    #[test]
    fn gradient_accumulation_and_merge() {
        let mut g1 = Gradients::new(2);
        g1.add(0, &Tensor::vector(vec![1.0, 1.0]));
        g1.add(0, &Tensor::vector(vec![2.0, 3.0]));
        assert_eq!(g1.by_param[0].as_ref().unwrap().data, vec![3.0, 4.0]);
        let mut g2 = Gradients::new(2);
        g2.add(1, &Tensor::scalar(5.0));
        g1.merge(&g2);
        assert_eq!(g1.by_param[1].as_ref().unwrap().data, vec![5.0]);
        g1.scale(0.5);
        assert_eq!(g1.by_param[0].as_ref().unwrap().data, vec![1.5, 2.0]);
    }

    #[test]
    fn clip_by_global_norm() {
        let mut g = Gradients::new(1);
        g.add(0, &Tensor::vector(vec![3.0, 4.0])); // norm 5
        let pre = g.clip_global_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((g.global_norm() - 1.0).abs() < 1e-6);
        // No-op when under the limit.
        let pre2 = g.clip_global_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-6);
    }
}
