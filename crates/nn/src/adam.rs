//! Adam optimizer (Kingma & Ba) with bias correction.

use crate::params::{Gradients, ParamStore};
use crate::tensor::Tensor;

/// Adam state: per-parameter first/second moment estimates.
#[derive(Debug, Clone)]
pub struct Adam {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    m: Vec<Tensor>,
    v: Vec<Tensor>,
    t: u64,
}

impl Adam {
    pub fn new(store: &ParamStore, lr: f32) -> Adam {
        let m = (0..store.len())
            .map(|i| Tensor::zeros(&store.value(i).shape))
            .collect();
        let v = (0..store.len())
            .map(|i| Tensor::zeros(&store.value(i).shape))
            .collect();
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            m,
            v,
            t: 0,
        }
    }

    /// Apply one update from accumulated gradients.
    pub fn step(&mut self, store: &mut ParamStore, grads: &Gradients) {
        assert_eq!(grads.by_param.len(), store.len(), "gradient/param mismatch");
        self.t += 1;
        let bc1 = 1.0 - self.beta1.powi(self.t as i32);
        let bc2 = 1.0 - self.beta2.powi(self.t as i32);
        for (i, g) in grads.by_param.iter().enumerate() {
            let Some(g) = g else { continue };
            let m = &mut self.m[i];
            let v = &mut self.v[i];
            let p = store.value_mut(i);
            for k in 0..p.len() {
                let gk = g.data[k];
                m.data[k] = self.beta1 * m.data[k] + (1.0 - self.beta1) * gk;
                v.data[k] = self.beta2 * v.data[k] + (1.0 - self.beta2) * gk * gk;
                let mhat = m.data[k] / bc1;
                let vhat = v.data[k] / bc2;
                p.data[k] -= self.lr * mhat / (vhat.sqrt() + self.eps);
            }
        }
    }

    /// Steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn converges_on_quadratic() {
        // Minimize (x - 3)^2 by hand-fed gradients 2(x-3).
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::scalar(0.0));
        let mut adam = Adam::new(&store, 0.1);
        for _ in 0..300 {
            let x = store.value(p).data[0];
            let mut g = Gradients::new(1);
            g.add(p, &Tensor::scalar(2.0 * (x - 3.0)));
            adam.step(&mut store, &g);
        }
        let x = store.value(p).data[0];
        assert!((x - 3.0).abs() < 0.05, "x={x}");
        assert_eq!(adam.steps(), 300);
    }

    #[test]
    fn missing_gradients_leave_params_untouched() {
        let mut store = ParamStore::new();
        let a = store.add("a", Tensor::scalar(1.0));
        let b = store.add("b", Tensor::scalar(2.0));
        let mut adam = Adam::new(&store, 0.5);
        let mut g = Gradients::new(2);
        g.add(a, &Tensor::scalar(1.0));
        adam.step(&mut store, &g);
        assert!(store.value(a).data[0] < 1.0, "a must move");
        assert_eq!(store.value(b).data[0], 2.0, "b must not move");
    }

    #[test]
    fn first_step_size_is_lr() {
        // With bias correction, the very first Adam step ≈ lr.
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::scalar(0.0));
        let mut adam = Adam::new(&store, 0.1);
        let mut g = Gradients::new(1);
        g.add(p, &Tensor::scalar(5.0));
        adam.step(&mut store, &g);
        let x = store.value(p).data[0];
        assert!(
            (x + 0.1).abs() < 1e-3,
            "first step should be ≈ -lr, got {x}"
        );
    }
}
