//! Transformer encoder with sinusoidal positional encodings and a linear
//! decoder head — the paper's imputation architecture (Fig. 3): coarse
//! time-series features in, one fine-grained value per time step out.

use crate::attention::MultiHeadAttention;
use crate::linear::Linear;
use crate::norm::LayerNorm;
use crate::params::ParamStore;
use crate::tape::{NodeId, Tape};
use crate::tensor::Tensor;
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Architecture hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TransformerConfig {
    /// Input features per time step.
    pub input_dim: usize,
    /// Embedding width (16 in the paper's Fig. 3).
    pub d_model: usize,
    pub heads: usize,
    pub layers: usize,
    /// Feed-forward hidden width.
    pub ff_dim: usize,
    /// Output values per time step (1: the imputed queue length).
    pub output_dim: usize,
    /// Maximum sequence length for the positional table.
    pub max_len: usize,
}

impl TransformerConfig {
    /// The paper-shaped model: d_model 16, 2 heads, 2 layers, 300 steps.
    pub fn paper_default(input_dim: usize) -> TransformerConfig {
        TransformerConfig {
            input_dim,
            d_model: 16,
            heads: 2,
            layers: 2,
            ff_dim: 32,
            output_dim: 1,
            max_len: 512,
        }
    }
}

/// One pre-norm encoder block.
#[derive(Debug, Clone)]
struct EncoderLayer {
    mha: MultiHeadAttention,
    ln1: LayerNorm,
    ff1: Linear,
    ff2: Linear,
    ln2: LayerNorm,
}

impl EncoderLayer {
    fn new(store: &mut ParamStore, rng: &mut StdRng, name: &str, cfg: &TransformerConfig) -> Self {
        EncoderLayer {
            mha: MultiHeadAttention::new(
                store,
                rng,
                &format!("{name}.mha"),
                cfg.d_model,
                cfg.heads,
            ),
            ln1: LayerNorm::new(store, &format!("{name}.ln1"), cfg.d_model),
            ff1: Linear::new(store, rng, &format!("{name}.ff1"), cfg.d_model, cfg.ff_dim),
            ff2: Linear::new(store, rng, &format!("{name}.ff2"), cfg.ff_dim, cfg.d_model),
            ln2: LayerNorm::new(store, &format!("{name}.ln2"), cfg.d_model),
        }
    }

    fn forward(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        // Pre-norm: x + MHA(LN(x)); x + FF(LN(x)).
        let n1 = self.ln1.forward(tape, x);
        let a = self.mha.forward(tape, n1);
        let x = tape.add(x, a);
        let n2 = self.ln2.forward(tape, x);
        let h = self.ff1.forward(tape, n2);
        let h = tape.relu(h);
        let h = self.ff2.forward(tape, h);
        tape.add(x, h)
    }
}

/// The full encoder: input projection → positional encoding → N blocks →
/// linear head.
#[derive(Debug, Clone)]
pub struct TransformerEncoder {
    pub cfg: TransformerConfig,
    input_proj: Linear,
    layers: Vec<EncoderLayer>,
    head: Linear,
    /// Precomputed sinusoidal positional table `[max_len, d_model]`.
    pos_table: Tensor,
}

impl TransformerEncoder {
    pub fn new(store: &mut ParamStore, seed: u64, cfg: TransformerConfig) -> TransformerEncoder {
        let mut rng = crate::init::seeded(seed);
        let input_proj = Linear::new(store, &mut rng, "in", cfg.input_dim, cfg.d_model);
        let layers = (0..cfg.layers)
            .map(|i| EncoderLayer::new(store, &mut rng, &format!("enc{i}"), &cfg))
            .collect();
        let head = Linear::new(store, &mut rng, "head", cfg.d_model, cfg.output_dim);
        let pos_table = Self::sinusoidal(cfg.max_len, cfg.d_model);
        TransformerEncoder {
            cfg,
            input_proj,
            layers,
            head,
            pos_table,
        }
    }

    fn sinusoidal(max_len: usize, d: usize) -> Tensor {
        let mut t = Tensor::zeros(&[max_len, d]);
        for pos in 0..max_len {
            for i in 0..d / 2 {
                let freq = 1.0 / 10_000f32.powf(2.0 * i as f32 / d as f32);
                let angle = pos as f32 * freq;
                t.set2(pos, 2 * i, angle.sin());
                t.set2(pos, 2 * i + 1, angle.cos());
            }
        }
        t
    }

    /// Forward pass: `x [T, input_dim] → [T, output_dim]`.
    pub fn forward(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        let t_len = tape.value(x).rows();
        assert!(t_len <= self.cfg.max_len, "sequence longer than max_len");
        let mut h = self.input_proj.forward(tape, x);
        // Add positional encodings (constant, truncated to T rows) —
        // copied straight from the precomputed table into pooled tape
        // storage, no intermediate Tensor.
        let pe = tape.constant_from(
            &self.pos_table.data[..t_len * self.cfg.d_model],
            &[t_len, self.cfg.d_model],
        );
        h = tape.add(h, pe);
        for layer in &self.layers {
            h = layer.forward(tape, h);
        }
        self.head.forward(tape, h)
    }

    /// Forward returning a flat 1-D series (requires `output_dim == 1`).
    /// The output is passed through `relu` — queue lengths are
    /// non-negative, and clamping in-graph lets training see the
    /// constraint.
    pub fn forward_series(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        assert_eq!(self.cfg.output_dim, 1);
        let y = self.forward(tape, x); // [T, 1]
        let flat = tape.flatten(y); // [T]
        tape.relu(flat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> TransformerConfig {
        TransformerConfig {
            input_dim: 3,
            d_model: 8,
            heads: 2,
            layers: 2,
            ff_dim: 16,
            output_dim: 1,
            max_len: 64,
        }
    }

    #[test]
    fn forward_shapes() {
        let mut store = ParamStore::new();
        let model = TransformerEncoder::new(&mut store, 1, tiny());
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::zeros(&[10, 3]));
        let y = model.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape, vec![10, 1]);
        let s = model.forward_series(&mut tape, x);
        assert_eq!(tape.value(s).shape, vec![10]);
        // relu output is non-negative.
        assert!(tape.value(s).data.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn positional_encoding_distinguishes_positions() {
        let pe = TransformerEncoder::sinusoidal(16, 8);
        // Two different positions must differ.
        let row0: Vec<f32> = (0..8).map(|c| pe.at2(0, c)).collect();
        let row5: Vec<f32> = (0..8).map(|c| pe.at2(5, c)).collect();
        assert_ne!(row0, row5);
        // Values bounded by 1.
        assert!(pe.data.iter().all(|&v| v.abs() <= 1.0));
    }

    #[test]
    fn training_step_reduces_loss_on_toy_problem() {
        // Overfit a single example: output should approach the target.
        use crate::adam::Adam;
        use crate::loss;
        let mut store = ParamStore::new();
        let model = TransformerEncoder::new(&mut store, 42, tiny());
        let mut adam = Adam::new(&store, 0.01);
        let x = Tensor::from_vec((0..30).map(|i| (i as f32 * 0.1).sin()).collect(), &[10, 3]);
        let target = Tensor::vector((0..10).map(|i| (i % 3) as f32).collect());
        let mut first = None;
        let mut last = 0.0;
        for _ in 0..60 {
            let mut tape = Tape::new(&store);
            let xin = tape.constant(x.clone());
            let pred = model.forward_series(&mut tape, xin);
            let tgt = tape.constant(target.clone());
            let l = loss::mse(&mut tape, pred, tgt);
            last = tape.scalar_value(l);
            first.get_or_insert(last);
            let grads = tape.backward(l);
            drop(tape); // release the store borrow before the optimizer step
            adam.step(&mut store, &grads);
        }
        let first = first.unwrap();
        assert!(
            last < first * 0.5,
            "loss did not halve: first={first} last={last}"
        );
    }

    #[test]
    fn deterministic_construction() {
        let mut s1 = ParamStore::new();
        let mut s2 = ParamStore::new();
        TransformerEncoder::new(&mut s1, 9, tiny());
        TransformerEncoder::new(&mut s2, 9, tiny());
        assert_eq!(s1.to_json(), s2.to_json());
    }
}
