//! Seeded weight initializers (bit-reproducible across runs).

use crate::tensor::Tensor;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Xavier/Glorot uniform: `U(−a, a)` with `a = √(6/(fan_in+fan_out))`.
pub fn xavier(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    let data = (0..fan_in * fan_out)
        .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * a)
        .collect();
    Tensor::from_vec(data, &[fan_in, fan_out])
}

/// Uniform vector in `(−a, a)`.
pub fn uniform_vec(rng: &mut StdRng, n: usize, a: f32) -> Tensor {
    Tensor::vector(
        (0..n)
            .map(|_| (rng.random::<f32>() * 2.0 - 1.0) * a)
            .collect(),
    )
}

/// A seeded RNG for model construction.
pub fn seeded(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_scale_and_shape() {
        let mut rng = seeded(1);
        let w = xavier(&mut rng, 16, 4);
        assert_eq!(w.shape, vec![16, 4]);
        let a = (6.0 / 20.0f32).sqrt();
        assert!(w.data.iter().all(|&x| x.abs() <= a));
        // Not all zeros / not all equal.
        assert!(w.data.iter().any(|&x| x != w.data[0]));
    }

    #[test]
    fn seeded_reproducibility() {
        let mut r1 = seeded(7);
        let mut r2 = seeded(7);
        assert_eq!(xavier(&mut r1, 4, 4).data, xavier(&mut r2, 4, 4).data);
        let mut r3 = seeded(8);
        assert_ne!(xavier(&mut r1, 4, 4).data, xavier(&mut r3, 4, 4).data);
    }
}
