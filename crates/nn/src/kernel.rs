//! Blocked, numerically-fixed matmul kernels.
//!
//! Every dense product in the autodiff substrate funnels through the
//! three GEMM entry points here ([`gemm_nn`], [`gemm_nt`], [`gemm_tn`]).
//! All implementations — the scalar reference, the blocked kernel, and
//! the row-sharded parallel kernel — honor one **canonical summation
//! order** per output element:
//!
//! ```text
//! out[i][j] = (((init + t_0) + t_1) + … + t_{k-1}) * scale
//! ```
//!
//! where `init` is `0.0` (or `bias[j]` for the fused affine form), the
//! terms `t_p = a_term(p) · b_term(p)` are added in strictly ascending
//! `p`, each addition is a single `f32` operation, and the trailing
//! `* scale` multiply is applied only when `scale != 1.0`. f32 addition
//! is deterministic for a fixed operand sequence, so any two
//! implementations that follow this contract produce **bitwise
//! identical** outputs — blocking over panels and sharding disjoint row
//! ranges across threads reorder the *iteration*, never the
//! per-element operand sequence. This is the same contract as the CEM
//! ordered chunk merge (DESIGN.md §8), pushed down into the kernels.
//!
//! There is deliberately **no zero-skip**: the historical
//! `a == 0.0 → continue` shortcut dropped the `0·x` term entirely,
//! which silently swallowed non-finite RHS values (`0·NaN` must be
//! `NaN`, `0·∞` must be `NaN`) and could flip `-0.0` sums. A kernel
//! that hides NaNs defeats the training loop's non-finite rollback
//! guard — exactly the "ML silently violating known semantics" failure
//! mode this repo exists to close.
//!
//! The active implementation is selected per *thread* via
//! [`with_mode`]; worker threads spawned by the vendored rayon start at
//! the default ([`KernelMode::Blocked`]), so a scalar-reference
//! measurement is taken with serial execution on the calling thread.

use fmml_obs::Counter;
use std::cell::Cell;

/// GEMM calls dispatched (all three shapes, all modes).
static CALLS: Counter = Counter::new("nn.matmul.calls");
/// Multiply-accumulate terms summed (`m·k·n` per call).
static FMAS: Counter = Counter::new("nn.matmul.fmas");
/// Calls answered by the scalar reference implementation.
static REFERENCE_CALLS: Counter = Counter::new("nn.matmul.reference_calls");
/// Calls whose rows were sharded across rayon workers.
static PARALLEL_CALLS: Counter = Counter::new("nn.matmul.parallel_calls");
/// Row shards spawned by parallel calls.
static PARALLEL_SHARDS: Counter = Counter::new("nn.matmul.parallel_shards");

/// Which kernel implementation this thread uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum KernelMode {
    /// Naive scalar triple loop — the ground-truth implementation of
    /// the canonical summation order. Also disables tape buffer reuse
    /// so benchmarks can reproduce the pre-kernel substrate honestly.
    Reference,
    /// Panel-blocked serial kernel (the default).
    #[default]
    Blocked,
    /// Blocked kernel plus row-range sharding across rayon workers for
    /// products above [`PAR_MIN_FMAS`]. Bitwise identical to the other
    /// two modes by the summation-order contract.
    BlockedParallel,
}

thread_local! {
    static MODE: Cell<KernelMode> = const { Cell::new(KernelMode::Blocked) };
}

/// Run `f` with this thread's kernel mode set to `mode`, restoring the
/// previous mode on exit (including unwinds).
pub fn with_mode<R>(mode: KernelMode, f: impl FnOnce() -> R) -> R {
    struct Restore(KernelMode);
    impl Drop for Restore {
        fn drop(&mut self) {
            MODE.set(self.0);
        }
    }
    let _restore = Restore(MODE.replace(mode));
    f()
}

/// The kernel mode active on this thread.
pub fn current_mode() -> KernelMode {
    MODE.get()
}

/// Per-element init/epilogue of a GEMM.
#[derive(Debug, Clone, Copy, Default)]
pub struct GemmOpts<'a> {
    /// Row-broadcast accumulator init: `out[i][j]` starts at `bias[j]`
    /// instead of `0.0` (the fused affine form `x·W + b`).
    pub bias: Option<&'a [f32]>,
    /// Epilogue multiplier, applied once per element **only when it is
    /// not exactly `1.0`** (so the common case adds no op). `None`
    /// means 1.0.
    pub scale: Option<f32>,
}

/// B-panel rows kept L1-resident by the blocked NN kernel (bytes).
const PANEL_BYTES: usize = 16 * 1024;
/// Minimum `m·k·n` before `BlockedParallel` shards rows across
/// threads; below this the spawn/copy overhead dominates.
pub const PAR_MIN_FMAS: usize = 1 << 18;

#[inline]
fn record(m: usize, k: usize, n: usize) {
    CALLS.inc();
    FMAS.add((m * k * n) as u64);
}

#[inline]
fn apply_scale(out: &mut [f32], opts: &GemmOpts) {
    if let Some(s) = opts.scale {
        if s != 1.0 {
            for v in out.iter_mut() {
                *v *= s;
            }
        }
    }
}

#[inline]
fn init_row(row: &mut [f32], bias: Option<&[f32]>) {
    match bias {
        Some(b) => row.copy_from_slice(b),
        None => row.fill(0.0),
    }
}

// ------------------------------------------------------------------ NN

/// `out[m,n] = (A[m,k] × B[k,n] + bias) · scale`, canonical order.
pub fn gemm_nn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    opts: GemmOpts,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), k * n);
    debug_assert_eq!(out.len(), m * n);
    if let Some(bias) = opts.bias {
        debug_assert_eq!(bias.len(), n);
    }
    record(m, k, n);
    match current_mode() {
        KernelMode::Reference => {
            REFERENCE_CALLS.inc();
            reference_nn(a, b, out, m, k, n, &opts);
        }
        KernelMode::Blocked => blocked_nn(a, b, out, m, k, n, &opts),
        KernelMode::BlockedParallel => {
            let handled = shard_rows(out, m, n, m * k * n, &|lo, hi, chunk| {
                blocked_nn(&a[lo * k..hi * k], b, chunk, hi - lo, k, n, &opts)
            });
            if !handled {
                blocked_nn(a, b, out, m, k, n, &opts);
            }
        }
    }
}

fn reference_nn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    opts: &GemmOpts,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = opts.bias.map_or(0.0, |bias| bias[j]);
            for p in 0..k {
                acc += a[i * k + p] * b[p * n + j];
            }
            out[i * n + j] = acc;
        }
    }
    apply_scale(out, opts);
}

fn blocked_nn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    opts: &GemmOpts,
) {
    // Init pass (bias or zero), then accumulate B panels of KC rows that
    // stay L1-resident while a block of A rows streams over them. The
    // j-inner axpy loop vectorizes (independent accumulators per j);
    // each out[i][j] still sees terms in ascending p.
    for i in 0..m {
        init_row(&mut out[i * n..(i + 1) * n], opts.bias);
    }
    if k > 0 && n > 0 {
        let kc = (PANEL_BYTES / 4 / n).clamp(1, k.max(1));
        let mut pb = 0;
        while pb < k {
            let pe = (pb + kc).min(k);
            for i in 0..m {
                let arow = &a[i * k..(i + 1) * k];
                let orow = &mut out[i * n..(i + 1) * n];
                for p in pb..pe {
                    let av = arow[p];
                    let brow = &b[p * n..(p + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            pb = pe;
        }
    }
    apply_scale(out, opts);
}

// ------------------------------------------------------------------ NT

/// `out[m,n] = (A[m,k] × B[n,k]ᵀ + bias) · scale` — `B` is given
/// row-major `[n,k]`, so both operands of every dot product are
/// contiguous and no transpose is ever materialized (the
/// transpose-cached form the backward pass uses for `dA = G·Bᵀ`).
pub fn gemm_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    opts: GemmOpts,
) {
    debug_assert_eq!(a.len(), m * k);
    debug_assert_eq!(b.len(), n * k);
    debug_assert_eq!(out.len(), m * n);
    record(m, k, n);
    match current_mode() {
        KernelMode::Reference => {
            REFERENCE_CALLS.inc();
            reference_nt(a, b, out, m, k, n, &opts);
        }
        KernelMode::Blocked => blocked_nt(a, b, out, m, k, n, &opts),
        KernelMode::BlockedParallel => {
            let handled = shard_rows(out, m, n, m * k * n, &|lo, hi, chunk| {
                blocked_nt(&a[lo * k..hi * k], b, chunk, hi - lo, k, n, &opts)
            });
            if !handled {
                blocked_nt(a, b, out, m, k, n, &opts);
            }
        }
    }
}

fn reference_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    opts: &GemmOpts,
) {
    for i in 0..m {
        for j in 0..n {
            let mut acc = opts.bias.map_or(0.0, |bias| bias[j]);
            for p in 0..k {
                acc += a[i * k + p] * b[j * k + p];
            }
            out[i * n + j] = acc;
        }
    }
    apply_scale(out, opts);
}

fn blocked_nt(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    m: usize,
    k: usize,
    n: usize,
    opts: &GemmOpts,
) {
    // Process J-blocks of B rows that fit in L1; within a block, four
    // output columns run as four *independent* accumulator chains (ILP
    // without reassociating any single element's sum).
    let jb = if k == 0 {
        n.max(1)
    } else {
        (PANEL_BYTES / 4 / k.max(1)).clamp(1, n.max(1))
    };
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + jb).min(n);
        for i in 0..m {
            let arow = &a[i * k..(i + 1) * k];
            let mut j = j0;
            while j + 4 <= j1 {
                let b0 = &b[j * k..(j + 1) * k];
                let b1 = &b[(j + 1) * k..(j + 2) * k];
                let b2 = &b[(j + 2) * k..(j + 3) * k];
                let b3 = &b[(j + 3) * k..(j + 4) * k];
                let (mut s0, mut s1, mut s2, mut s3) = match opts.bias {
                    Some(bias) => (bias[j], bias[j + 1], bias[j + 2], bias[j + 3]),
                    None => (0.0, 0.0, 0.0, 0.0),
                };
                for p in 0..k {
                    let av = arow[p];
                    s0 += av * b0[p];
                    s1 += av * b1[p];
                    s2 += av * b2[p];
                    s3 += av * b3[p];
                }
                out[i * n + j] = s0;
                out[i * n + j + 1] = s1;
                out[i * n + j + 2] = s2;
                out[i * n + j + 3] = s3;
                j += 4;
            }
            while j < j1 {
                let brow = &b[j * k..(j + 1) * k];
                let mut acc = opts.bias.map_or(0.0, |bias| bias[j]);
                for p in 0..k {
                    acc += arow[p] * brow[p];
                }
                out[i * n + j] = acc;
                j += 1;
            }
        }
        j0 = j1;
    }
    apply_scale(out, opts);
}

// ------------------------------------------------------------------ TN

/// `out[m,n] = (A[t,m]ᵀ × B[t,n] + bias) · scale` — `A` is given
/// row-major `[t,m]` (its transpose is taken logically), so the
/// backward pass computes `dW = Xᵀ·G` without materializing `Xᵀ`.
/// Summed over `t` in ascending order via outer-product accumulation;
/// serial in every mode (the output is small in the workloads here —
/// sharding its rows would stride-scan `A` for no win).
pub fn gemm_tn(
    a: &[f32],
    b: &[f32],
    out: &mut [f32],
    t: usize,
    m: usize,
    n: usize,
    opts: GemmOpts,
) {
    debug_assert_eq!(a.len(), t * m);
    debug_assert_eq!(b.len(), t * n);
    debug_assert_eq!(out.len(), m * n);
    record(m, t, n);
    match current_mode() {
        KernelMode::Reference => {
            REFERENCE_CALLS.inc();
            for i in 0..m {
                for j in 0..n {
                    let mut acc = opts.bias.map_or(0.0, |bias| bias[j]);
                    for p in 0..t {
                        acc += a[p * m + i] * b[p * n + j];
                    }
                    out[i * n + j] = acc;
                }
            }
            apply_scale(out, &opts);
        }
        KernelMode::Blocked | KernelMode::BlockedParallel => {
            for i in 0..m {
                init_row(&mut out[i * n..(i + 1) * n], opts.bias);
            }
            for p in 0..t {
                let arow = &a[p * m..(p + 1) * m];
                let brow = &b[p * n..(p + 1) * n];
                for (i, &av) in arow.iter().enumerate() {
                    let orow = &mut out[i * n..(i + 1) * n];
                    for (o, &bv) in orow.iter_mut().zip(brow) {
                        *o += av * bv;
                    }
                }
            }
            apply_scale(out, &opts);
        }
    }
}

// ------------------------------------------------------------- parallel

/// Shard the `m` output rows of a GEMM into contiguous ranges, one per
/// rayon worker, when the product is big enough to amortize the spawn
/// and copy-back. Each shard computes its rows exactly as the serial
/// kernel would (per-element operand sequences are row-local), so the
/// spliced result is bitwise identical to the serial run. Respects the
/// vendored rayon's `with_max_threads` cap. Returns `false` (without
/// touching `out`) when the product is too small to shard — the caller
/// falls back to the serial kernel.
fn shard_rows(
    out: &mut [f32],
    m: usize,
    n: usize,
    fmas: usize,
    run_range: &(dyn Fn(usize, usize, &mut [f32]) + Sync),
) -> bool {
    let threads = parallel_threads(m);
    if fmas < PAR_MIN_FMAS || threads < 2 {
        return false;
    }
    let chunk_rows = m.div_ceil(threads);
    let ranges: Vec<(usize, usize)> = (0..threads)
        .map(|c| (c * chunk_rows, ((c + 1) * chunk_rows).min(m)))
        .filter(|(lo, hi)| lo < hi)
        .collect();
    PARALLEL_CALLS.inc();
    PARALLEL_SHARDS.add(ranges.len() as u64);
    use rayon::prelude::*;
    // Scope threads don't inherit thread-locals; re-install the trace
    // context per shard so GEMM shards show up under the caller's span.
    let ctx = fmml_obs::trace::current_context();
    let parts: Vec<Vec<f32>> = ranges
        .par_iter()
        .map(|&(lo, hi)| {
            fmml_obs::trace::with_context(ctx, || {
                let _s = fmml_obs::trace::span("nn.gemm_shard");
                let mut part = vec![0.0f32; (hi - lo) * n];
                run_range(lo, hi, &mut part);
                part
            })
        })
        .collect();
    for ((lo, hi), part) in ranges.into_iter().zip(parts) {
        out[lo * n..hi * n].copy_from_slice(&part);
    }
    true
}

/// Worker count a sharded call would use: the machine's parallelism
/// (at least 2, mirroring the vendored rayon — concurrency bugs must
/// surface even on 1-core runners), bounded by an installed
/// `with_max_threads` cap and the row count.
fn parallel_threads(rows: usize) -> usize {
    let cap = rayon::current_max_threads();
    let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
    let t = if cap > 0 { cap } else { hw.max(2) };
    t.min(rows)
}

/// Snapshot of the kernel counters (for benchmark deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelStats {
    pub calls: u64,
    pub fmas: u64,
    pub reference_calls: u64,
    pub parallel_calls: u64,
    pub parallel_shards: u64,
}

/// Current cumulative kernel counters.
pub fn stats() -> KernelStats {
    KernelStats {
        calls: CALLS.get(),
        fmas: FMAS.get(),
        reference_calls: REFERENCE_CALLS.get(),
        parallel_calls: PARALLEL_CALLS.get(),
        parallel_shards: PARALLEL_SHARDS.get(),
    }
}

impl std::ops::Sub for KernelStats {
    type Output = KernelStats;
    fn sub(self, rhs: KernelStats) -> KernelStats {
        KernelStats {
            calls: self.calls - rhs.calls,
            fmas: self.fmas - rhs.fmas,
            reference_calls: self.reference_calls - rhs.reference_calls,
            parallel_calls: self.parallel_calls - rhs.parallel_calls,
            parallel_shards: self.parallel_shards - rhs.parallel_shards,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (no RNG dependency).
    fn fill(len: usize, seed: u64) -> Vec<f32> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                ((x >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            })
            .collect()
    }

    fn run_all_modes(
        m: usize,
        _k: usize,
        n: usize,
        f: &dyn Fn(&mut [f32]),
    ) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
        let mut r = vec![0.0; m * n];
        let mut bl = vec![0.0; m * n];
        let mut par = vec![0.0; m * n];
        with_mode(KernelMode::Reference, || f(&mut r));
        with_mode(KernelMode::Blocked, || f(&mut bl));
        with_mode(KernelMode::BlockedParallel, || f(&mut par));
        (r, bl, par)
    }

    fn assert_bits_eq(a: &[f32], b: &[f32], what: &str) {
        assert_eq!(a.len(), b.len());
        for (i, (x, y)) in a.iter().zip(b).enumerate() {
            assert_eq!(x.to_bits(), y.to_bits(), "{what}[{i}]: {x} vs {y}");
        }
    }

    #[test]
    fn nn_known_values_and_bias_scale() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let b = [5.0, 6.0, 7.0, 8.0];
        let mut out = [0.0; 4];
        gemm_nn(&a, &b, &mut out, 2, 2, 2, GemmOpts::default());
        assert_eq!(out, [19.0, 22.0, 43.0, 50.0]);
        let bias = [1.0, -1.0];
        gemm_nn(
            &a,
            &b,
            &mut out,
            2,
            2,
            2,
            GemmOpts {
                bias: Some(&bias),
                scale: Some(2.0),
            },
        );
        assert_eq!(out, [40.0, 42.0, 88.0, 98.0]);
    }

    #[test]
    fn all_modes_bitwise_identical_across_shapes() {
        // Shapes straddle the panel size, the 4-wide NT unroll, and the
        // parallel threshold (the last via a tiny PAR_MIN override not
        // being available — exercised separately in the proptest suite
        // with large shapes).
        for &(m, k, n) in &[
            (1usize, 1usize, 1usize),
            (3, 5, 7),
            (4, 16, 4),
            (17, 33, 9),
            (2, 300, 5),
            (0, 4, 4),
            (4, 0, 4),
            (4, 4, 0),
        ] {
            let a = fill(m * k, 1 + (m * 31 + k * 7 + n) as u64);
            let b = fill(k * n, 99 + (m + k + n) as u64);
            let bt = fill(n * k, 7 + (m * k) as u64);
            let at = fill(k * m, 13 + n as u64);
            let bias = fill(n, 3);
            let opts = || GemmOpts {
                bias: Some(&bias),
                scale: Some(0.5),
            };
            let (r, bl, par) = run_all_modes(m, k, n, &|out| gemm_nn(&a, &b, out, m, k, n, opts()));
            assert_bits_eq(&r, &bl, "nn ref/blocked");
            assert_bits_eq(&r, &par, "nn ref/parallel");
            let (r, bl, par) =
                run_all_modes(m, k, n, &|out| gemm_nt(&a, &bt, out, m, k, n, opts()));
            assert_bits_eq(&r, &bl, "nt ref/blocked");
            assert_bits_eq(&r, &par, "nt ref/parallel");
            let (r, bl, par) =
                run_all_modes(m, k, n, &|out| gemm_tn(&at, &b, out, k, m, n, opts()));
            assert_bits_eq(&r, &bl, "tn ref/blocked");
            assert_bits_eq(&r, &par, "tn ref/parallel");
        }
    }

    #[test]
    fn zero_times_nan_propagates_in_every_mode() {
        // The historical zero-skip would silently output 0 here.
        let a = [0.0, 0.0];
        let b = [f32::NAN, 1.0, f32::INFINITY, 2.0];
        for mode in [
            KernelMode::Reference,
            KernelMode::Blocked,
            KernelMode::BlockedParallel,
        ] {
            with_mode(mode, || {
                let mut out = [0.0f32; 2];
                gemm_nn(&a, &b, &mut out, 1, 2, 2, GemmOpts::default());
                assert!(out[0].is_nan(), "{mode:?}: 0·NaN + 0·∞ must be NaN");
                assert!(out[1].is_nan() || out[1] == 0.0);
            });
        }
    }

    #[test]
    fn parallel_shards_fire_above_threshold() {
        // Needs >= 2 rows and fmas >= PAR_MIN_FMAS. 128×128×128 = 2M.
        let (m, k, n) = (128usize, 128usize, 128usize);
        let a = fill(m * k, 5);
        let b = fill(k * n, 6);
        let before = stats();
        let mut serial = vec![0.0; m * n];
        with_mode(KernelMode::Blocked, || {
            gemm_nn(&a, &b, &mut serial, m, k, n, GemmOpts::default())
        });
        let mut par = vec![0.0; m * n];
        with_mode(KernelMode::BlockedParallel, || {
            gemm_nn(&a, &b, &mut par, m, k, n, GemmOpts::default())
        });
        assert_bits_eq(&serial, &par, "large nn");
        // Counters are global (other tests may run concurrently), so
        // assert monotone deltas rather than exact equality.
        let d = stats() - before;
        assert!(d.calls >= 2, "calls delta {}", d.calls);
        assert!(d.parallel_calls >= 1, "no parallel call recorded");
        assert!(d.parallel_shards >= d.parallel_calls);
        assert!(d.fmas >= 2 * (m * k * n) as u64);
    }

    #[test]
    fn mode_is_restored_on_unwind() {
        assert_eq!(current_mode(), KernelMode::Blocked);
        let r = std::panic::catch_unwind(|| with_mode(KernelMode::Reference, || panic!("boom")));
        assert!(r.is_err());
        assert_eq!(current_mode(), KernelMode::Blocked);
    }
}
