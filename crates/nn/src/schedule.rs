//! Learning-rate schedules.

/// A learning-rate schedule evaluated per optimizer step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LrSchedule {
    /// Fixed rate.
    Constant { lr: f32 },
    /// Linear warmup to `peak` over `warmup` steps, then cosine decay to
    /// `floor` at `total` steps (held at `floor` afterwards).
    CosineWithWarmup {
        peak: f32,
        floor: f32,
        warmup: u64,
        total: u64,
    },
}

impl LrSchedule {
    /// The learning rate at 0-based step `t`.
    pub fn at(&self, t: u64) -> f32 {
        match *self {
            LrSchedule::Constant { lr } => lr,
            LrSchedule::CosineWithWarmup {
                peak,
                floor,
                warmup,
                total,
            } => {
                // Clamp to `floor` at/after `total` FIRST: with a
                // degenerate geometry (`total < warmup`) the old order
                // kept ramping the warmup line past the end of the
                // schedule instead of settling at the floor.
                if t >= total {
                    return floor;
                }
                if warmup > 0 && t < warmup {
                    return peak * (t + 1) as f32 / warmup as f32;
                }
                let span = (total - warmup).max(1) as f32;
                let progress = (t - warmup) as f32 / span;
                floor + 0.5 * (peak - floor) * (1.0 + (std::f32::consts::PI * progress).cos())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_is_constant() {
        let s = LrSchedule::Constant { lr: 0.01 };
        assert_eq!(s.at(0), 0.01);
        assert_eq!(s.at(1_000_000), 0.01);
    }

    #[test]
    fn warmup_rises_linearly_then_decays() {
        let s = LrSchedule::CosineWithWarmup {
            peak: 1.0,
            floor: 0.1,
            warmup: 10,
            total: 110,
        };
        assert!((s.at(0) - 0.1).abs() < 1e-6);
        assert!((s.at(4) - 0.5).abs() < 1e-6);
        assert!((s.at(9) - 1.0).abs() < 1e-6);
        // Midpoint of cosine: (peak+floor)/2.
        assert!((s.at(60) - 0.55).abs() < 1e-2);
        // End and beyond: floor.
        assert!((s.at(110) - 0.1).abs() < 1e-6);
        assert_eq!(s.at(10_000), 0.1);
    }

    /// Regression: `total < warmup` used to fall into the warmup branch
    /// for every `t < warmup`, ramping the LR past the schedule's end
    /// instead of clamping to `floor`.
    #[test]
    fn degenerate_total_shorter_than_warmup_clamps_to_floor() {
        let s = LrSchedule::CosineWithWarmup {
            peak: 1.0,
            floor: 0.1,
            warmup: 100,
            total: 10,
        };
        // Inside [0, total): still warming up, bounded by the ramp.
        assert!((s.at(0) - 0.01).abs() < 1e-6);
        assert!((s.at(9) - 0.1).abs() < 1e-6);
        // At/after total: floor, even though t < warmup.
        for t in [10, 11, 50, 99, 100, 10_000] {
            assert_eq!(s.at(t), 0.1, "t={t} must clamp to floor");
        }
        // total == warmup behaves the same way at the boundary.
        let s2 = LrSchedule::CosineWithWarmup {
            peak: 1.0,
            floor: 0.05,
            warmup: 10,
            total: 10,
        };
        assert_eq!(s2.at(10), 0.05);
        assert_eq!(s2.at(9), 1.0);
    }

    #[test]
    fn schedule_is_monotone_decreasing_after_warmup() {
        let s = LrSchedule::CosineWithWarmup {
            peak: 0.01,
            floor: 0.001,
            warmup: 5,
            total: 100,
        };
        let mut prev = f32::MAX;
        for t in 5..100 {
            let lr = s.at(t);
            assert!(lr <= prev + 1e-9, "rose at step {t}");
            prev = lr;
        }
    }
}
