//! Dense f32 tensors (rank 1 and 2) with the few BLAS-like kernels the
//! model needs.

use serde::{Deserialize, Serialize};

/// A dense row-major f32 tensor of rank 1 or 2.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    pub data: Vec<f32>,
    pub shape: Vec<usize>,
}

impl Tensor {
    pub fn zeros(shape: &[usize]) -> Tensor {
        assert!(!shape.is_empty() && shape.len() <= 2, "rank must be 1 or 2");
        Tensor {
            data: vec![0.0; shape.iter().product()],
            shape: shape.to_vec(),
        }
    }

    pub fn from_vec(data: Vec<f32>, shape: &[usize]) -> Tensor {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape/data mismatch"
        );
        assert!(!shape.is_empty() && shape.len() <= 2, "rank must be 1 or 2");
        Tensor {
            data,
            shape: shape.to_vec(),
        }
    }

    pub fn scalar(v: f32) -> Tensor {
        Tensor {
            data: vec![v],
            shape: vec![1],
        }
    }

    pub fn vector(data: Vec<f32>) -> Tensor {
        let n = data.len();
        Tensor::from_vec(data, &[n])
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn rank(&self) -> usize {
        self.shape.len()
    }

    /// Rows of a 2-D tensor (a 1-D tensor is a single row).
    pub fn rows(&self) -> usize {
        if self.rank() == 2 {
            self.shape[0]
        } else {
            1
        }
    }

    /// Columns of a 2-D tensor (length of a 1-D tensor).
    pub fn cols(&self) -> usize {
        *self.shape.last().unwrap()
    }

    pub fn at2(&self, r: usize, c: usize) -> f32 {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c]
    }

    pub fn set2(&mut self, r: usize, c: usize, v: f32) {
        debug_assert_eq!(self.rank(), 2);
        self.data[r * self.shape[1] + c] = v;
    }

    /// Matrix product `[m,k] × [k,n] → [m,n]` via the blocked kernel
    /// ([`crate::kernel`]): fixed per-element summation order (ascending
    /// inner index), bitwise identical across the scalar reference,
    /// blocked, and row-sharded parallel implementations.
    ///
    /// Note there is deliberately no sparsity shortcut: `0·NaN` and
    /// `0·∞` are `NaN` and must propagate to the output — the
    /// historical `a == 0.0 → continue` skip masked non-finite RHS
    /// values and defeated the training loop's rollback guard.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(other.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = (self.shape[0], self.shape[1]);
        let (k2, n) = (other.shape[0], other.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = vec![0.0f32; m * n];
        crate::kernel::gemm_nn(
            &self.data,
            &other.data,
            &mut out,
            m,
            k,
            n,
            crate::kernel::GemmOpts::default(),
        );
        Tensor::from_vec(out, &[m, n])
    }

    pub fn transpose(&self) -> Tensor {
        assert_eq!(self.rank(), 2);
        let (m, n) = (self.shape[0], self.shape[1]);
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = self.data[i * n + j];
            }
        }
        Tensor::from_vec(out, &[n, m])
    }

    /// Elementwise map.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            data: self.data.iter().map(|&x| f(x)).collect(),
            shape: self.shape.clone(),
        }
    }

    /// Elementwise combination of two same-shaped tensors.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(self.shape, other.shape, "shape mismatch");
        Tensor {
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
            shape: self.shape.clone(),
        }
    }

    pub fn add_inplace(&mut self, other: &Tensor) {
        assert_eq!(self.shape, other.shape);
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    pub fn scale_inplace(&mut self, k: f32) {
        for a in &mut self.data {
            *a *= k;
        }
    }

    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Frobenius / L2 norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], &[2, 2]);
        let b = Tensor::from_vec(vec![5.0, 6.0, 7.0, 8.0], &[2, 2]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn matmul_rectangular() {
        let a = Tensor::from_vec(vec![1.0, 0.0, 0.0, 1.0, 1.0, 1.0], &[3, 2]);
        let b = Tensor::from_vec(vec![2.0, 3.0, 4.0, 5.0, 6.0, 7.0], &[2, 3]);
        let c = a.matmul(&b);
        assert_eq!(c.shape, vec![3, 3]);
        assert_eq!(c.at2(2, 0), 7.0);
        assert_eq!(c.at2(0, 2), 4.0);
    }

    /// Regression for the NaN-masking bug: the old `a == 0.0` skip
    /// dropped the `0·x` term, so a non-finite RHS row vanished from
    /// the product and the train-loop rollback guard never saw it.
    #[test]
    fn zero_lhs_does_not_mask_nonfinite_rhs() {
        // Row of zeros × RHS containing NaN/Inf: every output element
        // that multiplies a non-finite value must be NaN.
        let a = Tensor::from_vec(vec![0.0, 0.0], &[1, 2]);
        let b = Tensor::from_vec(vec![f32::NAN, 1.0, f32::INFINITY, 2.0], &[2, 2]);
        let c = a.matmul(&b);
        assert!(
            c.data[0].is_nan(),
            "0·NaN + 0·∞ must be NaN, got {}",
            c.data[0]
        );
        // Mixed: a finite column stays finite.
        let b2 = Tensor::from_vec(vec![f32::NAN, 1.0, 3.0, 2.0], &[2, 2]);
        let c2 = a.matmul(&b2);
        assert!(c2.data[0].is_nan());
        assert_eq!(c2.data[1], 0.0);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn matmul_shape_mismatch_panics() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[2, 3]);
        a.matmul(&b);
    }

    #[test]
    fn transpose_roundtrip() {
        let a = Tensor::from_vec((0..6).map(|x| x as f32).collect(), &[2, 3]);
        let t = a.transpose();
        assert_eq!(t.shape, vec![3, 2]);
        assert_eq!(t.at2(2, 1), 5.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn map_zip_and_inplace_ops() {
        let a = Tensor::vector(vec![1.0, -2.0, 3.0]);
        let b = a.map(f32::abs);
        assert_eq!(b.data, vec![1.0, 2.0, 3.0]);
        let c = a.zip(&b, |x, y| x + y);
        assert_eq!(c.data, vec![2.0, 0.0, 6.0]);
        let mut d = a.clone();
        d.add_inplace(&b);
        assert_eq!(d.data, c.data);
        d.scale_inplace(0.5);
        assert_eq!(d.data, vec![1.0, 0.0, 3.0]);
        assert_eq!(d.sum(), 4.0);
    }

    #[test]
    #[should_panic(expected = "shape/data mismatch")]
    fn from_vec_validates() {
        Tensor::from_vec(vec![1.0], &[2, 2]);
    }
}
