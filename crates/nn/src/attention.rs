//! Multi-head scaled-dot-product self-attention.

use crate::linear::Linear;
use crate::params::ParamStore;
use crate::tape::{NodeId, Tape};
use rand::rngs::StdRng;

/// Multi-head self-attention: `x: [T, d] → [T, d]`.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    pub wq: Linear,
    pub wk: Linear,
    pub wv: Linear,
    pub wo: Linear,
    pub heads: usize,
    pub d_model: usize,
}

impl MultiHeadAttention {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        d_model: usize,
        heads: usize,
    ) -> MultiHeadAttention {
        assert!(
            heads > 0 && d_model.is_multiple_of(heads),
            "d_model must divide by heads"
        );
        MultiHeadAttention {
            wq: Linear::new(store, rng, &format!("{name}.wq"), d_model, d_model),
            wk: Linear::new(store, rng, &format!("{name}.wk"), d_model, d_model),
            wv: Linear::new(store, rng, &format!("{name}.wv"), d_model, d_model),
            wo: Linear::new(store, rng, &format!("{name}.wo"), d_model, d_model),
            heads,
            d_model,
        }
    }

    pub fn forward(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        let dh = self.d_model / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let q = self.wq.forward(tape, x);
        let k = self.wk.forward(tape, x);
        let v = self.wv.forward(tape, x);
        let mut head_outs = Vec::with_capacity(self.heads);
        for h in 0..self.heads {
            let qh = tape.slice_cols(q, h * dh, dh);
            let kh = tape.slice_cols(k, h * dh, dh);
            let vh = tape.slice_cols(v, h * dh, dh);
            // Fused s·Q·Kᵀ: no materialized transpose, no scaled copy of
            // the [T,T] score matrix, two fewer nodes per head.
            let scaled = tape.matmul_scaled_nt(qh, kh, scale);
            let att = tape.softmax_rows(scaled);
            head_outs.push(tape.matmul(att, vh));
        }
        let concat = tape.concat_cols(&head_outs);
        self.wo.forward(tape, concat)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::init;
    use crate::tensor::Tensor;

    #[test]
    fn forward_preserves_shape() {
        let mut store = ParamStore::new();
        let mut rng = init::seeded(5);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 8, 2);
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::from_vec(
            (0..40).map(|i| (i as f32 * 0.01).sin()).collect(),
            &[5, 8],
        ));
        let y = mha.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape, vec![5, 8]);
    }

    #[test]
    fn gradients_reach_all_projections() {
        let mut store = ParamStore::new();
        let mut rng = init::seeded(6);
        let mha = MultiHeadAttention::new(&mut store, &mut rng, "mha", 4, 2);
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::from_vec(
            (0..12).map(|i| (i as f32 * 0.3).cos()).collect(),
            &[3, 4],
        ));
        let y = mha.forward(&mut tape, x);
        let sq = tape.square(y);
        let s = tape.sum(sq);
        let g = tape.backward(s);
        for lin in [&mha.wq, &mha.wk, &mha.wv, &mha.wo] {
            let gw = g.by_param[lin.w].as_ref().expect("grad exists");
            assert!(gw.norm() > 0.0, "zero gradient on a projection");
        }
    }

    #[test]
    #[should_panic(expected = "d_model must divide")]
    fn rejects_indivisible_heads() {
        let mut store = ParamStore::new();
        let mut rng = init::seeded(7);
        MultiHeadAttention::new(&mut store, &mut rng, "bad", 6, 4);
    }
}
