//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of operations as it executes the forward pass;
//! [`Tape::backward`] then walks the nodes in reverse, accumulating
//! gradients. Parameters live outside the tape in a
//! [`crate::params::ParamStore`]; a leaf created with [`Tape::param`]
//! remembers its [`crate::params::ParamId`] so backward can report
//! per-parameter gradients for the optimizer.
//!
//! The op vocabulary is deliberately small but sufficient for a
//! transformer encoder *and* the paper's constraint terms: cumulative sums
//! (EMD loss), max/select reductions (C1/C2 residuals) and tanh/relu
//! (the differentiable relaxation of C3).

use crate::params::{Gradients, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Index of a node on a tape.
pub type NodeId = usize;

const LN_EPS: f32 = 1e-5;

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(NodeId, NodeId),
    Mul(NodeId, NodeId),
    ScalarMul(NodeId, f32),
    // The constant is not needed by the backward pass (d(x+k)/dx = 1) but
    // is kept for graph debugging.
    ScalarAdd(NodeId, #[allow(dead_code)] f32),
    Matmul(NodeId, NodeId),
    Transpose(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    SoftmaxRows(NodeId),
    Sum(NodeId),
    Mean(NodeId),
    Abs(NodeId),
    CumSum(NodeId),
    MaxReduce(NodeId),
    Select(NodeId, Vec<usize>),
    Slice1D(NodeId, usize, usize),
    SliceCols(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    AddBias(NodeId, NodeId),
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
    },
    /// Reinterpret a `[1,n]` or `[n,1]` tensor as 1-D `[n]`.
    Flatten(NodeId),
}

struct Node {
    value: Tensor,
    op: Op,
    param: Option<ParamId>,
}

/// The autograd tape. Create one per training example, build the forward
/// graph, call [`Tape::backward`] on a scalar loss.
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
}

impl<'s> Tape<'s> {
    pub fn new(store: &'s ParamStore) -> Tape<'s> {
        Tape {
            store,
            nodes: Vec::new(),
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            op,
            param: None,
        });
        self.nodes.len() - 1
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Scalar value of a rank-1, length-1 node.
    pub fn scalar_value(&self, id: NodeId) -> f32 {
        debug_assert_eq!(self.nodes[id].value.len(), 1);
        self.nodes[id].value.data[0]
    }

    // ---- leaves ----

    /// A leaf holding a parameter (gradient is reported for it).
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let value = self.store.value(id).clone();
        let n = self.push(value, Op::Leaf);
        self.nodes[n].param = Some(id);
        n
    }

    /// A constant leaf (input data; no gradient reported).
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Leaf)
    }

    pub fn scalar(&mut self, v: f32) -> NodeId {
        self.constant(Tensor::scalar(v))
    }

    // ---- elementwise / arithmetic ----

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.zip(&self.nodes[b].value, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.zip(&self.nodes[b].value, |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    pub fn scalar_mul(&mut self, a: NodeId, k: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| x * k);
        self.push(v, Op::ScalarMul(a, k))
    }

    pub fn scalar_add(&mut self, a: NodeId, k: f32) -> NodeId {
        let v = self.nodes[a].value.map(|x| x + k);
        self.push(v, Op::ScalarAdd(a, k))
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let nb = self.scalar_mul(b, -1.0);
        self.add(a, nb)
    }

    pub fn square(&mut self, a: NodeId) -> NodeId {
        self.mul(a, a)
    }

    // ---- linear algebra ----

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let v = self.nodes[a].value.matmul(&self.nodes[b].value);
        self.push(v, Op::Matmul(a, b))
    }

    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.transpose();
        self.push(v, Op::Transpose(a))
    }

    /// `[m,n] + [n]` broadcast add.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let m = &self.nodes[a].value;
        let b = &self.nodes[bias].value;
        assert_eq!(b.rank(), 1);
        assert_eq!(m.cols(), b.len(), "bias length mismatch");
        let mut out = m.clone();
        for r in 0..m.rows() {
            for c in 0..m.cols() {
                out.data[r * m.cols() + c] += b.data[c];
            }
        }
        self.push(out, Op::AddBias(a, bias))
    }

    // ---- nonlinearities ----

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(|x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// GELU (tanh approximation), composed from primitive ops so the
    /// backward pass needs no dedicated kernel.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        // 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let x3 = {
            let x2 = self.mul(a, a);
            self.mul(x2, a)
        };
        let inner = {
            let scaled_x3 = self.scalar_mul(x3, 0.044715);
            let sum = self.add(a, scaled_x3);
            self.scalar_mul(sum, C)
        };
        let t = self.tanh(inner);
        let one_plus = self.scalar_add(t, 1.0);
        let half_x = self.scalar_mul(a, 0.5);
        self.mul(half_x, one_plus)
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1−p)`. The mask is built from the given
    /// RNG (deterministic under a seeded RNG); pass `p = 0` for a no-op.
    /// Implemented as a multiply by a constant mask, so the backward pass
    /// routes gradients only through surviving elements.
    pub fn dropout<R: rand::Rng + ?Sized>(&mut self, a: NodeId, p: f32, rng: &mut R) -> NodeId {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        if p == 0.0 {
            return a;
        }
        use rand::RngExt;
        let keep = 1.0 - p;
        let shape = self.nodes[a].value.shape.clone();
        let mask = Tensor {
            data: (0..self.nodes[a].value.len())
                .map(|_| {
                    if rng.random::<f32>() < keep {
                        1.0 / keep
                    } else {
                        0.0
                    }
                })
                .collect(),
            shape,
        };
        let m = self.constant(mask);
        self.mul(a, m)
    }

    /// Row-wise softmax of a 2-D tensor (or of a 1-D tensor as one row).
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        let cols = x.cols();
        let mut out = x.clone();
        for r in 0..x.rows() {
            let row = &mut out.data[r * cols..(r + 1) * cols];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        self.push(out, Op::SoftmaxRows(a))
    }

    /// Layer normalization over the last dimension, with affine params.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        let xv = &self.nodes[x].value;
        let g = &self.nodes[gamma].value;
        let b = &self.nodes[beta].value;
        let n = xv.cols();
        assert_eq!(g.len(), n);
        assert_eq!(b.len(), n);
        let mut out = xv.clone();
        for r in 0..xv.rows() {
            let row = &mut out.data[r * n..(r + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + LN_EPS).sqrt();
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) * inv * g.data[j] + b.data[j];
            }
        }
        self.push(out, Op::LayerNorm { x, gamma, beta })
    }

    // ---- reductions / reshaping ----

    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a].value.sum());
        self.push(v, Op::Sum(a))
    }

    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let t = &self.nodes[a].value;
        let v = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(v, Op::Mean(a))
    }

    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let v = self.nodes[a].value.map(f32::abs);
        self.push(v, Op::Abs(a))
    }

    /// Cumulative sum of a 1-D tensor.
    pub fn cumsum(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 1, "cumsum is 1-D");
        let mut acc = 0.0;
        let data = x.data.iter().map(|&v| {
            acc += v;
            acc
        });
        let v = Tensor::vector(data.collect());
        self.push(v, Op::CumSum(a))
    }

    /// Maximum element of a 1-D tensor (subgradient to the first argmax).
    pub fn max_reduce(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 1);
        assert!(!x.is_empty());
        let m = x.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        self.push(Tensor::scalar(m), Op::MaxReduce(a))
    }

    /// Gather elements of a 1-D tensor at `indices`.
    pub fn select(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 1);
        let v = Tensor::vector(indices.iter().map(|&i| x.data[i]).collect());
        self.push(v, Op::Select(a, indices.to_vec()))
    }

    /// Contiguous 1-D slice `[start, start+len)`.
    pub fn slice1d(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 1);
        assert!(start + len <= x.len());
        let v = Tensor::vector(x.data[start..start + len].to_vec());
        self.push(v, Op::Slice1D(a, start, len))
    }

    /// Column slice `[.., start..start+len]` of a 2-D tensor.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 2);
        let (m, n) = (x.rows(), x.cols());
        assert!(start + len <= n);
        let mut out = Tensor::zeros(&[m, len]);
        for r in 0..m {
            out.data[r * len..(r + 1) * len]
                .copy_from_slice(&x.data[r * n + start..r * n + start + len]);
        }
        self.push(out, Op::SliceCols(a, start, len))
    }

    /// Concatenate 2-D tensors with equal row counts along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let m = self.nodes[parts[0]].value.rows();
        let total: usize = parts.iter().map(|&p| self.nodes[p].value.cols()).sum();
        let mut out = Tensor::zeros(&[m, total]);
        let mut off = 0;
        for &p in parts {
            let x = &self.nodes[p].value;
            assert_eq!(x.rows(), m, "row count mismatch in concat");
            let n = x.cols();
            for r in 0..m {
                out.data[r * total + off..r * total + off + n]
                    .copy_from_slice(&x.data[r * n..(r + 1) * n]);
            }
            off += n;
        }
        self.push(out, Op::ConcatCols(parts.to_vec()))
    }

    /// Reinterpret a single-row or single-column 2-D tensor as 1-D.
    pub fn flatten(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 2, "flatten takes a 2-D tensor");
        assert!(
            x.rows() == 1 || x.cols() == 1,
            "flatten needs a single row or column, got {:?}",
            x.shape
        );
        let v = Tensor::vector(x.data.clone());
        self.push(v, Op::Flatten(a))
    }

    // ---- backward ----

    /// Reverse-mode sweep from a scalar `root`; returns per-parameter
    /// gradients.
    pub fn backward(&self, root: NodeId) -> Gradients {
        assert_eq!(
            self.nodes[root].value.len(),
            1,
            "backward root must be scalar"
        );
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[root] = Some(Tensor::scalar(1.0));

        for id in (0..=root).rev() {
            let Some(g) = grads[id].take() else { continue };
            self.propagate(id, &g, &mut grads);
            grads[id] = Some(g);
        }

        let mut out = Gradients::new(self.store.len());
        for (id, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, &grads[id]) {
                out.add(pid, g);
            }
        }
        out
    }

    fn accum(grads: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
        match &mut grads[id] {
            Some(acc) => acc.add_inplace(&g),
            slot => *slot = Some(g),
        }
    }

    fn propagate(&self, id: NodeId, g: &Tensor, grads: &mut [Option<Tensor>]) {
        match &self.nodes[id].op {
            Op::Leaf => {}
            Op::Add(a, b) => {
                Self::accum(grads, *a, g.clone());
                Self::accum(grads, *b, g.clone());
            }
            Op::Mul(a, b) => {
                let ga = g.zip(&self.nodes[*b].value, |dg, y| dg * y);
                let gb = g.zip(&self.nodes[*a].value, |dg, x| dg * x);
                Self::accum(grads, *a, ga);
                Self::accum(grads, *b, gb);
            }
            Op::ScalarMul(a, k) => {
                Self::accum(grads, *a, g.map(|x| x * k));
            }
            Op::ScalarAdd(a, _) => {
                Self::accum(grads, *a, g.clone());
            }
            Op::Matmul(a, b) => {
                let bt = self.nodes[*b].value.transpose();
                let at = self.nodes[*a].value.transpose();
                Self::accum(grads, *a, g.matmul(&bt));
                Self::accum(grads, *b, at.matmul(g));
            }
            Op::Transpose(a) => {
                Self::accum(grads, *a, g.transpose());
            }
            Op::Tanh(a) => {
                let y = &self.nodes[id].value;
                Self::accum(grads, *a, g.zip(y, |dg, y| dg * (1.0 - y * y)));
            }
            Op::Relu(a) => {
                let x = &self.nodes[*a].value;
                Self::accum(grads, *a, g.zip(x, |dg, x| if x > 0.0 { dg } else { 0.0 }));
            }
            Op::SoftmaxRows(a) => {
                let y = &self.nodes[id].value;
                let cols = y.cols();
                let mut dx = y.clone();
                for r in 0..y.rows() {
                    let yr = &y.data[r * cols..(r + 1) * cols];
                    let gr = &g.data[r * cols..(r + 1) * cols];
                    let dot: f32 = yr.iter().zip(gr).map(|(&y, &dg)| y * dg).sum();
                    for j in 0..cols {
                        dx.data[r * cols + j] = yr[j] * (gr[j] - dot);
                    }
                }
                Self::accum(grads, *a, dx);
            }
            Op::Sum(a) => {
                let dg = g.data[0];
                let x = &self.nodes[*a].value;
                Self::accum(grads, *a, x.map(|_| dg));
            }
            Op::Mean(a) => {
                let x = &self.nodes[*a].value;
                let dg = g.data[0] / x.len() as f32;
                Self::accum(grads, *a, x.map(|_| dg));
            }
            Op::Abs(a) => {
                let x = &self.nodes[*a].value;
                Self::accum(grads, *a, g.zip(x, |dg, x| if x >= 0.0 { dg } else { -dg }));
            }
            Op::CumSum(a) => {
                // d/dx_i = Σ_{j ≥ i} g_j  (suffix sums).
                let mut dx = g.clone();
                let n = dx.len();
                for i in (0..n.saturating_sub(1)).rev() {
                    dx.data[i] += dx.data[i + 1];
                }
                Self::accum(grads, *a, dx);
            }
            Op::MaxReduce(a) => {
                let x = &self.nodes[*a].value;
                let m = self.nodes[id].value.data[0];
                let arg = x.data.iter().position(|&v| v == m).expect("max exists");
                let mut dx = Tensor::zeros(&x.shape);
                dx.data[arg] = g.data[0];
                Self::accum(grads, *a, dx);
            }
            Op::Select(a, idx) => {
                let x = &self.nodes[*a].value;
                let mut dx = Tensor::zeros(&x.shape);
                for (k, &i) in idx.iter().enumerate() {
                    dx.data[i] += g.data[k];
                }
                Self::accum(grads, *a, dx);
            }
            Op::Slice1D(a, start, len) => {
                let x = &self.nodes[*a].value;
                let mut dx = Tensor::zeros(&x.shape);
                dx.data[*start..start + len].copy_from_slice(&g.data);
                Self::accum(grads, *a, dx);
            }
            Op::SliceCols(a, start, len) => {
                let x = &self.nodes[*a].value;
                let (m, n) = (x.rows(), x.cols());
                let mut dx = Tensor::zeros(&[m, n]);
                for r in 0..m {
                    dx.data[r * n + start..r * n + start + len]
                        .copy_from_slice(&g.data[r * len..(r + 1) * len]);
                }
                Self::accum(grads, *a, dx);
            }
            Op::ConcatCols(parts) => {
                let m = self.nodes[id].value.rows();
                let total = self.nodes[id].value.cols();
                let mut off = 0;
                for &p in parts {
                    let n = self.nodes[p].value.cols();
                    let mut dp = Tensor::zeros(&[m, n]);
                    for r in 0..m {
                        dp.data[r * n..(r + 1) * n]
                            .copy_from_slice(&g.data[r * total + off..r * total + off + n]);
                    }
                    Self::accum(grads, p, dp);
                    off += n;
                }
            }
            Op::AddBias(a, bias) => {
                Self::accum(grads, *a, g.clone());
                let n = self.nodes[*bias].value.len();
                let mut db = Tensor::zeros(&[n]);
                for r in 0..g.rows() {
                    for c in 0..n {
                        db.data[c] += g.data[r * n + c];
                    }
                }
                Self::accum(grads, *bias, db);
            }
            Op::Flatten(a) => {
                let x = &self.nodes[*a].value;
                let mut dx = Tensor::zeros(&x.shape);
                dx.data.copy_from_slice(&g.data);
                Self::accum(grads, *a, dx);
            }
            Op::LayerNorm { x, gamma, beta } => {
                let xv = &self.nodes[*x].value;
                let gv = &self.nodes[*gamma].value;
                let n = xv.cols();
                let mut dx = Tensor::zeros(&xv.shape);
                let mut dgamma = Tensor::zeros(&[n]);
                let mut dbeta = Tensor::zeros(&[n]);
                for r in 0..xv.rows() {
                    let xr = &xv.data[r * n..(r + 1) * n];
                    let gr = &g.data[r * n..(r + 1) * n];
                    let mean = xr.iter().sum::<f32>() / n as f32;
                    let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                    let inv = 1.0 / (var + LN_EPS).sqrt();
                    let xhat: Vec<f32> = xr.iter().map(|&v| (v - mean) * inv).collect();
                    // Affine gradients.
                    for j in 0..n {
                        dgamma.data[j] += gr[j] * xhat[j];
                        dbeta.data[j] += gr[j];
                    }
                    // dxhat = g * gamma
                    let dxhat: Vec<f32> = (0..n).map(|j| gr[j] * gv.data[j]).collect();
                    let mean_dxhat = dxhat.iter().sum::<f32>() / n as f32;
                    let mean_dxhat_xhat =
                        dxhat.iter().zip(&xhat).map(|(&a, &b)| a * b).sum::<f32>() / n as f32;
                    for j in 0..n {
                        dx.data[r * n + j] =
                            inv * (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat);
                    }
                }
                Self::accum(grads, *x, dx);
                Self::accum(grads, *gamma, dgamma);
                Self::accum(grads, *beta, dbeta);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check: `build` constructs a
    /// scalar-rooted graph from parameter leaves; compares analytic and
    /// numeric gradients for every parameter scalar.
    fn check_gradients(
        params: Vec<(&str, Tensor)>,
        build: impl Fn(&mut Tape, &[NodeId]) -> NodeId,
        tol: f32,
    ) {
        let mut store = ParamStore::new();
        let ids: Vec<ParamId> = params
            .iter()
            .map(|(n, t)| store.add(n, t.clone()))
            .collect();

        // Analytic gradients.
        let mut tape = Tape::new(&store);
        let leaves: Vec<NodeId> = ids.iter().map(|&i| tape.param(i)).collect();
        let root = build(&mut tape, &leaves);
        let grads = tape.backward(root);

        // Numeric gradients.
        let eps = 1e-3f32;
        for (pi, &pid) in ids.iter().enumerate() {
            let len = store.value(pid).len();
            for k in 0..len {
                let eval = |delta: f32| -> f32 {
                    let mut s2 = store.clone();
                    s2.value_mut(pid).data[k] += delta;
                    let mut t2 = Tape::new(&s2);
                    let l2: Vec<NodeId> = ids.iter().map(|&i| t2.param(i)).collect();
                    let r2 = build(&mut t2, &l2);
                    t2.scalar_value(r2)
                };
                let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
                let analytic = grads.by_param[pid].as_ref().map_or(0.0, |g| g.data[k]);
                assert!(
                    (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                    "param {pi} ({}) elem {k}: numeric {numeric} vs analytic {analytic}",
                    params[pi].0,
                );
            }
        }
    }

    #[test]
    fn grad_add_mul_chain() {
        check_gradients(
            vec![
                ("a", Tensor::vector(vec![1.0, -2.0, 0.5])),
                ("b", Tensor::vector(vec![0.3, 0.7, -1.1])),
            ],
            |t, l| {
                let s = t.add(l[0], l[1]);
                let p = t.mul(s, l[0]);
                t.sum(p)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_bias() {
        check_gradients(
            vec![
                (
                    "x",
                    Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, -0.4, 0.3], &[2, 3]),
                ),
                (
                    "w",
                    Tensor::from_vec(vec![0.2, -0.5, 0.7, 0.1, 0.4, -0.3], &[3, 2]),
                ),
                ("b", Tensor::vector(vec![0.05, -0.02])),
            ],
            |t, l| {
                let y = t.matmul(l[0], l[1]);
                let y = t.add_bias(y, l[2]);
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_softmax() {
        check_gradients(
            vec![(
                "x",
                Tensor::from_vec(vec![0.1, 0.9, -0.5, 0.3, 0.2, 0.7], &[2, 3]),
            )],
            |t, l| {
                let y = t.softmax_rows(l[0]);
                let sq = t.square(y);
                t.sum(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_gradients(
            vec![
                (
                    "x",
                    Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.7, 1.5, 0.4], &[2, 4]),
                ),
                ("g", Tensor::vector(vec![1.0, 0.9, 1.1, 1.2])),
                ("b", Tensor::vector(vec![0.0, 0.1, -0.1, 0.05])),
            ],
            |t, l| {
                let y = t.layer_norm(l[0], l[1], l[2]);
                let sq = t.square(y);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_cumsum_abs_mean() {
        // The 1-D EMD shape: mean(|cumsum(x - y)|).
        check_gradients(
            vec![
                ("x", Tensor::vector(vec![0.5, 1.5, -0.3, 0.9])),
                ("y", Tensor::vector(vec![0.1, 1.1, 0.4, 0.2])),
            ],
            |t, l| {
                let d = t.sub(l[0], l[1]);
                let c = t.cumsum(d);
                let a = t.abs(c);
                t.mean(a)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_max_select_slice() {
        check_gradients(
            vec![("x", Tensor::vector(vec![0.5, 2.5, -0.3, 0.9, 1.7]))],
            |t, l| {
                let m = t.max_reduce(l[0]); // -> 2.5 at idx 1
                let sel = t.select(l[0], &[0, 3]);
                let sl = t.slice1d(l[0], 2, 2);
                let s1 = t.sum(sel);
                let s2 = t.sum(sl);
                let a = t.add(m, s1);
                t.add(a, s2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_slice_concat_cols() {
        check_gradients(
            vec![(
                "x",
                Tensor::from_vec((0..12).map(|i| (i as f32) * 0.1 - 0.5).collect(), &[3, 4]),
            )],
            |t, l| {
                let a = t.slice_cols(l[0], 0, 2);
                let b = t.slice_cols(l[0], 2, 2);
                let swapped = t.concat_cols(&[b, a]);
                let y = t.tanh(swapped);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_transpose_and_attention_shape() {
        // Mini attention: softmax(QK^T) V.
        check_gradients(
            vec![
                (
                    "q",
                    Tensor::from_vec(vec![0.1, 0.5, -0.3, 0.7, 0.2, -0.1], &[3, 2]),
                ),
                (
                    "k",
                    Tensor::from_vec(vec![0.4, -0.2, 0.3, 0.6, -0.5, 0.1], &[3, 2]),
                ),
                (
                    "v",
                    Tensor::from_vec(vec![1.0, 0.0, 0.5, -0.5, 0.2, 0.8], &[3, 2]),
                ),
            ],
            |t, l| {
                let kt = t.transpose(l[1]);
                let scores = t.matmul(l[0], kt);
                let att = t.softmax_rows(scores);
                let out = t.matmul(att, l[2]);
                let sq = t.square(out);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_relu_hinge() {
        check_gradients(
            vec![("x", Tensor::vector(vec![0.5, -1.5, 2.0, 0.1]))],
            |t, l| {
                let shifted = t.scalar_add(l[0], -0.3);
                let h = t.relu(shifted);
                let sc = t.scalar_mul(h, 2.0);
                t.sum(sc)
            },
            1e-2,
        );
    }

    #[test]
    fn shared_node_gradient_accumulates() {
        // y = x * x built via the same node twice: dy/dx = 2x.
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::vector(vec![3.0]));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let y = tape.mul(x, x);
        let root = tape.sum(y);
        let grads = tape.backward(root);
        assert_eq!(grads.by_param[p].as_ref().unwrap().data, vec![6.0]);
    }

    #[test]
    fn constants_produce_no_param_grads() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let c = tape.constant(Tensor::vector(vec![1.0, 2.0]));
        let s = tape.sum(c);
        let grads = tape.backward(s);
        assert!(grads.by_param.is_empty());
        assert_eq!(tape.scalar_value(s), 3.0);
    }
}

#[cfg(test)]
mod ext_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gelu_matches_reference_values() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::vector(vec![-2.0, -1.0, 0.0, 1.0, 2.0]));
        let y = tape.gelu(x);
        // Reference values of the tanh-approximated GELU.
        let expect = [-0.0454, -0.1588, 0.0, 0.8412, 1.9546];
        for (got, want) in tape.value(y).data.iter().zip(expect) {
            assert!((got - want).abs() < 1e-3, "gelu {got} vs {want}");
        }
    }

    #[test]
    fn gelu_gradient_checks_against_finite_differences() {
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::vector(vec![-1.5, -0.2, 0.4, 1.7]));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let y = tape.gelu(x);
        let root = tape.sum(y);
        let grads = tape.backward(root);
        let g = grads.by_param[p].as_ref().unwrap();
        let eps = 1e-3f32;
        for k in 0..4 {
            let eval = |d: f32| {
                let mut s2 = store.clone();
                s2.value_mut(p).data[k] += d;
                let mut t2 = Tape::new(&s2);
                let x2 = t2.param(p);
                let y2 = t2.gelu(x2);
                let r2 = t2.sum(y2);
                t2.scalar_value(r2)
            };
            let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (numeric - g.data[k]).abs() < 1e-2,
                "elem {k}: {numeric} vs {}",
                g.data[k]
            );
        }
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::vector(vec![1.0; 1000]));
        let mut rng = StdRng::seed_from_u64(5);
        let y = tape.dropout(x, 0.3, &mut rng);
        let v = tape.value(y);
        let zeros = v.data.iter().filter(|&&a| a == 0.0).count();
        // ~30% dropped.
        assert!((200..400).contains(&zeros), "zeros = {zeros}");
        // Survivors rescaled by 1/0.7; expectation preserved.
        let mean = v.sum() / 1000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}");
        for &a in &v.data {
            assert!(a == 0.0 || (a - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::vector(vec![1.0, 2.0]));
        let mut rng = StdRng::seed_from_u64(5);
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(x, y, "p=0 must not add a node");
    }
}
