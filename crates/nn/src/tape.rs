//! Tape-based reverse-mode automatic differentiation.
//!
//! A [`Tape`] records a DAG of operations as it executes the forward pass;
//! [`Tape::backward`] then walks the nodes in reverse, accumulating
//! gradients. Parameters live outside the tape in a
//! [`crate::params::ParamStore`]; a leaf created with [`Tape::param`]
//! remembers its [`crate::params::ParamId`] so backward can report
//! per-parameter gradients for the optimizer.
//!
//! The op vocabulary is deliberately small but sufficient for a
//! transformer encoder *and* the paper's constraint terms: cumulative sums
//! (EMD loss), max/select reductions (C1/C2 residuals) and tanh/relu
//! (the differentiable relaxation of C3).

use crate::kernel::{gemm_nn, gemm_nt, gemm_tn, GemmOpts, KernelMode};
use crate::params::{Gradients, ParamId, ParamStore};
use crate::tensor::Tensor;
use fmml_obs::Counter;
use std::cell::RefCell;

/// Index of a node on a tape.
pub type NodeId = usize;

const LN_EPS: f32 = 1e-5;

/// Tapes constructed.
static TAPES: Counter = Counter::new("nn.tape.tapes");
/// Nodes recorded across all dropped tapes.
static NODES: Counter = Counter::new("nn.tape.nodes");
/// Tensor buffers served from the recycling pool.
static BUF_HITS: Counter = Counter::new("nn.tape.buf_hits");
/// Tensor buffers that had to be freshly allocated.
static BUF_MISSES: Counter = Counter::new("nn.tape.buf_misses");

/// Maximum number of recycled buffers the thread-local arena retains.
const POOL_CAP: usize = 4096;

/// Snapshot of the tape counters (for benchmark deltas).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TapeStats {
    pub tapes: u64,
    pub nodes: u64,
    pub buf_hits: u64,
    pub buf_misses: u64,
}

/// Current cumulative tape counters.
pub fn stats() -> TapeStats {
    TapeStats {
        tapes: TAPES.get(),
        nodes: NODES.get(),
        buf_hits: BUF_HITS.get(),
        buf_misses: BUF_MISSES.get(),
    }
}

impl std::ops::Sub for TapeStats {
    type Output = TapeStats;
    fn sub(self, rhs: TapeStats) -> TapeStats {
        TapeStats {
            tapes: self.tapes - rhs.tapes,
            nodes: self.nodes - rhs.nodes,
            buf_hits: self.buf_hits - rhs.buf_hits,
            buf_misses: self.buf_misses - rhs.buf_misses,
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Add(NodeId, NodeId),
    Mul(NodeId, NodeId),
    ScalarMul(NodeId, f32),
    // The constant is not needed by the backward pass (d(x+k)/dx = 1) but
    // is kept for graph debugging.
    ScalarAdd(NodeId, #[allow(dead_code)] f32),
    Matmul(NodeId, NodeId),
    Transpose(NodeId),
    Tanh(NodeId),
    Relu(NodeId),
    SoftmaxRows(NodeId),
    Sum(NodeId),
    Mean(NodeId),
    Abs(NodeId),
    CumSum(NodeId),
    MaxReduce(NodeId),
    Select(NodeId, Vec<usize>),
    Slice1D(NodeId, usize, usize),
    SliceCols(NodeId, usize, usize),
    ConcatCols(Vec<NodeId>),
    AddBias(NodeId, NodeId),
    /// Fused `x·W + b` (one kernel call; bias is the accumulator init).
    Affine {
        x: NodeId,
        w: NodeId,
        b: NodeId,
    },
    /// Fused `scale · A·Bᵀ` with `B` row-major — the attention-score
    /// shape, computed without materializing the transpose or a scaled
    /// copy.
    MatmulScaledNT(NodeId, NodeId, f32),
    LayerNorm {
        x: NodeId,
        gamma: NodeId,
        beta: NodeId,
    },
    /// Reinterpret a `[1,n]` or `[n,1]` tensor as 1-D `[n]`.
    Flatten(NodeId),
}

struct Node {
    value: Tensor,
    op: Op,
    param: Option<ParamId>,
}

/// Thread-local recycling arena for tape storage. A dropped [`Tape`]
/// returns its node vector and every node's `f32` buffer here; the next
/// `Tape::new` on the same thread starts from that storage instead of
/// allocating. Training builds one tape per example with an identical op
/// sequence, so after the first sample the pool reaches a steady state
/// where forward **and** backward run allocation-free.
///
/// [`KernelMode::Reference`] disables the arena (nothing is taken or
/// returned), so benchmark reference passes reproduce the historical
/// allocate-per-sample substrate honestly.
#[derive(Default)]
pub struct TapeArena {
    nodes: Vec<Node>,
    bufs: Vec<Vec<f32>>,
}

/// Exiting threads hand their warm arena to this freelist, and a fresh
/// thread's first `Tape::new` adopts one instead of allocating from
/// scratch. The vendored rayon spawns transient OS workers per batch;
/// without the handoff every data-parallel batch would restart the pool
/// cold and the parallel path would pay full allocation traffic.
static ARENA_FREELIST: std::sync::Mutex<Vec<TapeArena>> = std::sync::Mutex::new(Vec::new());

/// Bound on parked arenas (memory ceiling, not a correctness knob).
const FREELIST_CAP: usize = 32;

/// Thread-local slot whose destructor parks the arena on
/// [`ARENA_FREELIST`] when the thread exits.
struct ArenaSlot(TapeArena);

impl Drop for ArenaSlot {
    fn drop(&mut self) {
        let arena = std::mem::take(&mut self.0);
        if arena.bufs.is_empty() && arena.nodes.capacity() == 0 {
            return;
        }
        // Never panic in a thread-local destructor: skip on poison.
        if let Ok(mut list) = ARENA_FREELIST.lock() {
            if list.len() < FREELIST_CAP {
                list.push(arena);
            }
        }
    }
}

thread_local! {
    static ARENA: RefCell<ArenaSlot> = RefCell::new(ArenaSlot(TapeArena::default()));
}

impl TapeArena {
    /// Number of recycled buffers pooled on this thread.
    pub fn pooled() -> usize {
        ARENA.with(|a| a.borrow().0.bufs.len())
    }

    /// Drop all pooled storage on this thread.
    pub fn clear() {
        ARENA.with(|a| a.borrow_mut().0 = TapeArena::default());
    }

    /// Adopt a parked arena from an exited thread, if any.
    fn adopt() -> Option<TapeArena> {
        ARENA_FREELIST.lock().ok()?.pop()
    }
}

/// Pop a recycled buffer (cleared, capacity kept) or allocate one.
fn take_buf(pool: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    match pool.pop() {
        Some(mut b) => {
            BUF_HITS.inc();
            b.clear();
            b.reserve(len);
            b
        }
        None => {
            BUF_MISSES.inc();
            Vec::with_capacity(len)
        }
    }
}

/// A pooled buffer of exactly `len` zeros (for indexed writes).
fn take_buf_zeroed(pool: &mut Vec<Vec<f32>>, len: usize) -> Vec<f32> {
    let mut b = take_buf(pool, len);
    b.resize(len, 0.0);
    b
}

fn recycle(pool: &mut Vec<Vec<f32>>, buf: Vec<f32>) {
    if pool.len() < POOL_CAP && buf.capacity() > 0 {
        pool.push(buf);
    }
}

fn pooled_copy(pool: &mut Vec<Vec<f32>>, t: &Tensor) -> Tensor {
    let mut data = take_buf(pool, t.len());
    data.extend_from_slice(&t.data);
    Tensor {
        data,
        shape: t.shape.clone(),
    }
}

fn pooled_map(pool: &mut Vec<Vec<f32>>, t: &Tensor, mut f: impl FnMut(f32) -> f32) -> Tensor {
    let mut data = take_buf(pool, t.len());
    data.extend(t.data.iter().map(|&x| f(x)));
    Tensor {
        data,
        shape: t.shape.clone(),
    }
}

fn pooled_zip(
    pool: &mut Vec<Vec<f32>>,
    x: &Tensor,
    y: &Tensor,
    f: impl Fn(f32, f32) -> f32,
) -> Tensor {
    assert_eq!(x.shape, y.shape, "shape mismatch");
    let mut data = take_buf(pool, x.len());
    data.extend(x.data.iter().zip(&y.data).map(|(&a, &b)| f(a, b)));
    Tensor {
        data,
        shape: x.shape.clone(),
    }
}

/// The autograd tape. Create one per training example, build the forward
/// graph, call [`Tape::backward`] on a scalar loss. Storage is recycled
/// through the thread-local [`TapeArena`] unless the thread is in
/// [`KernelMode::Reference`].
pub struct Tape<'s> {
    store: &'s ParamStore,
    nodes: Vec<Node>,
    pool: Vec<Vec<f32>>,
    pooled: bool,
}

impl<'s> Tape<'s> {
    pub fn new(store: &'s ParamStore) -> Tape<'s> {
        TAPES.inc();
        let pooled = crate::kernel::current_mode() != KernelMode::Reference;
        let (nodes, pool) = if pooled {
            let (nodes, pool) = ARENA
                .try_with(|a| {
                    let mut a = a.borrow_mut();
                    (
                        std::mem::take(&mut a.0.nodes),
                        std::mem::take(&mut a.0.bufs),
                    )
                })
                .unwrap_or_default();
            if pool.is_empty() && nodes.capacity() == 0 {
                // Cold thread (e.g. a transient rayon worker): adopt a
                // warm arena parked by an exited thread.
                match TapeArena::adopt() {
                    Some(a) => (a.nodes, a.bufs),
                    None => (nodes, pool),
                }
            } else {
                (nodes, pool)
            }
        } else {
            (Vec::new(), Vec::new())
        };
        Tape {
            store,
            nodes,
            pool,
            pooled,
        }
    }

    fn push(&mut self, value: Tensor, op: Op) -> NodeId {
        self.nodes.push(Node {
            value,
            op,
            param: None,
        });
        self.nodes.len() - 1
    }

    /// Value of a node.
    pub fn value(&self, id: NodeId) -> &Tensor {
        &self.nodes[id].value
    }

    /// Scalar value of a rank-1, length-1 node.
    pub fn scalar_value(&self, id: NodeId) -> f32 {
        debug_assert_eq!(self.nodes[id].value.len(), 1);
        self.nodes[id].value.data[0]
    }

    // ---- leaves ----

    /// A leaf holding a parameter (gradient is reported for it).
    pub fn param(&mut self, id: ParamId) -> NodeId {
        let value = pooled_copy(&mut self.pool, self.store.value(id));
        let n = self.push(value, Op::Leaf);
        self.nodes[n].param = Some(id);
        n
    }

    /// A constant leaf (input data; no gradient reported).
    pub fn constant(&mut self, t: Tensor) -> NodeId {
        self.push(t, Op::Leaf)
    }

    /// A constant leaf copied from a slice into pooled storage (use this
    /// instead of building a `Tensor` when the caller's buffer is
    /// reused, e.g. the positional-encoding window).
    pub fn constant_from(&mut self, data: &[f32], shape: &[usize]) -> NodeId {
        assert_eq!(
            data.len(),
            shape.iter().product::<usize>(),
            "shape/data mismatch"
        );
        let mut buf = take_buf(&mut self.pool, data.len());
        buf.extend_from_slice(data);
        self.push(
            Tensor {
                data: buf,
                shape: shape.to_vec(),
            },
            Op::Leaf,
        )
    }

    pub fn scalar(&mut self, v: f32) -> NodeId {
        self.constant(Tensor::scalar(v))
    }

    // ---- elementwise / arithmetic ----

    pub fn add(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_zip(pool, &nodes[a].value, &nodes[b].value, |x, y| x + y);
        self.push(v, Op::Add(a, b))
    }

    pub fn mul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_zip(pool, &nodes[a].value, &nodes[b].value, |x, y| x * y);
        self.push(v, Op::Mul(a, b))
    }

    pub fn scalar_mul(&mut self, a: NodeId, k: f32) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_map(pool, &nodes[a].value, |x| x * k);
        self.push(v, Op::ScalarMul(a, k))
    }

    pub fn scalar_add(&mut self, a: NodeId, k: f32) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_map(pool, &nodes[a].value, |x| x + k);
        self.push(v, Op::ScalarAdd(a, k))
    }

    pub fn sub(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let nb = self.scalar_mul(b, -1.0);
        self.add(a, nb)
    }

    pub fn square(&mut self, a: NodeId) -> NodeId {
        self.mul(a, a)
    }

    // ---- linear algebra ----

    pub fn matmul(&mut self, a: NodeId, b: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let av = &nodes[a].value;
        let bv = &nodes[b].value;
        assert_eq!(av.rank(), 2, "matmul lhs must be 2-D");
        assert_eq!(bv.rank(), 2, "matmul rhs must be 2-D");
        let (m, k) = (av.shape[0], av.shape[1]);
        let (k2, n) = (bv.shape[0], bv.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = take_buf_zeroed(pool, m * n);
        gemm_nn(&av.data, &bv.data, &mut out, m, k, n, GemmOpts::default());
        self.push(
            Tensor {
                data: out,
                shape: vec![m, n],
            },
            Op::Matmul(a, b),
        )
    }

    pub fn transpose(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        assert_eq!(x.rank(), 2);
        let (m, n) = (x.shape[0], x.shape[1]);
        let mut out = take_buf_zeroed(pool, m * n);
        for i in 0..m {
            for j in 0..n {
                out[j * m + i] = x.data[i * n + j];
            }
        }
        self.push(
            Tensor {
                data: out,
                shape: vec![n, m],
            },
            Op::Transpose(a),
        )
    }

    /// `[m,n] + [n]` broadcast add.
    pub fn add_bias(&mut self, a: NodeId, bias: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let m = &nodes[a].value;
        let b = &nodes[bias].value;
        assert_eq!(b.rank(), 1);
        assert_eq!(m.cols(), b.len(), "bias length mismatch");
        let (rows, cols) = (m.rows(), m.cols());
        let mut out = pooled_copy(pool, m);
        for r in 0..rows {
            for c in 0..cols {
                out.data[r * cols + c] += b.data[c];
            }
        }
        self.push(out, Op::AddBias(a, bias))
    }

    /// Fused affine transform `x·W + b` in a single kernel call: the
    /// bias seeds each accumulator, so no separate broadcast-add node or
    /// intermediate copy exists. Bitwise identical to
    /// `add_bias(matmul(x, w), b)` by the canonical summation order
    /// (`bias[j]` is the `init` term).
    pub fn affine(&mut self, x: NodeId, w: NodeId, b: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let xv = &nodes[x].value;
        let wv = &nodes[w].value;
        let bv = &nodes[b].value;
        assert_eq!(xv.rank(), 2, "affine input must be 2-D");
        assert_eq!(wv.rank(), 2, "affine weight must be 2-D");
        assert_eq!(bv.rank(), 1, "affine bias must be 1-D");
        let (m, k) = (xv.shape[0], xv.shape[1]);
        let (k2, n) = (wv.shape[0], wv.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        assert_eq!(bv.len(), n, "bias length mismatch");
        let mut out = take_buf_zeroed(pool, m * n);
        gemm_nn(
            &xv.data,
            &wv.data,
            &mut out,
            m,
            k,
            n,
            GemmOpts {
                bias: Some(&bv.data),
                scale: None,
            },
        );
        self.push(
            Tensor {
                data: out,
                shape: vec![m, n],
            },
            Op::Affine { x, w, b },
        )
    }

    /// Fused `scale · A·Bᵀ` where `B` is row-major `[n,k]` — the
    /// attention-score product `s·Q·Kᵀ` without materializing `Kᵀ` or a
    /// scaled copy. Bitwise identical to
    /// `scalar_mul(matmul(a, transpose(b)), scale)`: the dot products
    /// see the same operand sequences and the scale is one trailing
    /// multiply either way.
    pub fn matmul_scaled_nt(&mut self, a: NodeId, b: NodeId, scale: f32) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let av = &nodes[a].value;
        let bv = &nodes[b].value;
        assert_eq!(av.rank(), 2, "matmul_scaled_nt lhs must be 2-D");
        assert_eq!(bv.rank(), 2, "matmul_scaled_nt rhs must be 2-D");
        let (m, k) = (av.shape[0], av.shape[1]);
        let (n, k2) = (bv.shape[0], bv.shape[1]);
        assert_eq!(k, k2, "inner dimensions differ: {k} vs {k2}");
        let mut out = take_buf_zeroed(pool, m * n);
        gemm_nt(
            &av.data,
            &bv.data,
            &mut out,
            m,
            k,
            n,
            GemmOpts {
                bias: None,
                scale: Some(scale),
            },
        );
        self.push(
            Tensor {
                data: out,
                shape: vec![m, n],
            },
            Op::MatmulScaledNT(a, b, scale),
        )
    }

    // ---- nonlinearities ----

    pub fn tanh(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_map(pool, &nodes[a].value, f32::tanh);
        self.push(v, Op::Tanh(a))
    }

    pub fn relu(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_map(pool, &nodes[a].value, |x| x.max(0.0));
        self.push(v, Op::Relu(a))
    }

    /// GELU (tanh approximation), composed from primitive ops so the
    /// backward pass needs no dedicated kernel.
    pub fn gelu(&mut self, a: NodeId) -> NodeId {
        // 0.5·x·(1 + tanh(√(2/π)·(x + 0.044715·x³)))
        const C: f32 = 0.797_884_6; // sqrt(2/pi)
        let x3 = {
            let x2 = self.mul(a, a);
            self.mul(x2, a)
        };
        let inner = {
            let scaled_x3 = self.scalar_mul(x3, 0.044715);
            let sum = self.add(a, scaled_x3);
            self.scalar_mul(sum, C)
        };
        let t = self.tanh(inner);
        let one_plus = self.scalar_add(t, 1.0);
        let half_x = self.scalar_mul(a, 0.5);
        self.mul(half_x, one_plus)
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1−p)`. The mask is built from the given
    /// RNG (deterministic under a seeded RNG); pass `p = 0` for a no-op.
    /// Implemented as a multiply by a constant mask, so the backward pass
    /// routes gradients only through surviving elements.
    pub fn dropout<R: rand::Rng + ?Sized>(&mut self, a: NodeId, p: f32, rng: &mut R) -> NodeId {
        assert!(
            (0.0..1.0).contains(&p),
            "dropout probability must be in [0,1)"
        );
        if p == 0.0 {
            return a;
        }
        use rand::RngExt;
        let keep = 1.0 - p;
        let shape = self.nodes[a].value.shape.clone();
        let len = self.nodes[a].value.len();
        let mut data = take_buf(&mut self.pool, len);
        data.extend((0..len).map(|_| {
            if rng.random::<f32>() < keep {
                1.0 / keep
            } else {
                0.0
            }
        }));
        let m = self.push(Tensor { data, shape }, Op::Leaf);
        self.mul(a, m)
    }

    /// Row-wise softmax of a 2-D tensor (or of a 1-D tensor as one row).
    ///
    /// A zero-mass row (every entry `-∞`, as a fully-masked attention
    /// row produces) has no well-defined softmax: naively `m = -∞` makes
    /// every `(v - m)` NaN and the normalizer zero. Such rows are
    /// returned **uniform** (`1/cols`) instead — the limit of softmax as
    /// all logits tend to `-∞` together, and the only choice that keeps
    /// masked attention finite.
    pub fn softmax_rows(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        let cols = x.cols();
        let mut out = pooled_copy(pool, x);
        for r in 0..x.rows() {
            let row = &mut out.data[r * cols..(r + 1) * cols];
            let m = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            if m == f32::NEG_INFINITY {
                // All-(-∞) (or empty) row: uniform, not NaN.
                row.fill(1.0 / cols as f32);
                continue;
            }
            let mut z = 0.0;
            for v in row.iter_mut() {
                *v = (*v - m).exp();
                z += *v;
            }
            for v in row.iter_mut() {
                *v /= z;
            }
        }
        self.push(out, Op::SoftmaxRows(a))
    }

    /// Layer normalization over the last dimension, with affine params.
    pub fn layer_norm(&mut self, x: NodeId, gamma: NodeId, beta: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let xv = &nodes[x].value;
        let g = &nodes[gamma].value;
        let b = &nodes[beta].value;
        let n = xv.cols();
        assert_eq!(g.len(), n);
        assert_eq!(b.len(), n);
        let mut out = pooled_copy(pool, xv);
        for r in 0..xv.rows() {
            let row = &mut out.data[r * n..(r + 1) * n];
            let mean = row.iter().sum::<f32>() / n as f32;
            let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
            let inv = 1.0 / (var + LN_EPS).sqrt();
            for (j, v) in row.iter_mut().enumerate() {
                *v = (*v - mean) * inv * g.data[j] + b.data[j];
            }
        }
        self.push(out, Op::LayerNorm { x, gamma, beta })
    }

    // ---- reductions / reshaping ----

    pub fn sum(&mut self, a: NodeId) -> NodeId {
        let v = Tensor::scalar(self.nodes[a].value.sum());
        self.push(v, Op::Sum(a))
    }

    pub fn mean(&mut self, a: NodeId) -> NodeId {
        let t = &self.nodes[a].value;
        let v = Tensor::scalar(t.sum() / t.len() as f32);
        self.push(v, Op::Mean(a))
    }

    pub fn abs(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let v = pooled_map(pool, &nodes[a].value, f32::abs);
        self.push(v, Op::Abs(a))
    }

    /// Cumulative sum of a 1-D tensor.
    pub fn cumsum(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        assert_eq!(x.rank(), 1, "cumsum is 1-D");
        let mut acc = 0.0;
        let v = pooled_map(pool, x, |val| {
            acc += val;
            acc
        });
        self.push(v, Op::CumSum(a))
    }

    /// Maximum element of a 1-D tensor (subgradient to the first argmax).
    pub fn max_reduce(&mut self, a: NodeId) -> NodeId {
        let x = &self.nodes[a].value;
        assert_eq!(x.rank(), 1);
        assert!(!x.is_empty());
        let m = x.data.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
        self.push(Tensor::scalar(m), Op::MaxReduce(a))
    }

    /// Gather elements of a 1-D tensor at `indices`.
    pub fn select(&mut self, a: NodeId, indices: &[usize]) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        assert_eq!(x.rank(), 1);
        let mut data = take_buf(pool, indices.len());
        data.extend(indices.iter().map(|&i| x.data[i]));
        let v = Tensor {
            data,
            shape: vec![indices.len()],
        };
        self.push(v, Op::Select(a, indices.to_vec()))
    }

    /// Contiguous 1-D slice `[start, start+len)`.
    pub fn slice1d(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        assert_eq!(x.rank(), 1);
        assert!(start + len <= x.len());
        let mut data = take_buf(pool, len);
        data.extend_from_slice(&x.data[start..start + len]);
        let v = Tensor {
            data,
            shape: vec![len],
        };
        self.push(v, Op::Slice1D(a, start, len))
    }

    /// Column slice `[.., start..start+len]` of a 2-D tensor.
    pub fn slice_cols(&mut self, a: NodeId, start: usize, len: usize) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        assert_eq!(x.rank(), 2);
        let (m, n) = (x.rows(), x.cols());
        assert!(start + len <= n);
        let mut data = take_buf(pool, m * len);
        for r in 0..m {
            data.extend_from_slice(&x.data[r * n + start..r * n + start + len]);
        }
        let out = Tensor {
            data,
            shape: vec![m, len],
        };
        self.push(out, Op::SliceCols(a, start, len))
    }

    /// Concatenate 2-D tensors with equal row counts along columns.
    pub fn concat_cols(&mut self, parts: &[NodeId]) -> NodeId {
        assert!(!parts.is_empty());
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let m = nodes[parts[0]].value.rows();
        let total: usize = parts.iter().map(|&p| nodes[p].value.cols()).sum();
        let mut data = take_buf_zeroed(pool, m * total);
        let mut off = 0;
        for &p in parts {
            let x = &nodes[p].value;
            assert_eq!(x.rows(), m, "row count mismatch in concat");
            let n = x.cols();
            for r in 0..m {
                data[r * total + off..r * total + off + n]
                    .copy_from_slice(&x.data[r * n..(r + 1) * n]);
            }
            off += n;
        }
        let out = Tensor {
            data,
            shape: vec![m, total],
        };
        self.push(out, Op::ConcatCols(parts.to_vec()))
    }

    /// Reinterpret a single-row or single-column 2-D tensor as 1-D.
    pub fn flatten(&mut self, a: NodeId) -> NodeId {
        let Tape {
            ref nodes,
            ref mut pool,
            ..
        } = *self;
        let x = &nodes[a].value;
        assert_eq!(x.rank(), 2, "flatten takes a 2-D tensor");
        assert!(
            x.rows() == 1 || x.cols() == 1,
            "flatten needs a single row or column, got {:?}",
            x.shape
        );
        let mut v = pooled_copy(pool, x);
        v.shape = vec![x.len()];
        self.push(v, Op::Flatten(a))
    }

    // ---- backward ----

    /// Reverse-mode sweep from a scalar `root`; returns per-parameter
    /// gradients. Takes `&mut self` so the gradient buffers it allocates
    /// can be recycled into the tape's pool afterwards — on a warm
    /// arena, backward is allocation-free too.
    pub fn backward(&mut self, root: NodeId) -> Gradients {
        assert_eq!(
            self.nodes[root].value.len(),
            1,
            "backward root must be scalar"
        );
        let mut grads: Vec<Option<Tensor>> = Vec::new();
        grads.resize_with(self.nodes.len(), || None);
        grads[root] = Some(Tensor::scalar(1.0));

        for id in (0..=root).rev() {
            let Some(g) = grads[id].take() else { continue };
            {
                let Tape {
                    ref nodes,
                    ref mut pool,
                    ..
                } = *self;
                propagate(nodes, pool, id, &g, &mut grads);
            }
            grads[id] = Some(g);
        }

        let mut out = Gradients::new(self.store.len());
        for (id, node) in self.nodes.iter().enumerate() {
            if let (Some(pid), Some(g)) = (node.param, &grads[id]) {
                out.add(pid, g);
            }
        }
        if self.pooled {
            for g in grads.into_iter().flatten() {
                recycle(&mut self.pool, g.data);
            }
        }
        out
    }
}

impl Drop for Tape<'_> {
    /// Return the tape's node vector and every node's buffer to the
    /// thread-local [`TapeArena`] (unless pooling is disabled or the
    /// thread is tearing down).
    fn drop(&mut self) {
        NODES.add(self.nodes.len() as u64);
        if !self.pooled {
            return;
        }
        let mut nodes = std::mem::take(&mut self.nodes);
        let mut pool = std::mem::take(&mut self.pool);
        for node in nodes.drain(..) {
            recycle(&mut pool, node.value.data);
        }
        let _ = ARENA.try_with(|a| {
            let mut a = a.borrow_mut();
            if a.0.nodes.capacity() < nodes.capacity() {
                a.0.nodes = nodes;
            }
            while a.0.bufs.len() < POOL_CAP {
                match pool.pop() {
                    Some(b) => a.0.bufs.push(b),
                    None => break,
                }
            }
        });
    }
}

fn accum(pool: &mut Vec<Vec<f32>>, grads: &mut [Option<Tensor>], id: NodeId, g: Tensor) {
    match &mut grads[id] {
        Some(acc) => {
            acc.add_inplace(&g);
            recycle(pool, g.data);
        }
        slot => *slot = Some(g),
    }
}

fn propagate(
    nodes: &[Node],
    pool: &mut Vec<Vec<f32>>,
    id: NodeId,
    g: &Tensor,
    grads: &mut [Option<Tensor>],
) {
    match &nodes[id].op {
        Op::Leaf => {}
        Op::Add(a, b) => {
            let ga = pooled_copy(pool, g);
            accum(pool, grads, *a, ga);
            let gb = pooled_copy(pool, g);
            accum(pool, grads, *b, gb);
        }
        Op::Mul(a, b) => {
            let ga = pooled_zip(pool, g, &nodes[*b].value, |dg, y| dg * y);
            accum(pool, grads, *a, ga);
            let gb = pooled_zip(pool, g, &nodes[*a].value, |dg, x| dg * x);
            accum(pool, grads, *b, gb);
        }
        Op::ScalarMul(a, k) => {
            let k = *k;
            let ga = pooled_map(pool, g, |x| x * k);
            accum(pool, grads, *a, ga);
        }
        Op::ScalarAdd(a, _) => {
            let ga = pooled_copy(pool, g);
            accum(pool, grads, *a, ga);
        }
        Op::Matmul(a, b) => {
            // Transpose-free backward: dA = G·Bᵀ via the NT kernel and
            // dB = Aᵀ·G via the TN kernel — the per-element operand
            // sequences match the historical materialize-the-transpose
            // formulation bit for bit, without the two `[k,·]` copies.
            let av = &nodes[*a].value;
            let bv = &nodes[*b].value;
            let (m, kd) = (av.rows(), av.cols());
            let n = bv.cols();
            let mut da = take_buf_zeroed(pool, m * kd);
            gemm_nt(&g.data, &bv.data, &mut da, m, n, kd, GemmOpts::default());
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: da,
                    shape: vec![m, kd],
                },
            );
            let mut db = take_buf_zeroed(pool, kd * n);
            gemm_tn(&av.data, &g.data, &mut db, m, kd, n, GemmOpts::default());
            accum(
                pool,
                grads,
                *b,
                Tensor {
                    data: db,
                    shape: vec![kd, n],
                },
            );
        }
        Op::Affine { x, w, b } => {
            // dX = G·Wᵀ, dW = Xᵀ·G, db = column sums of G.
            let xv = &nodes[*x].value;
            let wv = &nodes[*w].value;
            let (m, kd) = (xv.rows(), xv.cols());
            let n = wv.cols();
            let mut dx = take_buf_zeroed(pool, m * kd);
            gemm_nt(&g.data, &wv.data, &mut dx, m, n, kd, GemmOpts::default());
            accum(
                pool,
                grads,
                *x,
                Tensor {
                    data: dx,
                    shape: vec![m, kd],
                },
            );
            let mut dw = take_buf_zeroed(pool, kd * n);
            gemm_tn(&xv.data, &g.data, &mut dw, m, kd, n, GemmOpts::default());
            accum(
                pool,
                grads,
                *w,
                Tensor {
                    data: dw,
                    shape: vec![kd, n],
                },
            );
            let mut db = take_buf_zeroed(pool, n);
            for row in g.data.chunks_exact(n) {
                for (d, &v) in db.iter_mut().zip(row) {
                    *d += v;
                }
            }
            accum(
                pool,
                grads,
                *b,
                Tensor {
                    data: db,
                    shape: vec![n],
                },
            );
        }
        Op::MatmulScaledNT(a, b, s) => {
            // y = s·A·Bᵀ ⇒ dA = s·G·B, dB = s·Gᵀ·A.
            let av = &nodes[*a].value;
            let bv = &nodes[*b].value;
            let (m, kd) = (av.rows(), av.cols());
            let n = bv.rows();
            let opts = GemmOpts {
                bias: None,
                scale: Some(*s),
            };
            let mut da = take_buf_zeroed(pool, m * kd);
            gemm_nn(&g.data, &bv.data, &mut da, m, n, kd, opts);
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: da,
                    shape: vec![m, kd],
                },
            );
            let mut db = take_buf_zeroed(pool, n * kd);
            gemm_tn(&g.data, &av.data, &mut db, m, n, kd, opts);
            accum(
                pool,
                grads,
                *b,
                Tensor {
                    data: db,
                    shape: vec![n, kd],
                },
            );
        }
        Op::Transpose(a) => {
            let (m, n) = (g.rows(), g.cols());
            let mut data = take_buf_zeroed(pool, m * n);
            for i in 0..m {
                for j in 0..n {
                    data[j * m + i] = g.data[i * n + j];
                }
            }
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data,
                    shape: vec![n, m],
                },
            );
        }
        Op::Tanh(a) => {
            let y = &nodes[id].value;
            let ga = pooled_zip(pool, g, y, |dg, y| dg * (1.0 - y * y));
            accum(pool, grads, *a, ga);
        }
        Op::Relu(a) => {
            let x = &nodes[*a].value;
            let ga = pooled_zip(pool, g, x, |dg, x| if x > 0.0 { dg } else { 0.0 });
            accum(pool, grads, *a, ga);
        }
        Op::SoftmaxRows(a) => {
            let y = &nodes[id].value;
            let cols = y.cols();
            let mut dx = take_buf_zeroed(pool, y.len());
            for r in 0..y.rows() {
                let yr = &y.data[r * cols..(r + 1) * cols];
                let gr = &g.data[r * cols..(r + 1) * cols];
                let dot: f32 = yr.iter().zip(gr).map(|(&y, &dg)| y * dg).sum();
                for j in 0..cols {
                    dx[r * cols + j] = yr[j] * (gr[j] - dot);
                }
            }
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: dx,
                    shape: y.shape.clone(),
                },
            );
        }
        Op::Sum(a) => {
            let dg = g.data[0];
            let x = &nodes[*a].value;
            let ga = pooled_map(pool, x, |_| dg);
            accum(pool, grads, *a, ga);
        }
        Op::Mean(a) => {
            let x = &nodes[*a].value;
            let dg = g.data[0] / x.len() as f32;
            let ga = pooled_map(pool, x, |_| dg);
            accum(pool, grads, *a, ga);
        }
        Op::Abs(a) => {
            let x = &nodes[*a].value;
            let ga = pooled_zip(pool, g, x, |dg, x| if x >= 0.0 { dg } else { -dg });
            accum(pool, grads, *a, ga);
        }
        Op::CumSum(a) => {
            // d/dx_i = Σ_{j ≥ i} g_j  (suffix sums).
            let mut dx = pooled_copy(pool, g);
            let n = dx.len();
            for i in (0..n.saturating_sub(1)).rev() {
                dx.data[i] += dx.data[i + 1];
            }
            accum(pool, grads, *a, dx);
        }
        Op::MaxReduce(a) => {
            let x = &nodes[*a].value;
            let m = nodes[id].value.data[0];
            let arg = x.data.iter().position(|&v| v == m).expect("max exists");
            let mut dx = take_buf_zeroed(pool, x.len());
            dx[arg] = g.data[0];
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: dx,
                    shape: x.shape.clone(),
                },
            );
        }
        Op::Select(a, idx) => {
            let x = &nodes[*a].value;
            let mut dx = take_buf_zeroed(pool, x.len());
            for (k, &i) in idx.iter().enumerate() {
                dx[i] += g.data[k];
            }
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: dx,
                    shape: x.shape.clone(),
                },
            );
        }
        Op::Slice1D(a, start, len) => {
            let x = &nodes[*a].value;
            let mut dx = take_buf_zeroed(pool, x.len());
            dx[*start..start + len].copy_from_slice(&g.data);
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: dx,
                    shape: x.shape.clone(),
                },
            );
        }
        Op::SliceCols(a, start, len) => {
            let x = &nodes[*a].value;
            let (m, n) = (x.rows(), x.cols());
            let mut dx = take_buf_zeroed(pool, m * n);
            for r in 0..m {
                dx[r * n + start..r * n + start + len]
                    .copy_from_slice(&g.data[r * len..(r + 1) * len]);
            }
            accum(
                pool,
                grads,
                *a,
                Tensor {
                    data: dx,
                    shape: vec![m, n],
                },
            );
        }
        Op::ConcatCols(parts) => {
            let m = nodes[id].value.rows();
            let total = nodes[id].value.cols();
            let mut off = 0;
            for &p in parts {
                let n = nodes[p].value.cols();
                let mut dp = take_buf_zeroed(pool, m * n);
                for r in 0..m {
                    dp[r * n..(r + 1) * n]
                        .copy_from_slice(&g.data[r * total + off..r * total + off + n]);
                }
                accum(
                    pool,
                    grads,
                    p,
                    Tensor {
                        data: dp,
                        shape: vec![m, n],
                    },
                );
                off += n;
            }
        }
        Op::AddBias(a, bias) => {
            let ga = pooled_copy(pool, g);
            accum(pool, grads, *a, ga);
            let n = nodes[*bias].value.len();
            let mut db = take_buf_zeroed(pool, n);
            for row in g.data.chunks_exact(n) {
                for (d, &v) in db.iter_mut().zip(row) {
                    *d += v;
                }
            }
            accum(
                pool,
                grads,
                *bias,
                Tensor {
                    data: db,
                    shape: vec![n],
                },
            );
        }
        Op::Flatten(a) => {
            let x = &nodes[*a].value;
            let mut dx = pooled_copy(pool, g);
            dx.shape = x.shape.clone();
            accum(pool, grads, *a, dx);
        }
        Op::LayerNorm { x, gamma, beta } => {
            let xv = &nodes[*x].value;
            let gv = &nodes[*gamma].value;
            let n = xv.cols();
            let mut dx = take_buf_zeroed(pool, xv.len());
            let mut dgamma = take_buf_zeroed(pool, n);
            let mut dbeta = take_buf_zeroed(pool, n);
            for r in 0..xv.rows() {
                let xr = &xv.data[r * n..(r + 1) * n];
                let gr = &g.data[r * n..(r + 1) * n];
                let mean = xr.iter().sum::<f32>() / n as f32;
                let var = xr.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
                let inv = 1.0 / (var + LN_EPS).sqrt();
                let xhat: Vec<f32> = xr.iter().map(|&v| (v - mean) * inv).collect();
                // Affine gradients.
                for j in 0..n {
                    dgamma[j] += gr[j] * xhat[j];
                    dbeta[j] += gr[j];
                }
                // dxhat = g * gamma
                let dxhat: Vec<f32> = (0..n).map(|j| gr[j] * gv.data[j]).collect();
                let mean_dxhat = dxhat.iter().sum::<f32>() / n as f32;
                let mean_dxhat_xhat =
                    dxhat.iter().zip(&xhat).map(|(&a, &b)| a * b).sum::<f32>() / n as f32;
                for j in 0..n {
                    dx[r * n + j] = inv * (dxhat[j] - mean_dxhat - xhat[j] * mean_dxhat_xhat);
                }
            }
            accum(
                pool,
                grads,
                *x,
                Tensor {
                    data: dx,
                    shape: xv.shape.clone(),
                },
            );
            accum(
                pool,
                grads,
                *gamma,
                Tensor {
                    data: dgamma,
                    shape: vec![n],
                },
            );
            accum(
                pool,
                grads,
                *beta,
                Tensor {
                    data: dbeta,
                    shape: vec![n],
                },
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite-difference gradient check: `build` constructs a
    /// scalar-rooted graph from parameter leaves; compares analytic and
    /// numeric gradients for every parameter scalar.
    fn check_gradients(
        params: Vec<(&str, Tensor)>,
        build: impl Fn(&mut Tape, &[NodeId]) -> NodeId,
        tol: f32,
    ) {
        let mut store = ParamStore::new();
        let ids: Vec<ParamId> = params
            .iter()
            .map(|(n, t)| store.add(n, t.clone()))
            .collect();

        // Analytic gradients.
        let mut tape = Tape::new(&store);
        let leaves: Vec<NodeId> = ids.iter().map(|&i| tape.param(i)).collect();
        let root = build(&mut tape, &leaves);
        let grads = tape.backward(root);

        // Numeric gradients.
        let eps = 1e-3f32;
        for (pi, &pid) in ids.iter().enumerate() {
            let len = store.value(pid).len();
            for k in 0..len {
                let eval = |delta: f32| -> f32 {
                    let mut s2 = store.clone();
                    s2.value_mut(pid).data[k] += delta;
                    let mut t2 = Tape::new(&s2);
                    let l2: Vec<NodeId> = ids.iter().map(|&i| t2.param(i)).collect();
                    let r2 = build(&mut t2, &l2);
                    t2.scalar_value(r2)
                };
                let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
                let analytic = grads.by_param[pid].as_ref().map_or(0.0, |g| g.data[k]);
                assert!(
                    (numeric - analytic).abs() <= tol * (1.0 + numeric.abs().max(analytic.abs())),
                    "param {pi} ({}) elem {k}: numeric {numeric} vs analytic {analytic}",
                    params[pi].0,
                );
            }
        }
    }

    #[test]
    fn grad_add_mul_chain() {
        check_gradients(
            vec![
                ("a", Tensor::vector(vec![1.0, -2.0, 0.5])),
                ("b", Tensor::vector(vec![0.3, 0.7, -1.1])),
            ],
            |t, l| {
                let s = t.add(l[0], l[1]);
                let p = t.mul(s, l[0]);
                t.sum(p)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_bias() {
        check_gradients(
            vec![
                (
                    "x",
                    Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, -0.4, 0.3], &[2, 3]),
                ),
                (
                    "w",
                    Tensor::from_vec(vec![0.2, -0.5, 0.7, 0.1, 0.4, -0.3], &[3, 2]),
                ),
                ("b", Tensor::vector(vec![0.05, -0.02])),
            ],
            |t, l| {
                let y = t.matmul(l[0], l[1]);
                let y = t.add_bias(y, l[2]);
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_softmax() {
        check_gradients(
            vec![(
                "x",
                Tensor::from_vec(vec![0.1, 0.9, -0.5, 0.3, 0.2, 0.7], &[2, 3]),
            )],
            |t, l| {
                let y = t.softmax_rows(l[0]);
                let sq = t.square(y);
                t.sum(sq)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_layer_norm() {
        check_gradients(
            vec![
                (
                    "x",
                    Tensor::from_vec(vec![0.5, -1.0, 2.0, 0.1, 0.2, -0.7, 1.5, 0.4], &[2, 4]),
                ),
                ("g", Tensor::vector(vec![1.0, 0.9, 1.1, 1.2])),
                ("b", Tensor::vector(vec![0.0, 0.1, -0.1, 0.05])),
            ],
            |t, l| {
                let y = t.layer_norm(l[0], l[1], l[2]);
                let sq = t.square(y);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_cumsum_abs_mean() {
        // The 1-D EMD shape: mean(|cumsum(x - y)|).
        check_gradients(
            vec![
                ("x", Tensor::vector(vec![0.5, 1.5, -0.3, 0.9])),
                ("y", Tensor::vector(vec![0.1, 1.1, 0.4, 0.2])),
            ],
            |t, l| {
                let d = t.sub(l[0], l[1]);
                let c = t.cumsum(d);
                let a = t.abs(c);
                t.mean(a)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_max_select_slice() {
        check_gradients(
            vec![("x", Tensor::vector(vec![0.5, 2.5, -0.3, 0.9, 1.7]))],
            |t, l| {
                let m = t.max_reduce(l[0]); // -> 2.5 at idx 1
                let sel = t.select(l[0], &[0, 3]);
                let sl = t.slice1d(l[0], 2, 2);
                let s1 = t.sum(sel);
                let s2 = t.sum(sl);
                let a = t.add(m, s1);
                t.add(a, s2)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_slice_concat_cols() {
        check_gradients(
            vec![(
                "x",
                Tensor::from_vec((0..12).map(|i| (i as f32) * 0.1 - 0.5).collect(), &[3, 4]),
            )],
            |t, l| {
                let a = t.slice_cols(l[0], 0, 2);
                let b = t.slice_cols(l[0], 2, 2);
                let swapped = t.concat_cols(&[b, a]);
                let y = t.tanh(swapped);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_transpose_and_attention_shape() {
        // Mini attention: softmax(QK^T) V.
        check_gradients(
            vec![
                (
                    "q",
                    Tensor::from_vec(vec![0.1, 0.5, -0.3, 0.7, 0.2, -0.1], &[3, 2]),
                ),
                (
                    "k",
                    Tensor::from_vec(vec![0.4, -0.2, 0.3, 0.6, -0.5, 0.1], &[3, 2]),
                ),
                (
                    "v",
                    Tensor::from_vec(vec![1.0, 0.0, 0.5, -0.5, 0.2, 0.8], &[3, 2]),
                ),
            ],
            |t, l| {
                let kt = t.transpose(l[1]);
                let scores = t.matmul(l[0], kt);
                let att = t.softmax_rows(scores);
                let out = t.matmul(att, l[2]);
                let sq = t.square(out);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn grad_relu_hinge() {
        check_gradients(
            vec![("x", Tensor::vector(vec![0.5, -1.5, 2.0, 0.1]))],
            |t, l| {
                let shifted = t.scalar_add(l[0], -0.3);
                let h = t.relu(shifted);
                let sc = t.scalar_mul(h, 2.0);
                t.sum(sc)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_affine() {
        check_gradients(
            vec![
                (
                    "x",
                    Tensor::from_vec(vec![0.5, -0.2, 0.1, 0.9, -0.4, 0.3], &[2, 3]),
                ),
                (
                    "w",
                    Tensor::from_vec(vec![0.2, -0.5, 0.7, 0.1, 0.4, -0.3], &[3, 2]),
                ),
                ("b", Tensor::vector(vec![0.05, -0.02])),
            ],
            |t, l| {
                let y = t.affine(l[0], l[1], l[2]);
                let y = t.tanh(y);
                t.sum(y)
            },
            1e-2,
        );
    }

    #[test]
    fn grad_matmul_scaled_nt() {
        check_gradients(
            vec![
                (
                    "q",
                    Tensor::from_vec(vec![0.1, 0.5, -0.3, 0.7, 0.2, -0.1], &[3, 2]),
                ),
                (
                    "k",
                    Tensor::from_vec(vec![0.4, -0.2, 0.3, 0.6, -0.5, 0.1], &[3, 2]),
                ),
                (
                    "v",
                    Tensor::from_vec(vec![1.0, 0.0, 0.5, -0.5, 0.2, 0.8], &[3, 2]),
                ),
            ],
            |t, l| {
                let scores = t.matmul_scaled_nt(l[0], l[1], 0.5);
                let att = t.softmax_rows(scores);
                let out = t.matmul(att, l[2]);
                let sq = t.square(out);
                t.sum(sq)
            },
            2e-2,
        );
    }

    #[test]
    fn affine_matches_matmul_add_bias_bitwise() {
        let mut store = ParamStore::new();
        let x = store.add(
            "x",
            Tensor::from_vec((0..12).map(|i| i as f32 * 0.37 - 2.0).collect(), &[4, 3]),
        );
        let w = store.add(
            "w",
            Tensor::from_vec((0..6).map(|i| 0.11 * i as f32 - 0.3).collect(), &[3, 2]),
        );
        let b = store.add("b", Tensor::vector(vec![0.25, -0.75]));
        let mut tape = Tape::new(&store);
        let (lx, lw, lb) = (tape.param(x), tape.param(w), tape.param(b));
        let fused = tape.affine(lx, lw, lb);
        let staged = {
            let mm = tape.matmul(lx, lw);
            tape.add_bias(mm, lb)
        };
        let (f, s) = (tape.value(fused).clone(), tape.value(staged).clone());
        assert_eq!(f.shape, s.shape);
        for (a, b) in f.data.iter().zip(&s.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "affine {a} vs staged {b}");
        }
    }

    #[test]
    fn scaled_nt_matches_transpose_matmul_bitwise() {
        let mut store = ParamStore::new();
        let q = store.add(
            "q",
            Tensor::from_vec((0..8).map(|i| (i as f32).sin()).collect(), &[4, 2]),
        );
        let k = store.add(
            "k",
            Tensor::from_vec((0..6).map(|i| (i as f32).cos()).collect(), &[3, 2]),
        );
        let mut tape = Tape::new(&store);
        let (lq, lk) = (tape.param(q), tape.param(k));
        let fused = tape.matmul_scaled_nt(lq, lk, 0.25);
        let staged = {
            let kt = tape.transpose(lk);
            let mm = tape.matmul(lq, kt);
            tape.scalar_mul(mm, 0.25)
        };
        let (f, s) = (tape.value(fused).clone(), tape.value(staged).clone());
        assert_eq!(f.shape, vec![4, 3]);
        assert_eq!(f.shape, s.shape);
        for (a, b) in f.data.iter().zip(&s.data) {
            assert_eq!(a.to_bits(), b.to_bits(), "scaled-nt {a} vs staged {b}");
        }
    }

    #[test]
    fn softmax_zero_mass_rows_are_uniform() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let ninf = f32::NEG_INFINITY;
        // Row 0 fully masked, row 1 partially masked, row 2 ordinary.
        let x = tape.constant(Tensor::from_vec(
            vec![ninf, ninf, ninf, ninf, 1.0, 2.0, 0.5, -0.5, 0.1],
            &[3, 3],
        ));
        let y = tape.softmax_rows(x);
        let v = tape.value(y);
        for j in 0..3 {
            assert_eq!(v.at2(0, j), 1.0 / 3.0, "masked row must be uniform");
        }
        for r in 0..3 {
            let sum: f32 = (0..3).map(|j| v.at2(r, j)).sum();
            assert!((sum - 1.0).abs() < 1e-6, "row {r} sums to {sum}");
            for j in 0..3 {
                assert!(v.at2(r, j).is_finite(), "row {r} col {j} not finite");
            }
        }
        assert_eq!(v.at2(1, 0), 0.0, "masked entry of mixed row is 0");
        // Backward through the guarded row stays finite.
        let s = tape.sum(y);
        let grads = tape.backward(s);
        assert!(grads.by_param.is_empty());
    }

    #[test]
    fn tape_arena_recycles_buffers() {
        // Runs on this test's own thread, so the thread-local arena is
        // deterministic. Default mode (Blocked) pools; Reference
        // must not.
        TapeArena::clear();
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::vector(vec![1.0, 2.0, 3.0]));
        {
            let mut tape = Tape::new(&store);
            let x = tape.param(p);
            let y = tape.tanh(x);
            let s = tape.sum(y);
            let _ = tape.backward(s);
        }
        let pooled = TapeArena::pooled();
        assert!(pooled > 0, "dropped tape must repopulate the arena");
        // A second, identical tape must produce identical values from
        // recycled storage.
        {
            let mut tape = Tape::new(&store);
            let x = tape.param(p);
            let y = tape.tanh(x);
            let s = tape.sum(y);
            assert!(
                (tape.scalar_value(s) - (1f32.tanh() + 2f32.tanh() + 3f32.tanh())).abs() < 1e-6
            );
            let g = tape.backward(s);
            assert!(g.by_param[p].is_some());
        }
        // Reference mode leaves the arena untouched in both directions.
        let before = TapeArena::pooled();
        crate::kernel::with_mode(crate::kernel::KernelMode::Reference, || {
            let mut tape = Tape::new(&store);
            let x = tape.param(p);
            let s = tape.sum(x);
            let _ = tape.backward(s);
        });
        assert_eq!(
            TapeArena::pooled(),
            before,
            "Reference mode must not touch the arena"
        );
    }

    #[test]
    fn shared_node_gradient_accumulates() {
        // y = x * x built via the same node twice: dy/dx = 2x.
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::vector(vec![3.0]));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let y = tape.mul(x, x);
        let root = tape.sum(y);
        let grads = tape.backward(root);
        assert_eq!(grads.by_param[p].as_ref().unwrap().data, vec![6.0]);
    }

    #[test]
    fn constants_produce_no_param_grads() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let c = tape.constant(Tensor::vector(vec![1.0, 2.0]));
        let s = tape.sum(c);
        let grads = tape.backward(s);
        assert!(grads.by_param.is_empty());
        assert_eq!(tape.scalar_value(s), 3.0);
    }
}

#[cfg(test)]
mod ext_tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn gelu_matches_reference_values() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::vector(vec![-2.0, -1.0, 0.0, 1.0, 2.0]));
        let y = tape.gelu(x);
        // Reference values of the tanh-approximated GELU.
        let expect = [-0.0454, -0.1588, 0.0, 0.8412, 1.9546];
        for (got, want) in tape.value(y).data.iter().zip(expect) {
            assert!((got - want).abs() < 1e-3, "gelu {got} vs {want}");
        }
    }

    #[test]
    fn gelu_gradient_checks_against_finite_differences() {
        let mut store = ParamStore::new();
        let p = store.add("x", Tensor::vector(vec![-1.5, -0.2, 0.4, 1.7]));
        let mut tape = Tape::new(&store);
        let x = tape.param(p);
        let y = tape.gelu(x);
        let root = tape.sum(y);
        let grads = tape.backward(root);
        let g = grads.by_param[p].as_ref().unwrap();
        let eps = 1e-3f32;
        for k in 0..4 {
            let eval = |d: f32| {
                let mut s2 = store.clone();
                s2.value_mut(p).data[k] += d;
                let mut t2 = Tape::new(&s2);
                let x2 = t2.param(p);
                let y2 = t2.gelu(x2);
                let r2 = t2.sum(y2);
                t2.scalar_value(r2)
            };
            let numeric = (eval(eps) - eval(-eps)) / (2.0 * eps);
            assert!(
                (numeric - g.data[k]).abs() < 1e-2,
                "elem {k}: {numeric} vs {}",
                g.data[k]
            );
        }
    }

    #[test]
    fn dropout_zeroes_and_rescales() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::vector(vec![1.0; 1000]));
        let mut rng = StdRng::seed_from_u64(5);
        let y = tape.dropout(x, 0.3, &mut rng);
        let v = tape.value(y);
        let zeros = v.data.iter().filter(|&&a| a == 0.0).count();
        // ~30% dropped.
        assert!((200..400).contains(&zeros), "zeros = {zeros}");
        // Survivors rescaled by 1/0.7; expectation preserved.
        let mean = v.sum() / 1000.0;
        assert!((mean - 1.0).abs() < 0.1, "mean = {mean}");
        for &a in &v.data {
            assert!(a == 0.0 || (a - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::vector(vec![1.0, 2.0]));
        let mut rng = StdRng::seed_from_u64(5);
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(x, y, "p=0 must not add a node");
    }
}
