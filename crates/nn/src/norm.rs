//! Layer normalization module (affine parameters over the tape's fused op).

use crate::params::{ParamId, ParamStore};
use crate::tape::{NodeId, Tape};
use crate::tensor::Tensor;

/// Layer norm over the last dimension with learnable scale and shift.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    pub gamma: ParamId,
    pub beta: ParamId,
    pub dim: usize,
}

impl LayerNorm {
    pub fn new(store: &mut ParamStore, name: &str, dim: usize) -> LayerNorm {
        let gamma = store.add(&format!("{name}.gamma"), Tensor::vector(vec![1.0; dim]));
        let beta = store.add(&format!("{name}.beta"), Tensor::zeros(&[dim]));
        LayerNorm { gamma, beta, dim }
    }

    pub fn forward(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        debug_assert_eq!(tape.value(x).cols(), self.dim);
        let g = tape.param(self.gamma);
        let b = tape.param(self.beta);
        tape.layer_norm(x, g, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_rows_to_zero_mean_unit_var() {
        let mut store = ParamStore::new();
        let ln = LayerNorm::new(&mut store, "ln", 4);
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::from_vec(
            vec![1.0, 2.0, 3.0, 4.0, 10.0, 10.0, 10.0, 14.0],
            &[2, 4],
        ));
        let y = ln.forward(&mut tape, x);
        let v = tape.value(y);
        for r in 0..2 {
            let row: Vec<f32> = (0..4).map(|c| v.at2(r, c)).collect();
            let mean: f32 = row.iter().sum::<f32>() / 4.0;
            let var: f32 = row.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 4.0;
            assert!(mean.abs() < 1e-5, "row {r} mean {mean}");
            assert!((var - 1.0).abs() < 1e-3, "row {r} var {var}");
        }
    }
}
