//! Fully-connected layer.

use crate::init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{NodeId, Tape};
use rand::rngs::StdRng;

/// `y = x·W + b`, `x: [T, in] → y: [T, out]`.
#[derive(Debug, Clone)]
pub struct Linear {
    pub w: ParamId,
    pub b: ParamId,
    pub fan_in: usize,
    pub fan_out: usize,
}

impl Linear {
    pub fn new(
        store: &mut ParamStore,
        rng: &mut StdRng,
        name: &str,
        fan_in: usize,
        fan_out: usize,
    ) -> Linear {
        let w = store.add(&format!("{name}.w"), init::xavier(rng, fan_in, fan_out));
        let b = store.add(
            &format!("{name}.b"),
            crate::tensor::Tensor::zeros(&[fan_out]),
        );
        Linear {
            w,
            b,
            fan_in,
            fan_out,
        }
    }

    pub fn forward(&self, tape: &mut Tape, x: NodeId) -> NodeId {
        debug_assert_eq!(tape.value(x).cols(), self.fan_in);
        let w = tape.param(self.w);
        let b = tape.param(self.b);
        // Fused x·W + b: one kernel call, one node, no broadcast copy.
        tape.affine(x, w, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;

    #[test]
    fn forward_shape_and_bias() {
        let mut store = ParamStore::new();
        let mut rng = init::seeded(3);
        let lin = Linear::new(&mut store, &mut rng, "l", 4, 2);
        // Zero weights + explicit bias -> output equals bias rows.
        store
            .value_mut(lin.w)
            .data
            .iter_mut()
            .for_each(|v| *v = 0.0);
        store.value_mut(lin.b).data.copy_from_slice(&[1.5, -0.5]);
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::zeros(&[3, 4]));
        let y = lin.forward(&mut tape, x);
        assert_eq!(tape.value(y).shape, vec![3, 2]);
        for r in 0..3 {
            assert_eq!(tape.value(y).at2(r, 0), 1.5);
            assert_eq!(tape.value(y).at2(r, 1), -0.5);
        }
    }

    #[test]
    fn gradients_flow_to_both_params() {
        let mut store = ParamStore::new();
        let mut rng = init::seeded(4);
        let lin = Linear::new(&mut store, &mut rng, "l", 3, 2);
        let mut tape = Tape::new(&store);
        let x = tape.constant(Tensor::from_vec(vec![1.0, 2.0, 3.0], &[1, 3]));
        let y = lin.forward(&mut tape, x);
        let s = tape.sum(y);
        let g = tape.backward(s);
        assert!(g.by_param[lin.w].is_some());
        assert!(g.by_param[lin.b].is_some());
        // db = ones; dW = x^T broadcast.
        assert_eq!(g.by_param[lin.b].as_ref().unwrap().data, vec![1.0, 1.0]);
        assert_eq!(g.by_param[lin.w].as_ref().unwrap().at2(2, 1), 3.0);
    }
}
