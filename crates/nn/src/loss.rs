//! Loss functions: MSE and the differentiable 1-D Earth Mover's Distance.
//!
//! The paper trains with EMD rather than MSE because MSE "encourages the
//! model to find averages of plausible solutions that are overly smooth
//! and is disadvantageous for bursts" (§4). For 1-D series with equal
//! total mass, EMD reduces to the L1 distance between cumulative sums;
//! we use `mean(|cumsum(pred − target)|)`, which keeps that property,
//! is differentiable almost everywhere, and degrades gracefully when the
//! masses differ (the tail difference is the mass mismatch).

use crate::tape::{NodeId, Tape};

/// Mean squared error between two same-shaped nodes (scalar output).
pub fn mse(tape: &mut Tape, pred: NodeId, target: NodeId) -> NodeId {
    let d = tape.sub(pred, target);
    let sq = tape.square(d);
    tape.mean(sq)
}

/// 1-D Earth Mover's Distance: `mean(|cumsum(pred − target)|)`.
pub fn emd(tape: &mut Tape, pred: NodeId, target: NodeId) -> NodeId {
    assert_eq!(tape.value(pred).rank(), 1, "emd takes 1-D series");
    let d = tape.sub(pred, target);
    let c = tape.cumsum(d);
    let a = tape.abs(c);
    tape.mean(a)
}

/// Mean absolute error (used in evaluation reports).
pub fn mae(tape: &mut Tape, pred: NodeId, target: NodeId) -> NodeId {
    let d = tape.sub(pred, target);
    let a = tape.abs(d);
    tape.mean(a)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::ParamStore;
    use crate::tensor::Tensor;

    fn eval(f: impl Fn(&mut Tape, NodeId, NodeId) -> NodeId, p: Vec<f32>, t: Vec<f32>) -> f32 {
        let store = ParamStore::new();
        let mut tape = Tape::new(&store);
        let pred = tape.constant(Tensor::vector(p));
        let tgt = tape.constant(Tensor::vector(t));
        let l = f(&mut tape, pred, tgt);
        tape.scalar_value(l)
    }

    #[test]
    fn zero_at_equality() {
        assert_eq!(eval(mse, vec![1.0, 2.0], vec![1.0, 2.0]), 0.0);
        assert_eq!(eval(emd, vec![1.0, 2.0], vec![1.0, 2.0]), 0.0);
        assert_eq!(eval(mae, vec![1.0, 2.0], vec![1.0, 2.0]), 0.0);
    }

    #[test]
    fn mse_known_value() {
        // diffs: 1, -1 -> mean of squares = 1.
        assert_eq!(eval(mse, vec![2.0, 1.0], vec![1.0, 2.0]), 1.0);
    }

    #[test]
    fn emd_penalizes_displacement_by_distance() {
        // A unit spike shifted by 1 vs shifted by 3: EMD grows linearly
        // with displacement, MSE does not distinguish them.
        let spike = |at: usize| -> Vec<f32> {
            let mut v = vec![0.0; 8];
            v[at] = 1.0;
            v
        };
        let near = eval(emd, spike(4), spike(3));
        let far = eval(emd, spike(6), spike(3));
        assert!(far > 2.5 * near, "emd near={near} far={far}");
        let m_near = eval(mse, spike(4), spike(3));
        let m_far = eval(mse, spike(6), spike(3));
        assert!((m_near - m_far).abs() < 1e-6, "mse is displacement-blind");
    }

    #[test]
    fn emd_mass_mismatch_is_penalized() {
        let l = eval(emd, vec![0.0, 0.0, 2.0], vec![0.0, 0.0, 0.0]);
        assert!(l > 0.0);
    }
}
