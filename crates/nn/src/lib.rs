//! # fmml-nn — a minimal deep-learning stack for telemetry imputation
//!
//! A from-scratch, CPU-only replacement for the deep-learning framework
//! the paper trains its transformer with. It provides exactly the pieces
//! the imputation model and the Knowledge-Augmented Loss (§3.1) need:
//!
//! * [`tensor::Tensor`] — dense f32 tensors (1-D and 2-D);
//! * [`tape::Tape`] — tape-based reverse-mode automatic differentiation
//!   over a fixed op vocabulary (matmul, softmax, layer norm, tanh, relu,
//!   cumulative sums for EMD, max/select reductions for constraint terms);
//! * [`linear`], [`norm`], [`attention`], [`transformer`] — the model
//!   zoo: linear layers, layer normalization, multi-head self-attention,
//!   and a transformer encoder with sinusoidal positional encodings;
//! * [`adam`] — the Adam optimizer;
//! * [`loss`] — MSE and the differentiable 1-D Earth Mover's Distance the
//!   paper prefers for burst localization;
//! * [`init`] — seeded Xavier/uniform initializers (bit-reproducible).
//!
//! Gradient correctness is property-tested against central finite
//! differences (see `tape::tests` and `tests/` of the workspace).
//!
//! Batching is by data parallelism: each example builds its own [`Tape`]
//! against a shared read-only [`params::ParamStore`]; per-example
//! [`tape::Gradients`] are summed (optionally with `rayon`) and applied by
//! the optimizer. This mirrors how the paper's GPU batches would behave at
//! our (deliberately small) model size: d_model 16, 2 layers, 300-step
//! windows.

pub mod adam;
pub mod attention;
pub mod init;
pub mod kernel;
pub mod linear;
pub mod loss;
pub mod norm;
pub mod params;
pub mod schedule;
pub mod tape;
pub mod tensor;
pub mod transformer;

pub use adam::Adam;
pub use kernel::KernelMode;
pub use params::{Gradients, ParamId, ParamStore};
pub use tape::{NodeId, Tape, TapeArena};
pub use tensor::Tensor;
pub use transformer::{TransformerConfig, TransformerEncoder};
