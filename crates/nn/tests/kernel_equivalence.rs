//! Property tests: the blocked and row-sharded parallel GEMM kernels must
//! be **bitwise identical** to the scalar reference implementation over
//! random shapes — including shapes not divisible by the panel/unroll
//! sizes, empty dimensions, non-finite entries, and fused bias/scale
//! epilogues. This is the contract the training benchmark's fingerprint
//! assertions (and PR 3's CEM merge before it) rest on.

use fmml_nn::kernel::{gemm_nn, gemm_nt, gemm_tn, with_mode, GemmOpts, KernelMode};
use fmml_nn::Tensor;
use proptest::prelude::*;

/// Deterministic xorshift fill; optionally injects NaN/±Inf entries so
/// the equivalence claim covers non-finite propagation too.
fn fill(len: usize, seed: u64, nonfinite: bool) -> Vec<f32> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    (0..len)
        .map(|i| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if nonfinite && i % 23 == 7 {
                match x % 3 {
                    0 => f32::NAN,
                    1 => f32::INFINITY,
                    _ => f32::NEG_INFINITY,
                }
            } else {
                ((x >> 40) as f32 / (1u64 << 24) as f32) * 2.0 - 1.0
            }
        })
        .collect()
}

/// Run `f` under all three kernel modes into three fresh buffers.
fn run_modes(len: usize, f: &dyn Fn(&mut [f32])) -> (Vec<f32>, Vec<f32>, Vec<f32>) {
    let mut r = vec![0.0f32; len];
    let mut bl = vec![0.0f32; len];
    let mut par = vec![0.0f32; len];
    with_mode(KernelMode::Reference, || f(&mut r));
    with_mode(KernelMode::Blocked, || f(&mut bl));
    with_mode(KernelMode::BlockedParallel, || f(&mut par));
    (r, bl, par)
}

/// Bitwise comparison (NaN payloads included) with a useful message.
fn bits_eq(a: &[f32], b: &[f32]) -> Option<String> {
    if a.len() != b.len() {
        return Some(format!("length {} vs {}", a.len(), b.len()));
    }
    for (i, (x, y)) in a.iter().zip(b).enumerate() {
        if x.to_bits() != y.to_bits() {
            return Some(format!(
                "elem {i}: {x} ({:#010x}) vs {y} ({:#010x})",
                x.to_bits(),
                y.to_bits()
            ));
        }
    }
    None
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    /// NN / NT / TN products over random (possibly empty, possibly
    /// tile-misaligned) shapes with random bias/scale epilogues and a
    /// sprinkling of NaN/±Inf: all three modes agree bit for bit.
    fn all_gemm_modes_bitwise_equal(
        m in 0usize..=33,
        k in 0usize..=41,
        n in 0usize..=29,
        seed in 0u64..u64::MAX,
        flags in 0u64..8,
    ) {
        let nonfinite = flags & 1 != 0;
        let use_bias = flags & 2 != 0;
        let use_scale = flags & 4 != 0;
        let a = fill(m * k, seed ^ 0x11, nonfinite);
        let b = fill(k * n, seed ^ 0x22, nonfinite);
        let bt = fill(n * k, seed ^ 0x33, nonfinite);
        let at = fill(k * m, seed ^ 0x44, nonfinite);
        let bias = fill(n, seed ^ 0x55, false);
        let opts = || GemmOpts {
            bias: if use_bias { Some(&bias) } else { None },
            scale: if use_scale { Some(0.5) } else { None },
        };
        let (r, bl, par) = run_modes(m * n, &|out| gemm_nn(&a, &b, out, m, k, n, opts()));
        prop_assert!(bits_eq(&r, &bl).is_none(),
            "nn blocked ({m},{k},{n}) flags {flags}: {}", bits_eq(&r, &bl).unwrap());
        prop_assert!(bits_eq(&r, &par).is_none(),
            "nn parallel ({m},{k},{n}) flags {flags}: {}", bits_eq(&r, &par).unwrap());
        let (r, bl, par) = run_modes(m * n, &|out| gemm_nt(&a, &bt, out, m, k, n, opts()));
        prop_assert!(bits_eq(&r, &bl).is_none(),
            "nt blocked ({m},{k},{n}) flags {flags}: {}", bits_eq(&r, &bl).unwrap());
        prop_assert!(bits_eq(&r, &par).is_none(),
            "nt parallel ({m},{k},{n}) flags {flags}: {}", bits_eq(&r, &par).unwrap());
        let (r, bl, par) = run_modes(m * n, &|out| gemm_tn(&at, &b, out, k, m, n, opts()));
        prop_assert!(bits_eq(&r, &bl).is_none(),
            "tn blocked ({m},{k},{n}) flags {flags}: {}", bits_eq(&r, &bl).unwrap());
        prop_assert!(bits_eq(&r, &par).is_none(),
            "tn parallel ({m},{k},{n}) flags {flags}: {}", bits_eq(&r, &par).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    /// Shapes big enough to cross the parallel threshold (`m·k·n ≥ 2¹⁸`)
    /// so the sharded path actually fires, under varying thread caps —
    /// still bitwise identical to the scalar reference.
    fn sharded_path_bitwise_equal_above_threshold(
        m in 64usize..=96,
        k in 64usize..=96,
        n in 64usize..=96,
        seed in 0u64..u64::MAX,
        threads in 2usize..=6,
    ) {
        let a = fill(m * k, seed, false);
        let b = fill(k * n, seed ^ 0xABCD, false);
        let (r, bl, par) = rayon::with_max_threads(threads, || {
            run_modes(m * n, &|out| gemm_nn(&a, &b, out, m, k, n, GemmOpts::default()))
        });
        prop_assert!(bits_eq(&r, &bl).is_none(),
            "blocked ({m},{k},{n}): {}", bits_eq(&r, &bl).unwrap());
        prop_assert!(bits_eq(&r, &par).is_none(),
            "parallel ({m},{k},{n}) x{threads}: {}", bits_eq(&r, &par).unwrap());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    /// `Tensor::matmul` (the public API the model uses) must propagate
    /// non-finite RHS values even when the LHS element is zero — the
    /// historical `a == 0.0 → continue` skip silently output 0 here and
    /// hid NaNs from the training loop's rollback guard.
    fn zero_lhs_never_masks_nonfinite_rhs(
        m in 1usize..=8,
        k in 1usize..=8,
        n in 1usize..=8,
        seed in 0u64..u64::MAX,
    ) {
        // LHS all zeros, RHS with injected non-finites.
        let a = Tensor::from_vec(vec![0.0; m * k], &[m, k]);
        let mut bdata = fill(k * n, seed, false);
        // Poison one full RHS row: every output element must become NaN
        // (0·NaN = NaN, 0·±Inf = NaN).
        let row = (seed as usize) % k;
        for j in 0..n {
            bdata[row * n + j] = if j % 2 == 0 { f32::NAN } else { f32::INFINITY };
        }
        let b = Tensor::from_vec(bdata, &[k, n]);
        let c = a.matmul(&b);
        for (i, v) in c.data.iter().enumerate() {
            prop_assert!(v.is_nan(),
                "({m},{k},{n}) poisoned row {row}: out[{i}] = {v}, expected NaN");
        }
    }
}
