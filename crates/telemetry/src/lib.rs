//! # fmml-telemetry — coarse-grained monitoring tools and datasets
//!
//! Software re-implementations of the three telemetry sources the paper's
//! operator has access to (§2.1), applied to the simulator's fine-grained
//! ground truth:
//!
//! * [`sampler`] — **periodic sampling**: the instantaneous queue length at
//!   the end of every monitoring interval;
//! * [`lanz`] — **LANZ**: the per-queue *maximum* length within each
//!   interval (without the time at which it occurred);
//! * [`snmp`] — **SNMP**: per-port counts of packets received, sent, and
//!   dropped in each interval.
//!
//! [`window`] slices a trace into fixed-length per-port windows (the
//! 300 ms / 6-interval examples of the paper's Fig. 3) that carry both the
//! fine ground truth (training target) and the coarse measurements (model
//! input + constraint right-hand sides). [`dataset`] handles train/test
//! splitting and normalization scales.

//! [`sanitize`] is the intake valve for *damaged* telemetry: it
//! classifies and repairs measurement artifacts (missing values, counter
//! wraps, skewed samples, …) before windows reach the imputer and CEM.

pub mod dataset;
pub mod lanz;
pub mod sampler;
pub mod sanitize;
pub mod series;
pub mod snmp;
pub mod stats;
pub mod window;

pub use sanitize::{sanitize_series, sanitize_window, SanitizeConfig, SanitizeReport};
pub use series::CoarseTelemetry;
pub use window::{windows_from_trace, PortWindow};

/// The paper's coarse:fine granularity ratio (50 ms : 1 ms).
pub const DEFAULT_INTERVAL_LEN: usize = 50;

/// The paper's window length in fine bins (300 ms, Fig. 3).
pub const DEFAULT_WINDOW_LEN: usize = 300;
