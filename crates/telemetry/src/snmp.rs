//! SNMP-style per-interval counter aggregation.
//!
//! SNMP exposes monotonically increasing per-port counters; polling them at
//! interval boundaries yields per-interval packet counts. Here the fine
//! trace already stores per-1 ms counts, so aggregation is a windowed sum.

/// Sum of fine per-bin counts over each interval.
///
/// Trailing bins that do not fill a whole interval are ignored.
pub fn interval_counts(fine: &[u32], interval_len: usize) -> Vec<u32> {
    assert!(interval_len > 0, "interval_len must be positive");
    fine.chunks_exact(interval_len)
        .map(|chunk| chunk.iter().sum())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sums_each_interval() {
        let fine = [1, 2, 3, 4, 5, 6];
        assert_eq!(interval_counts(&fine, 3), vec![6, 15]);
    }

    #[test]
    fn totals_are_preserved() {
        let fine: Vec<u32> = (0..100).map(|i| i % 7).collect();
        let coarse = interval_counts(&fine, 50);
        let fine_total: u32 = fine.iter().sum();
        let coarse_total: u32 = coarse.iter().sum();
        assert_eq!(fine_total, coarse_total);
    }

    #[test]
    fn zero_counts_stay_zero() {
        assert_eq!(interval_counts(&[0; 100], 50), vec![0, 0]);
    }
}
