//! Periodic instantaneous sampling of a fine-grained series.
//!
//! The operator's cheapest tool: read the queue length once per monitoring
//! interval. Sample `k` is the instantaneous value at the *end* of interval
//! `k`, i.e. fine bin `(k+1)·L − 1`; the corresponding constraint C2 pins
//! the imputed series at exactly those positions.

/// Positions (fine-bin indices, window-relative) at which periodic samples
/// are taken for a window of `len` bins with interval length `interval_len`.
pub fn sample_positions(len: usize, interval_len: usize) -> Vec<usize> {
    assert!(interval_len > 0 && len.is_multiple_of(interval_len));
    (0..len / interval_len)
        .map(|k| (k + 1) * interval_len - 1)
        .collect()
}

/// Downsample a fine series to one instantaneous value per interval.
///
/// Trailing bins that do not fill a whole interval are ignored.
pub fn periodic_samples(fine: &[u32], interval_len: usize) -> Vec<u32> {
    assert!(interval_len > 0, "interval_len must be positive");
    fine.chunks_exact(interval_len)
        .map(|chunk| *chunk.last().expect("chunks_exact yields full chunks"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_take_last_value_of_each_interval() {
        let fine = [1, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(periodic_samples(&fine, 3), vec![3, 6, 9]);
    }

    #[test]
    fn trailing_partial_interval_is_ignored() {
        let fine = [1, 2, 3, 4, 5];
        assert_eq!(periodic_samples(&fine, 2), vec![2, 4]);
    }

    #[test]
    fn positions_match_sampling_semantics() {
        let pos = sample_positions(300, 50);
        assert_eq!(pos, vec![49, 99, 149, 199, 249, 299]);
        // Applying positions to a fine series reproduces periodic_samples.
        let fine: Vec<u32> = (0..300).map(|i| i as u32).collect();
        let by_pos: Vec<u32> = pos.iter().map(|&p| fine[p]).collect();
        assert_eq!(by_pos, periodic_samples(&fine, 50));
    }

    #[test]
    #[should_panic]
    fn positions_require_whole_intervals() {
        sample_positions(301, 50);
    }
}
