//! Telemetry sanitizer: classify and repair measurement artifacts.
//!
//! Real telemetry arrives damaged — counters wrap, exporters stall,
//! samples go missing, clocks skew. This module is the pipeline's intake
//! valve: it inspects the coarse measurements of a [`PortWindow`] (or an
//! imputed floating-point series), classifies every artifact against a
//! typed taxonomy ([`Artifact`]), repairs what has an unambiguous fix,
//! and flags what does not. The CEM degradation ladder downstream
//! (`fmml-fm`) handles whatever inconsistency survives sanitization.
//!
//! Repair policy (all deterministic):
//!
//! * **Missing values** ([`MISSING`] sentinel) — samples are linearly
//!   interpolated from the nearest present neighbors; LANZ maxima are
//!   interpolated the same way; missing sent-counts are replaced by the
//!   interval length (the loosest bound C3 can use).
//! * **Implausible values** (beyond the configured plausibility bound) —
//!   treated as a narrow-counter wrap and repaired modulo 2^16; values
//!   still implausible afterwards are clamped to the bound.
//! * **Sample > max** — physically impossible (the periodic sample *is*
//!   one of the observations the max ranges over); the max is raised to
//!   the sample.
//! * **Positive max with zero sent-count** — contradicts work
//!   conservation; the sent-count is raised to 1 so the interval stays
//!   feasible (the ladder may relax it further).
//! * **Suspected duplicate intervals** — detected (identical non-zero
//!   measurement vector as the predecessor) but *not* repaired: the copy
//!   is internally consistent, so rewriting it would manufacture data.
//!   Flagged for observability only.
//!
//! Every artifact is counted in the [`fmml_obs`] registry under
//! `telemetry.sanitize.*`.

use crate::window::PortWindow;
use fmml_obs::{log_event, Counter};

/// Sentinel for a lost `u32` measurement (no `NaN` in integers).
pub const MISSING: u32 = u32::MAX;

/// Assumed narrow-counter width for wrap repair.
pub const WRAP_MODULUS: u32 = 1 << 16;

/// Windows pushed through [`sanitize_window`].
static WINDOWS: Counter = Counter::new("telemetry.sanitize.windows");
/// Artifacts repaired in place.
static REPAIRED: Counter = Counter::new("telemetry.sanitize.repaired");
/// Artifacts flagged but left untouched.
static FLAGGED: Counter = Counter::new("telemetry.sanitize.flagged");
static ART_MISSING: Counter = Counter::new("telemetry.sanitize.artifact.missing");
static ART_IMPLAUSIBLE: Counter = Counter::new("telemetry.sanitize.artifact.implausible");
static ART_SAMPLE_GT_MAX: Counter = Counter::new("telemetry.sanitize.artifact.sample_gt_max");
static ART_INCONSISTENT_SENT: Counter =
    Counter::new("telemetry.sanitize.artifact.inconsistent_sent");
static ART_DUP: Counter = Counter::new("telemetry.sanitize.artifact.suspected_dup");
static ART_NONFINITE: Counter = Counter::new("telemetry.sanitize.artifact.nonfinite");

/// The artifact taxonomy: what the sanitizer can detect.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Artifact {
    /// A measurement carried the [`MISSING`] sentinel.
    MissingValue,
    /// A value beyond the plausibility bound (counter wrap / corruption).
    ImplausibleValue,
    /// A periodic sample exceeding the interval's LANZ max.
    SampleExceedsMax,
    /// A positive LANZ max in an interval whose sent-count is zero.
    InconsistentSent,
    /// An interval identical to its predecessor (stuck exporter?).
    SuspectedDuplicate,
    /// A NaN/Inf cell in a floating-point series.
    NonFinite,
}

impl Artifact {
    /// Stable lowercase label (reports, metric names).
    pub fn label(&self) -> &'static str {
        match self {
            Artifact::MissingValue => "missing",
            Artifact::ImplausibleValue => "implausible",
            Artifact::SampleExceedsMax => "sample_gt_max",
            Artifact::InconsistentSent => "inconsistent_sent",
            Artifact::SuspectedDuplicate => "suspected_dup",
            Artifact::NonFinite => "nonfinite",
        }
    }

    pub const ALL: [Artifact; 6] = [
        Artifact::MissingValue,
        Artifact::ImplausibleValue,
        Artifact::SampleExceedsMax,
        Artifact::InconsistentSent,
        Artifact::SuspectedDuplicate,
        Artifact::NonFinite,
    ];
}

/// One detected artifact: what, where, and whether it was repaired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArtifactRecord {
    pub artifact: Artifact,
    /// Queue (or port for port-level measurements).
    pub queue: usize,
    /// Coarse interval (fine bin for series artifacts).
    pub interval: usize,
    /// `true` if the value was rewritten, `false` if only flagged.
    pub repaired: bool,
}

/// Everything one sanitization pass found.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SanitizeReport {
    pub records: Vec<ArtifactRecord>,
}

impl SanitizeReport {
    pub fn is_clean(&self) -> bool {
        self.records.is_empty()
    }

    pub fn total(&self) -> usize {
        self.records.len()
    }

    pub fn repaired(&self) -> usize {
        self.records.iter().filter(|r| r.repaired).count()
    }

    pub fn flagged(&self) -> usize {
        self.records.iter().filter(|r| !r.repaired).count()
    }

    /// Count of one artifact class.
    pub fn count(&self, artifact: Artifact) -> usize {
        self.records
            .iter()
            .filter(|r| r.artifact == artifact)
            .count()
    }

    /// Fold another report into this one.
    pub fn merge(&mut self, other: SanitizeReport) {
        self.records.extend(other.records);
    }

    /// `missing=2,implausible=1` style single-line summary (only classes
    /// that occurred).
    pub fn summary(&self) -> String {
        let mut parts = Vec::new();
        for a in Artifact::ALL {
            let n = self.count(a);
            if n > 0 {
                parts.push(format!("{}={n}", a.label()));
            }
        }
        if parts.is_empty() {
            "clean".into()
        } else {
            parts.join(",")
        }
    }
}

/// Plausibility bounds for repair decisions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SanitizeConfig {
    /// Largest believable queue length (e.g. the switch buffer size).
    pub plausible_qlen: u32,
    /// Largest believable per-interval packet count.
    pub plausible_count: u32,
}

impl SanitizeConfig {
    /// Bounds derived from the simulated switch: queue lengths are capped
    /// by the shared buffer; per-interval counts by a generous 256
    /// pkts/ms line-rate ceiling.
    pub fn for_sim(buffer_packets: u32, interval_len: usize) -> SanitizeConfig {
        SanitizeConfig {
            plausible_qlen: buffer_packets,
            plausible_count: (interval_len as u32).saturating_mul(256),
        }
    }
}

impl Default for SanitizeConfig {
    fn default() -> Self {
        SanitizeConfig::for_sim(520, 50)
    }
}

fn push(
    records: &mut Vec<ArtifactRecord>,
    artifact: Artifact,
    queue: usize,
    interval: usize,
    repaired: bool,
) {
    match artifact {
        Artifact::MissingValue => ART_MISSING.inc(),
        Artifact::ImplausibleValue => ART_IMPLAUSIBLE.inc(),
        Artifact::SampleExceedsMax => ART_SAMPLE_GT_MAX.inc(),
        Artifact::InconsistentSent => ART_INCONSISTENT_SENT.inc(),
        Artifact::SuspectedDuplicate => ART_DUP.inc(),
        Artifact::NonFinite => ART_NONFINITE.inc(),
    }
    if repaired {
        REPAIRED.inc();
    } else {
        FLAGGED.inc();
    }
    records.push(ArtifactRecord {
        artifact,
        queue,
        interval,
        repaired,
    });
}

/// Repair one coarse series in place: `MISSING` cells are linearly
/// interpolated from the nearest present neighbors (or copied from the
/// single present side; all-missing series become zero).
fn repair_missing(series: &mut [u32]) -> Vec<usize> {
    let missing: Vec<usize> = (0..series.len())
        .filter(|&k| series[k] == MISSING)
        .collect();
    for &k in &missing {
        let prev = (0..k).rev().find(|&i| series[i] != MISSING);
        let next = (k + 1..series.len()).find(|&i| series[i] != MISSING);
        series[k] = match (prev, next) {
            (Some(a), Some(b)) => {
                // Linear interpolation on the interval index.
                let (va, vb) = (series[a] as f64, series[b] as f64);
                let frac = (k - a) as f64 / (b - a) as f64;
                (va + (vb - va) * frac).round() as u32
            }
            (Some(a), None) => series[a],
            (None, Some(b)) => series[b],
            (None, None) => 0,
        };
    }
    missing
}

/// Wrap-repair an implausibly large value: try modulo the narrow-counter
/// width first (recovers a clean wrap exactly), clamp otherwise.
fn repair_implausible(v: u32, bound: u32) -> u32 {
    let unwrapped = v % WRAP_MODULUS;
    if unwrapped <= bound {
        unwrapped
    } else {
        bound
    }
}

/// Sanitize the coarse measurements of one window in place.
///
/// After this returns, every `samples`/`maxes`/`sent` cell is present,
/// plausible, and per-queue consistent (`sample <= max`, positive max
/// implies positive sent-count) — i.e. the window constraints extracted
/// from it are feasible interval by interval unless the model output
/// makes them otherwise.
pub fn sanitize_window(w: &mut PortWindow, cfg: &SanitizeConfig) -> SanitizeReport {
    WINDOWS.inc();
    let mut records = Vec::new();
    let intervals = w.intervals();

    // 1. Missing values.
    for q in 0..w.num_queues() {
        for k in repair_missing(&mut w.samples[q]) {
            push(&mut records, Artifact::MissingValue, q, k, true);
        }
        for k in repair_missing(&mut w.maxes[q]) {
            push(&mut records, Artifact::MissingValue, q, k, true);
        }
    }
    for k in 0..intervals {
        if w.sent[k] == MISSING {
            // Loosest bound C3 can use: every fine step may be non-empty.
            w.sent[k] = w.interval_len as u32;
            push(&mut records, Artifact::MissingValue, w.port, k, true);
        }
    }

    // 2. Implausible values (counter wraps / corruption).
    for q in 0..w.num_queues() {
        for k in 0..intervals {
            if w.samples[q][k] > cfg.plausible_qlen {
                w.samples[q][k] = repair_implausible(w.samples[q][k], cfg.plausible_qlen);
                push(&mut records, Artifact::ImplausibleValue, q, k, true);
            }
            if w.maxes[q][k] > cfg.plausible_qlen {
                w.maxes[q][k] = repair_implausible(w.maxes[q][k], cfg.plausible_qlen);
                push(&mut records, Artifact::ImplausibleValue, q, k, true);
            }
        }
    }
    for k in 0..intervals {
        if w.sent[k] > cfg.plausible_count {
            w.sent[k] = repair_implausible(w.sent[k], cfg.plausible_count);
            push(&mut records, Artifact::ImplausibleValue, w.port, k, true);
        }
    }

    // 3. Per-queue consistency: the sample is one of the observations the
    // max ranges over.
    for q in 0..w.num_queues() {
        for k in 0..intervals {
            if w.samples[q][k] > w.maxes[q][k] {
                w.maxes[q][k] = w.samples[q][k];
                push(&mut records, Artifact::SampleExceedsMax, q, k, true);
            }
        }
    }

    // 4. Work-conservation consistency: a busy interval sent something.
    for k in 0..intervals {
        let busy = (0..w.num_queues()).any(|q| w.maxes[q][k] > 0);
        if busy && w.sent[k] == 0 {
            w.sent[k] = 1;
            push(&mut records, Artifact::InconsistentSent, w.port, k, true);
        }
    }

    // 5. Suspected duplicates: identical non-zero measurement vector as
    // the predecessor. Internally consistent, so flag-only.
    for k in 1..intervals {
        let same = (0..w.num_queues())
            .all(|q| w.samples[q][k] == w.samples[q][k - 1] && w.maxes[q][k] == w.maxes[q][k - 1]);
        let nonzero = (0..w.num_queues()).any(|q| w.maxes[q][k] > 0);
        if same && nonzero {
            push(&mut records, Artifact::SuspectedDuplicate, w.port, k, false);
        }
    }

    let report = SanitizeReport { records };
    if !report.is_clean() {
        log_event!(
            "telemetry.sanitize",
            "port" = w.port,
            "start_bin" = w.start_bin,
            "repaired" = report.repaired(),
            "flagged" = report.flagged(),
        );
    }
    report
}

/// Replace non-finite cells of a floating-point series in place
/// (carry-forward of the last finite value; leading NaNs become 0).
pub fn sanitize_series(series: &mut [Vec<f32>]) -> SanitizeReport {
    let mut records = Vec::new();
    for (q, qs) in series.iter_mut().enumerate() {
        let mut last_finite = 0.0f32;
        for (t, v) in qs.iter_mut().enumerate() {
            if v.is_finite() {
                last_finite = *v;
            } else {
                *v = last_finite;
                push(&mut records, Artifact::NonFinite, q, t, true);
            }
        }
    }
    SanitizeReport { records }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::windows_from_trace;
    use fmml_netsim::traffic::TrafficConfig;
    use fmml_netsim::{SimConfig, Simulation};

    fn window() -> PortWindow {
        let cfg = SimConfig::small();
        let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.6);
        let gt = Simulation::new(cfg, traffic, 13).run_ms(300);
        windows_from_trace(&gt, 300, 50, 300)
            .into_iter()
            .find(|w| w.has_activity())
            .expect("an active window")
    }

    fn cfg() -> SanitizeConfig {
        SanitizeConfig::for_sim(64, 50)
    }

    #[test]
    fn clean_window_is_untouched() {
        let mut w = window();
        let orig = w.clone();
        let rep = sanitize_window(&mut w, &SanitizeConfig::for_sim(10_000, 50));
        // A real simulator window may legitimately contain duplicate-ish
        // intervals; everything else must be clean and unrepaired.
        assert_eq!(rep.repaired(), 0, "{:?}", rep.records);
        assert_eq!(w.samples, orig.samples);
        assert_eq!(w.maxes, orig.maxes);
        assert_eq!(w.sent, orig.sent);
    }

    #[test]
    fn missing_samples_are_interpolated() {
        let mut w = window();
        w.samples[0] = vec![4, MISSING, 8, MISSING, MISSING, 2];
        w.maxes[0] = vec![10; 6];
        let rep = sanitize_window(&mut w, &SanitizeConfig::for_sim(10_000, 50));
        assert_eq!(rep.count(Artifact::MissingValue), 3);
        assert_eq!(w.samples[0], vec![4, 6, 8, 6, 4, 2]);
    }

    #[test]
    fn all_missing_series_becomes_zero() {
        let mut series = vec![MISSING; 4];
        let fixed = repair_missing(&mut series);
        assert_eq!(fixed.len(), 4);
        assert_eq!(series, vec![0; 4]);
    }

    #[test]
    fn counter_wrap_is_recovered_exactly() {
        let mut w = window();
        let orig = w.maxes[0][2].max(3);
        w.maxes[0][2] = orig.wrapping_sub(WRAP_MODULUS); // wrapped export
        let rep = sanitize_window(&mut w, &SanitizeConfig::for_sim(10_000, 50));
        assert!(rep.count(Artifact::ImplausibleValue) >= 1);
        assert_eq!(w.maxes[0][2], orig, "wrap repair should invert the wrap");
    }

    #[test]
    fn implausible_non_wrap_values_are_clamped() {
        assert_eq!(repair_implausible(WRAP_MODULUS + 200, 64), 64);
        assert_eq!(repair_implausible(40, 64), 40 % WRAP_MODULUS);
    }

    #[test]
    fn sample_above_max_raises_the_max() {
        let mut w = window();
        w.samples[1][3] = 9;
        w.maxes[1][3] = 2;
        let rep = sanitize_window(&mut w, &cfg());
        assert!(rep.count(Artifact::SampleExceedsMax) >= 1);
        assert_eq!(w.maxes[1][3], 9);
    }

    #[test]
    fn busy_interval_with_zero_sent_is_repaired() {
        let mut w = window();
        w.maxes[0][1] = 5;
        w.sent[1] = 0;
        let rep = sanitize_window(&mut w, &cfg());
        assert!(rep.count(Artifact::InconsistentSent) >= 1);
        assert_eq!(w.sent[1], 1);
    }

    #[test]
    fn duplicates_are_flagged_not_repaired() {
        let mut w = window();
        for q in 0..w.num_queues() {
            w.samples[q][4] = w.samples[q][3];
            w.maxes[q][4] = w.maxes[q][3].max(1);
            w.maxes[q][3] = w.maxes[q][4];
        }
        let before = w.clone();
        let rep = sanitize_window(&mut w, &SanitizeConfig::for_sim(10_000, 50));
        assert!(rep.count(Artifact::SuspectedDuplicate) >= 1);
        assert_eq!(
            w.samples, before.samples,
            "flag-only artifacts rewrite nothing"
        );
        assert_eq!(rep.flagged(), rep.count(Artifact::SuspectedDuplicate));
    }

    #[test]
    fn sanitized_window_is_internally_consistent() {
        let mut w = window();
        // Heavy corruption.
        w.samples[0][0] = MISSING;
        w.maxes[0][0] = MISSING;
        w.samples[1][2] = 50;
        w.maxes[1][2] = 3;
        w.sent[2] = 0;
        w.maxes[0][5] = 7u32.wrapping_sub(WRAP_MODULUS);
        w.sent[4] = MISSING;
        sanitize_window(&mut w, &cfg());
        for q in 0..w.num_queues() {
            for k in 0..w.intervals() {
                assert!(w.samples[q][k] <= w.maxes[q][k], "q{q} k{k}");
                assert!(w.maxes[q][k] <= cfg().plausible_qlen);
                let busy = (0..w.num_queues()).any(|qq| w.maxes[qq][k] > 0);
                assert!(!busy || w.sent[k] > 0, "k{k} busy but sent=0");
            }
        }
    }

    #[test]
    fn series_nonfinite_cells_are_carried_forward() {
        let mut s = vec![vec![f32::NAN, 2.0, f32::INFINITY, 4.0, f32::NEG_INFINITY]];
        let rep = sanitize_series(&mut s);
        assert_eq!(rep.count(Artifact::NonFinite), 3);
        assert_eq!(rep.repaired(), 3);
        assert_eq!(s[0], vec![0.0, 2.0, 2.0, 4.0, 4.0]);
    }

    #[test]
    fn report_summary_reads_well() {
        let mut s = vec![vec![f32::NAN; 2]];
        let rep = sanitize_series(&mut s);
        assert_eq!(rep.summary(), "nonfinite=2");
        assert_eq!(SanitizeReport::default().summary(), "clean");
    }
}
