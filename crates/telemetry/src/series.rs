//! Aggregated coarse telemetry for a whole trace.

use crate::{lanz, sampler, snmp};
use fmml_netsim::GroundTruth;
use serde::{Deserialize, Serialize};

/// Coarse measurements of one queue over a whole trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseQueue {
    /// Instantaneous length at the end of each interval (periodic sampling).
    pub samples: Vec<u32>,
    /// Maximum length within each interval (LANZ).
    pub max: Vec<u32>,
}

/// Coarse measurements of one port over a whole trace (SNMP).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarsePort {
    pub received: Vec<u32>,
    pub sent: Vec<u32>,
    pub dropped: Vec<u32>,
}

/// Everything the paper's operator can see: the output of running the three
/// monitoring tools over a trace at one coarse interval length.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CoarseTelemetry {
    /// Fine bins per coarse interval (50 in the paper).
    pub interval_len: usize,
    pub queues_per_port: usize,
    pub queues: Vec<CoarseQueue>,
    pub ports: Vec<CoarsePort>,
}

impl CoarseTelemetry {
    /// Run all monitoring tools over a fine-grained trace.
    pub fn from_ground_truth(gt: &GroundTruth, interval_len: usize) -> CoarseTelemetry {
        assert!(interval_len > 0);
        let queues = (0..gt.num_queues())
            .map(|q| CoarseQueue {
                samples: sampler::periodic_samples(gt.queue_len_series(q), interval_len),
                max: lanz::interval_max(gt.queue_len_series(q), interval_len),
            })
            .collect();
        let ports = (0..gt.num_ports())
            .map(|p| CoarsePort {
                received: snmp::interval_counts(gt.received_series(p), interval_len),
                sent: snmp::interval_counts(gt.sent_series(p), interval_len),
                dropped: snmp::interval_counts(gt.dropped_series(p), interval_len),
            })
            .collect();
        CoarseTelemetry {
            interval_len,
            queues_per_port: gt.queues_per_port(),
            queues,
            ports,
        }
    }

    /// Number of complete coarse intervals.
    pub fn num_intervals(&self) -> usize {
        self.queues.first().map_or(0, |q| q.samples.len())
    }

    pub fn num_queues(&self) -> usize {
        self.queues.len()
    }

    pub fn num_ports(&self) -> usize {
        self.ports.len()
    }

    /// The port owning a switch-global queue id.
    pub fn port_of_queue(&self, q: usize) -> usize {
        q / self.queues_per_port
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_netsim::traffic::TrafficConfig;
    use fmml_netsim::{SimConfig, Simulation};

    fn trace() -> GroundTruth {
        let cfg = SimConfig::small();
        let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.5);
        Simulation::new(cfg, traffic, 21).run_ms(200)
    }

    #[test]
    fn shapes_match_trace() {
        let gt = trace();
        let ct = CoarseTelemetry::from_ground_truth(&gt, 50);
        assert_eq!(ct.num_intervals(), 4);
        assert_eq!(ct.num_queues(), gt.num_queues());
        assert_eq!(ct.num_ports(), gt.num_ports());
        for q in &ct.queues {
            assert_eq!(q.samples.len(), 4);
            assert_eq!(q.max.len(), 4);
        }
        for p in &ct.ports {
            assert_eq!(p.sent.len(), 4);
        }
    }

    #[test]
    fn coarse_measurements_are_consistent_with_ground_truth() {
        let gt = trace();
        let ct = CoarseTelemetry::from_ground_truth(&gt, 50);
        for q in 0..ct.num_queues() {
            let fine = gt.queue_len_series(q);
            for k in 0..ct.num_intervals() {
                let window = &fine[k * 50..(k + 1) * 50];
                // C1/C2 hold on ground truth by construction.
                assert_eq!(ct.queues[q].max[k], *window.iter().max().unwrap());
                assert_eq!(ct.queues[q].samples[k], window[49]);
                assert!(ct.queues[q].samples[k] <= ct.queues[q].max[k]);
            }
        }
    }

    #[test]
    fn port_mapping() {
        let gt = trace();
        let ct = CoarseTelemetry::from_ground_truth(&gt, 50);
        assert_eq!(ct.port_of_queue(0), 0);
        assert_eq!(ct.port_of_queue(3), 1);
    }
}
