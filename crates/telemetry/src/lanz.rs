//! LANZ-style per-interval maximum queue length.
//!
//! Arista LANZ reports the maximum length a queue reached within each
//! monitoring interval, but not *when* the maximum occurred — which is
//! exactly why imputation is needed. Following the paper (footnote 1), we
//! assume the reporting threshold is configured low enough that a value is
//! reported for every interval (zero if the queue stayed empty).

/// Per-interval maxima of a fine-grained series.
///
/// Trailing bins that do not fill a whole interval are ignored.
pub fn interval_max(fine: &[u32], interval_len: usize) -> Vec<u32> {
    assert!(interval_len > 0, "interval_len must be positive");
    fine.chunks_exact(interval_len)
        .map(|chunk| *chunk.iter().max().expect("chunks_exact yields full chunks"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_max_of_each_interval() {
        let fine = [1, 7, 3, 0, 0, 2];
        assert_eq!(interval_max(&fine, 3), vec![7, 2]);
    }

    #[test]
    fn empty_queue_reports_zero() {
        assert_eq!(interval_max(&[0, 0, 0, 0], 2), vec![0, 0]);
    }

    #[test]
    fn max_dominates_periodic_sample() {
        use crate::sampler::periodic_samples;
        let fine: Vec<u32> = vec![5, 1, 9, 2, 4, 4, 8, 0, 0, 3];
        let maxes = interval_max(&fine, 5);
        let samples = periodic_samples(&fine, 5);
        for (m, s) in maxes.iter().zip(&samples) {
            assert!(m >= s, "interval max must dominate the end sample");
        }
    }
}
