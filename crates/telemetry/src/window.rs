//! Fixed-length per-port windows: the unit of training and evaluation.
//!
//! A [`PortWindow`] is one 300 ms slice (6 coarse intervals) of one port:
//! the fine ground truth for each of its queues plus every coarse
//! measurement the operator would have for that slice. It is what the
//! transformer trains on, what the constraints C1–C3 are stated over, and
//! what CEM corrects.

use crate::sampler::sample_positions;
use crate::series::CoarseTelemetry;
use fmml_netsim::GroundTruth;
use serde::{Deserialize, Serialize};

/// One window of one port: ground truth + coarse measurements.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PortWindow {
    /// Port this window belongs to.
    pub port: usize,
    /// First fine bin (trace-relative) covered by the window.
    pub start_bin: usize,
    /// Fine bins per coarse interval.
    pub interval_len: usize,
    /// Switch-global ids of the port's queues (for bookkeeping).
    pub queue_ids: Vec<usize>,
    /// `truth[local_q][t]`: fine ground-truth queue lengths, `t < len`.
    pub truth: Vec<Vec<f32>>,
    /// `samples[local_q][k]`: periodic sample of interval `k` (C2 rhs).
    pub samples: Vec<Vec<u32>>,
    /// `maxes[local_q][k]`: LANZ max of interval `k` (C1 rhs).
    pub maxes: Vec<Vec<u32>>,
    /// SNMP per-interval packets sent by the port (C3 rhs).
    pub sent: Vec<u32>,
    /// SNMP per-interval packets dropped at the port.
    pub dropped: Vec<u32>,
    /// SNMP per-interval packets received at the port (ingress side).
    pub received: Vec<u32>,
}

impl PortWindow {
    /// Window length in fine bins.
    pub fn len(&self) -> usize {
        self.truth[0].len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of coarse intervals in the window.
    pub fn intervals(&self) -> usize {
        self.len() / self.interval_len
    }

    /// Number of queues at the port.
    pub fn num_queues(&self) -> usize {
        self.truth.len()
    }

    /// Window-relative fine-bin positions of the periodic samples.
    pub fn sample_positions(&self) -> Vec<usize> {
        sample_positions(self.len(), self.interval_len)
    }

    /// The coarse interval a window-relative fine bin belongs to.
    pub fn interval_of(&self, t: usize) -> usize {
        t / self.interval_len
    }

    /// True iff the window contains any queue activity at all (used to
    /// filter all-idle windows out of training sets).
    pub fn has_activity(&self) -> bool {
        self.maxes.iter().any(|m| m.iter().any(|&v| v > 0))
    }

    /// Peak LANZ max across queues (burst-intensity proxy for stratified
    /// dataset splits).
    pub fn peak_max(&self) -> u32 {
        self.maxes
            .iter()
            .flat_map(|m| m.iter().copied())
            .max()
            .unwrap_or(0)
    }
}

/// Slice a trace into non-overlapping (or strided) per-port windows.
///
/// `window_len` must be a multiple of `interval_len`; `stride` is in fine
/// bins (use `window_len` for non-overlapping windows).
pub fn windows_from_trace(
    gt: &GroundTruth,
    window_len: usize,
    interval_len: usize,
    stride: usize,
) -> Vec<PortWindow> {
    assert!(window_len > 0 && window_len.is_multiple_of(interval_len));
    assert!(
        stride > 0 && stride.is_multiple_of(interval_len),
        "stride must align to intervals"
    );
    let ct = CoarseTelemetry::from_ground_truth(gt, interval_len);
    let mut out = Vec::new();
    let mut start = 0;
    while start + window_len <= gt.num_bins() {
        let k0 = start / interval_len;
        let k1 = k0 + window_len / interval_len;
        for port in 0..gt.num_ports() {
            let queue_ids: Vec<usize> = gt.queues_of_port(port).collect();
            let truth = queue_ids
                .iter()
                .map(|&q| {
                    gt.queue_len_series(q)[start..start + window_len]
                        .iter()
                        .map(|&v| v as f32)
                        .collect()
                })
                .collect();
            let samples = queue_ids
                .iter()
                .map(|&q| ct.queues[q].samples[k0..k1].to_vec())
                .collect();
            let maxes = queue_ids
                .iter()
                .map(|&q| ct.queues[q].max[k0..k1].to_vec())
                .collect();
            out.push(PortWindow {
                port,
                start_bin: start,
                interval_len,
                queue_ids,
                truth,
                samples,
                maxes,
                sent: ct.ports[port].sent[k0..k1].to_vec(),
                dropped: ct.ports[port].dropped[k0..k1].to_vec(),
                received: ct.ports[port].received[k0..k1].to_vec(),
            });
        }
        start += stride;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_netsim::traffic::TrafficConfig;
    use fmml_netsim::{SimConfig, Simulation};

    fn trace() -> GroundTruth {
        let cfg = SimConfig::small();
        let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.5);
        Simulation::new(cfg, traffic, 33).run_ms(650)
    }

    #[test]
    fn window_shapes_and_counts() {
        let gt = trace();
        let ws = windows_from_trace(&gt, 300, 50, 300);
        // 650 ms -> 2 non-overlapping 300 ms windows per port.
        assert_eq!(ws.len(), 2 * gt.num_ports());
        for w in &ws {
            assert_eq!(w.len(), 300);
            assert_eq!(w.intervals(), 6);
            assert_eq!(w.num_queues(), 2);
            assert_eq!(w.sample_positions().len(), 6);
            assert_eq!(w.sent.len(), 6);
            assert_eq!(w.samples[0].len(), 6);
            assert_eq!(w.maxes[1].len(), 6);
        }
    }

    #[test]
    fn strided_windows_overlap() {
        let gt = trace();
        let ws = windows_from_trace(&gt, 300, 50, 100);
        // Starts: 0, 100, 200, 300 -> 4 per port.
        assert_eq!(ws.len(), 4 * gt.num_ports());
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn window_measurements_match_truth() {
        let gt = trace();
        for w in windows_from_trace(&gt, 300, 50, 300) {
            let pos = w.sample_positions();
            for lq in 0..w.num_queues() {
                for k in 0..w.intervals() {
                    let seg = &w.truth[lq][k * 50..(k + 1) * 50];
                    let max = seg.iter().cloned().fold(0.0f32, f32::max);
                    assert_eq!(w.maxes[lq][k] as f32, max);
                    assert_eq!(w.samples[lq][k] as f32, w.truth[lq][pos[k]]);
                }
            }
        }
    }

    #[test]
    fn interval_of_maps_bins() {
        let gt = trace();
        let w = &windows_from_trace(&gt, 300, 50, 300)[0];
        assert_eq!(w.interval_of(0), 0);
        assert_eq!(w.interval_of(49), 0);
        assert_eq!(w.interval_of(50), 1);
        assert_eq!(w.interval_of(299), 5);
    }

    #[test]
    #[should_panic(expected = "stride must align")]
    fn misaligned_stride_panics() {
        let gt = trace();
        windows_from_trace(&gt, 300, 50, 77);
    }
}
