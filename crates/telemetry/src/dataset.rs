//! Dataset assembly: multi-seed generation, splits, and normalization.

use crate::window::{windows_from_trace, PortWindow};
use crate::{DEFAULT_INTERVAL_LEN, DEFAULT_WINDOW_LEN};
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};

/// A train/test split of port windows.
#[derive(Debug, Clone)]
pub struct Dataset {
    pub train: Vec<PortWindow>,
    pub test: Vec<PortWindow>,
    /// Normalization scale for queue lengths (divide raw lengths by this).
    pub qlen_scale: f32,
    /// Normalization scale for per-interval packet counts.
    pub count_scale: f32,
}

impl Dataset {
    /// Generate a dataset by running `num_runs` simulations of
    /// `run_ms` milliseconds each (seeds `seed, seed+1, ...`), slicing into
    /// default-shaped windows, and splitting chronologically-by-run:
    /// the last `test_runs` runs become the test set (no window of a test
    /// run ever appears in training).
    pub fn generate(
        cfg: &SimConfig,
        traffic: &TrafficConfig,
        seed: u64,
        num_runs: usize,
        run_ms: u64,
        test_runs: usize,
    ) -> Dataset {
        assert!(test_runs < num_runs, "need at least one training run");
        let mut train = Vec::new();
        let mut test = Vec::new();
        for r in 0..num_runs {
            let gt = Simulation::new(cfg.clone(), traffic.clone(), seed + r as u64).run_ms(run_ms);
            let ws = windows_from_trace(
                &gt,
                DEFAULT_WINDOW_LEN,
                DEFAULT_INTERVAL_LEN,
                DEFAULT_WINDOW_LEN,
            );
            let active = ws.into_iter().filter(|w| w.has_activity());
            if r + test_runs >= num_runs {
                test.extend(active);
            } else {
                train.extend(active);
            }
        }
        let qlen_scale = (cfg.buffer_packets as f32).max(1.0);
        // One interval at line rate is the natural count scale.
        let count_scale = (cfg.pkts_per_ms() as usize * DEFAULT_INTERVAL_LEN) as f32;
        Dataset {
            train,
            test,
            qlen_scale,
            count_scale,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_splits_by_run() {
        let cfg = SimConfig::small();
        let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.5);
        let ds = Dataset::generate(&cfg, &traffic, 5, 3, 600, 1);
        assert!(!ds.train.is_empty());
        assert!(!ds.test.is_empty());
        // 600 ms -> 2 windows x 4 ports per run; 2 train runs, 1 test run.
        assert!(ds.train.len() <= 2 * 2 * 4);
        assert!(ds.test.len() <= 2 * 4);
        assert!(ds.qlen_scale > 0.0 && ds.count_scale > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one training run")]
    fn all_test_runs_rejected() {
        let cfg = SimConfig::small();
        let traffic = TrafficConfig::websearch_only(0.3);
        Dataset::generate(&cfg, &traffic, 5, 2, 300, 2);
    }
}
