//! Trace-level summary statistics (operator dashboard numbers).

use fmml_netsim::GroundTruth;

/// Aggregate health statistics of one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSummary {
    /// Per-port utilization: fraction of capacity used (sent / max
    /// possible sends per bin), averaged over the trace.
    pub port_utilization: Vec<f64>,
    /// Per-port drop rate: dropped / received (0 when nothing received).
    pub port_drop_rate: Vec<f64>,
    /// Queue with the largest cumulative backlog.
    pub busiest_queue: usize,
    /// Largest instantaneous queue length anywhere in the trace.
    pub peak_queue_len: u32,
    /// Mean shared-buffer occupancy (packets).
    pub mean_buffer_occupancy: f64,
}

/// Compute summary statistics; `pkts_per_ms` is the per-port service
/// capacity in packets per fine bin (see `SimConfig::pkts_per_ms`).
pub fn summarize(gt: &GroundTruth, pkts_per_ms: u64) -> TraceSummary {
    assert!(pkts_per_ms > 0);
    let bins = gt.num_bins().max(1) as f64;
    let cap = (pkts_per_ms as f64) * bins;
    let port_utilization = (0..gt.num_ports())
        .map(|p| gt.sent_series(p).iter().map(|&x| x as f64).sum::<f64>() / cap)
        .collect();
    let port_drop_rate = (0..gt.num_ports())
        .map(|p| {
            let recv: f64 = gt.received_series(p).iter().map(|&x| x as f64).sum();
            let drop: f64 = gt.dropped_series(p).iter().map(|&x| x as f64).sum();
            if recv > 0.0 {
                drop / recv
            } else {
                0.0
            }
        })
        .collect();
    let busiest_queue = (0..gt.num_queues())
        .max_by_key(|&q| {
            gt.queue_len_series(q)
                .iter()
                .map(|&v| v as u64)
                .sum::<u64>()
        })
        .unwrap_or(0);
    let peak_queue_len = (0..gt.num_queues())
        .flat_map(|q| gt.queue_max_series(q).iter().copied())
        .max()
        .unwrap_or(0);
    let mean_buffer_occupancy = gt
        .buffer_occupancy_series()
        .iter()
        .map(|&v| v as f64)
        .sum::<f64>()
        / bins;
    TraceSummary {
        port_utilization,
        port_drop_rate,
        busiest_queue,
        peak_queue_len,
        mean_buffer_occupancy,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_netsim::traffic::TrafficConfig;
    use fmml_netsim::{SimConfig, Simulation};

    #[test]
    fn summary_fields_are_sane() {
        let cfg = SimConfig::small();
        let pkts_per_ms = cfg.pkts_per_ms();
        let buffer = cfg.buffer_packets;
        let gt = Simulation::new(
            cfg.clone(),
            TrafficConfig::websearch_incast(cfg.num_ports, 0.6),
            8,
        )
        .run_ms(300);
        let s = summarize(&gt, pkts_per_ms);
        assert_eq!(s.port_utilization.len(), gt.num_ports());
        for &u in &s.port_utilization {
            assert!((0.0..=1.0 + 1e-9).contains(&u), "utilization {u}");
        }
        for &d in &s.port_drop_rate {
            assert!((0.0..=1.0).contains(&d), "drop rate {d}");
        }
        assert!(s.busiest_queue < gt.num_queues());
        assert!(s.peak_queue_len <= buffer);
        assert!(s.mean_buffer_occupancy >= 0.0);
        assert!(s.mean_buffer_occupancy <= buffer as f64);
    }

    #[test]
    fn idle_trace_reports_zeros() {
        let cfg = SimConfig::small();
        let gt = Simulation::with_sources(cfg.clone(), vec![]).run_ms(10);
        let s = summarize(&gt, cfg.pkts_per_ms());
        assert!(s.port_utilization.iter().all(|&u| u == 0.0));
        assert!(s.port_drop_rate.iter().all(|&d| d == 0.0));
        assert_eq!(s.peak_queue_len, 0);
        assert_eq!(s.mean_buffer_occupancy, 0.0);
    }

    #[test]
    fn higher_load_raises_utilization() {
        let cfg = SimConfig::small();
        let low = Simulation::new(cfg.clone(), TrafficConfig::websearch_only(0.2), 3).run_ms(400);
        let high = Simulation::new(cfg.clone(), TrafficConfig::websearch_only(0.8), 3).run_ms(400);
        let ul: f64 = summarize(&low, cfg.pkts_per_ms())
            .port_utilization
            .iter()
            .sum();
        let uh: f64 = summarize(&high, cfg.pkts_per_ms())
            .port_utilization
            .iter()
            .sum();
        assert!(uh > ul * 1.5, "low {ul} high {uh}");
    }
}
