//! Black-box tests of the `fmml` binary.

use std::process::Command;

fn fmml(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fmml"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_command_prints_usage() {
    let (stdout, _, ok) = fmml(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("fm-solve"));
}

#[test]
fn simulate_emits_csv_with_expected_columns() {
    let (stdout, _, ok) = fmml(&["simulate", "--ms", "20", "--ports", "2", "--seed", "3"]);
    assert!(ok);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header");
    assert!(header.starts_with("bin,qlen0"));
    assert_eq!(lines.count(), 20, "one row per simulated ms");
}

#[test]
fn telemetry_respects_interval_flag() {
    let (stdout, _, ok) = fmml(&[
        "telemetry",
        "--ms",
        "100",
        "--ports",
        "2",
        "--interval",
        "25",
        "--seed",
        "3",
    ]);
    assert!(ok);
    // 100 ms / 25 ms = 4 intervals + header.
    assert_eq!(stdout.lines().count(), 5);
}

#[test]
fn fm_solve_reports_an_outcome() {
    let (stdout, _, ok) = fmml(&["fm-solve", "--steps", "6", "--budget-secs", "30"]);
    assert!(ok);
    assert!(
        stdout.contains("sat in") || stdout.contains("budget wall"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn stats_flag_prints_metrics_table_on_stderr() {
    let (_, stderr, ok) = fmml(&[
        "simulate", "--ms", "20", "--ports", "2", "--seed", "3", "--stats",
    ]);
    assert!(ok);
    assert!(
        stderr.contains("counter/gauge"),
        "no metrics table: {stderr}"
    );
    assert!(
        stderr.contains("netsim.events"),
        "no netsim counters: {stderr}"
    );
    assert!(
        stderr.contains("netsim.sim_sec_wall_ms"),
        "no histogram row: {stderr}"
    );
}

#[test]
fn eval_stats_json_is_valid_and_covers_the_pipeline() {
    let dir = std::env::temp_dir().join(format!("fmml_cli_stats_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("out.json");
    let (stdout, stderr, ok) = fmml(&[
        "eval",
        "--epochs",
        "1",
        "--stats-json",
        path.to_str().unwrap(),
    ]);
    assert!(ok, "eval failed: {stderr}");
    // The eval report itself embeds the same snapshot.
    assert!(
        stdout.contains("## Metrics"),
        "no embedded snapshot: {stdout}"
    );
    let json = std::fs::read_to_string(&path).expect("--stats-json file written");
    // Valid JSON (strict parse via the workspace parser in the obs tests;
    // here: structural checks + required keys from all four crates).
    assert!(
        json.starts_with('{') && json.ends_with('}'),
        "not a JSON object: {json}"
    );
    assert_eq!(json.matches("\"counters\"").count(), 1);
    for key in [
        "smt.conflicts",
        "smt.decisions",
        "train.epoch_ms",
        "train.epochs",
        "netsim.events",
        "fm.cem.windows",
        "fm.cem.window_us",
    ] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "missing {key}: {json}"
        );
    }
    // Non-zero work from each of the four instrumented crates.
    for key in [
        "netsim.events",
        "train.epochs",
        "fm.cem.intervals",
        "smt.decisions",
    ] {
        let probe = format!("\"{key}\":0,");
        let probe_end = format!("\"{key}\":0}}");
        assert!(
            !json.contains(&probe) && !json.contains(&probe_end),
            "{key} is zero: {json}"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn run_log_file_emits_jsonl_events() {
    let dir = std::env::temp_dir().join(format!("fmml_cli_runlog_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let log = dir.join("run.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_fmml"))
        .args(["simulate", "--ms", "20", "--ports", "2", "--seed", "3"])
        .env("FMML_LOG_FILE", log.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let text = std::fs::read_to_string(&log).expect("log file written");
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty(), "no events logged");
    for line in &lines {
        assert!(line.starts_with("{\"t_us\":"), "bad event line: {line}");
        assert!(line.ends_with('}'), "bad event line: {line}");
    }
    assert!(text.contains("\"event\":\"cli.start\""), "{text}");
    assert!(text.contains("\"event\":\"netsim.run\""), "{text}");
    assert!(text.contains("\"event\":\"cli.done\""), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bad_flags_fail_with_diagnostics() {
    let (_, stderr, ok) = fmml(&["simulate", "--ms", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value for --ms"));
    let (_, stderr, ok) = fmml(&["simulate", "--load", "7.5"]);
    assert!(!ok);
    assert!(stderr.contains("--load"));
    let (_, stderr, ok) = fmml(&["train"]);
    assert!(!ok);
    assert!(stderr.contains("--out"));
    let (_, stderr, ok) = fmml(&["fm-solve", "--steps", "7"]);
    assert!(!ok);
    assert!(stderr.contains("even"));
}

/// Like [`fmml`] but returns the raw exit code for exit-status tests.
fn fmml_code(args: &[&str]) -> (String, String, Option<i32>) {
    let out = Command::new(env!("CARGO_BIN_EXE_fmml"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.code(),
    )
}

#[test]
fn usage_errors_exit_with_code_2() {
    let (_, stderr, code) = fmml_code(&["simulate", "--ms", "abc"]);
    assert_eq!(code, Some(2), "usage errors are exit code 2: {stderr}");
    let (_, _, code) = fmml_code(&["train"]); // missing --out
    assert_eq!(code, Some(2));
}

#[test]
fn malformed_model_json_fails_with_actionable_error() {
    let dir = std::env::temp_dir().join(format!("fmml_cli_badmodel_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("model.json");
    std::fs::write(&path, "{\"this is\": \"not a checkpoint\"").unwrap();
    let (_, stderr, code) = fmml_code(&["impute", "--model", path.to_str().unwrap()]);
    assert_eq!(code, Some(1), "data errors are exit code 1: {stderr}");
    assert!(
        stderr.contains("model.json") && stderr.contains("not a valid checkpoint"),
        "error must name the file and the problem: {stderr}"
    );
    // A missing file is an I/O error, also exit code 1, also naming the path.
    let gone = dir.join("nope.json");
    let (_, stderr, code) = fmml_code(&["impute", "--model", gone.to_str().unwrap()]);
    assert_eq!(code, Some(1));
    assert!(stderr.contains("nope.json"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_run_chaos_smoke_exits_clean_with_zero_violations() {
    let dir = std::env::temp_dir().join(format!("fmml_cli_faultrun_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let stats = dir.join("stats.json");
    let log = dir.join("run.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_fmml"))
        .args([
            "fault-run",
            "--seed",
            "7",
            "--stats-json",
            stats.to_str().unwrap(),
        ])
        .env("FMML_LOG_FILE", log.to_str().unwrap())
        .output()
        .expect("binary runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(out.status.success(), "fault-run failed: {stdout}{stderr}");
    assert!(stdout.contains("violations=0"), "{stdout}");
    assert!(stdout.contains("injected:"), "{stdout}");
    assert!(stdout.contains("rollbacks=1"), "{stdout}");
    // Degradation-ladder counters appear in the metrics snapshot.
    let json = std::fs::read_to_string(&stats).expect("--stats-json written");
    for key in [
        "fm.cem.ladder.windows",
        "fault.injected",
        "telemetry.sanitize.windows",
        "train.rollbacks",
    ] {
        assert!(
            json.contains(&format!("\"{key}\"")),
            "missing {key}: {json}"
        );
    }
    // The poisoned epoch's rollback is observable in the run log.
    let text = std::fs::read_to_string(&log).expect("run log written");
    assert!(text.contains("\"event\":\"train.rollback\""), "{text}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn train_resume_continues_from_a_checkpoint() {
    let dir = std::env::temp_dir().join(format!("fmml_cli_resume_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = dir.join("model.json");
    let out2 = dir.join("model2.json");
    // Tiny run: 1 sim run, short span, 1 epoch.
    let (_, stderr, ok) = fmml(&[
        "train",
        "--out",
        ckpt.to_str().unwrap(),
        "--smoke",
        "--runs",
        "1",
        "--ms",
        "240",
        "--epochs",
        "1",
        "--seed",
        "5",
    ]);
    assert!(ok, "initial train failed: {stderr}");
    // Resume from the checkpoint: the loaded model (its label, scales,
    // and weights) is trained further and re-saved, not re-initialized.
    let log = dir.join("run.jsonl");
    let out = Command::new(env!("CARGO_BIN_EXE_fmml"))
        .args([
            "train",
            "--out",
            out2.to_str().unwrap(),
            "--resume",
            ckpt.to_str().unwrap(),
            "--smoke",
            "--runs",
            "1",
            "--ms",
            "240",
            "--epochs",
            "1",
            "--seed",
            "5",
        ])
        .env("FMML_LOG_FILE", log.to_str().unwrap())
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(out2.exists(), "resumed checkpoint written");
    let text = std::fs::read_to_string(&log).unwrap();
    assert!(text.contains("\"event\":\"train.epoch\""), "{text}");
    // A corrupt --resume file is a data error (exit 1), naming the file.
    std::fs::write(&ckpt, "not json").unwrap();
    let (_, stderr, code) = fmml_code(&[
        "train",
        "--out",
        out2.to_str().unwrap(),
        "--resume",
        ckpt.to_str().unwrap(),
        "--smoke",
        "--runs",
        "1",
        "--ms",
        "240",
        "--epochs",
        "1",
        "--seed",
        "5",
    ]);
    assert_eq!(code, Some(1), "{stderr}");
    assert!(stderr.contains("model.json"), "{stderr}");
    std::fs::remove_dir_all(&dir).ok();
}
