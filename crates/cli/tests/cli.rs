//! Black-box tests of the `fmml` binary.

use std::process::Command;

fn fmml(args: &[&str]) -> (String, String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_fmml"))
        .args(args)
        .output()
        .expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn no_command_prints_usage() {
    let (stdout, _, ok) = fmml(&[]);
    assert!(ok);
    assert!(stdout.contains("USAGE"));
    assert!(stdout.contains("fm-solve"));
}

#[test]
fn simulate_emits_csv_with_expected_columns() {
    let (stdout, _, ok) = fmml(&["simulate", "--ms", "20", "--ports", "2", "--seed", "3"]);
    assert!(ok);
    let mut lines = stdout.lines();
    let header = lines.next().expect("header");
    assert!(header.starts_with("bin,qlen0"));
    assert_eq!(lines.count(), 20, "one row per simulated ms");
}

#[test]
fn telemetry_respects_interval_flag() {
    let (stdout, _, ok) = fmml(&[
        "telemetry", "--ms", "100", "--ports", "2", "--interval", "25", "--seed", "3",
    ]);
    assert!(ok);
    // 100 ms / 25 ms = 4 intervals + header.
    assert_eq!(stdout.lines().count(), 5);
}

#[test]
fn fm_solve_reports_an_outcome() {
    let (stdout, _, ok) = fmml(&["fm-solve", "--steps", "6", "--budget-secs", "30"]);
    assert!(ok);
    assert!(
        stdout.contains("sat in") || stdout.contains("budget wall"),
        "unexpected output: {stdout}"
    );
}

#[test]
fn bad_flags_fail_with_diagnostics() {
    let (_, stderr, ok) = fmml(&["simulate", "--ms", "abc"]);
    assert!(!ok);
    assert!(stderr.contains("invalid value for --ms"));
    let (_, stderr, ok) = fmml(&["simulate", "--load", "7.5"]);
    assert!(!ok);
    assert!(stderr.contains("--load"));
    let (_, stderr, ok) = fmml(&["train"]);
    assert!(!ok);
    assert!(stderr.contains("--out"));
    let (_, stderr, ok) = fmml(&["fm-solve", "--steps", "7"]);
    assert!(!ok);
    assert!(stderr.contains("even"));
}
