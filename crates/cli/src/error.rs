//! Typed CLI errors with stable exit codes.
//!
//! * [`CliError::Usage`] — the command line itself was wrong (unknown
//!   flag value, missing required argument). Exit code **2**, matching
//!   the parse-failure path in `main`.
//! * [`CliError::Io`] — a user-supplied file could not be read or
//!   written; carries the path so the message is actionable. Exit
//!   code **1**.
//! * [`CliError::Invalid`] — user-supplied data was malformed (bad JSON
//!   checkpoint, empty simulation span) or the run itself failed its
//!   acceptance check (`fault-run` constraint violations). Exit
//!   code **1**.

use std::fmt;

#[derive(Debug)]
pub enum CliError {
    /// Bad flags or missing required arguments.
    Usage(String),
    /// A user-supplied file could not be read or written.
    Io {
        path: String,
        source: std::io::Error,
    },
    /// Malformed user data or a failed run-level check.
    Invalid(String),
}

impl CliError {
    /// Attach a path to an I/O error.
    pub fn io(path: impl Into<String>, source: std::io::Error) -> CliError {
        CliError::Io {
            path: path.into(),
            source,
        }
    }

    /// The process exit code this error maps to.
    pub fn exit_code(&self) -> i32 {
        match self {
            CliError::Usage(_) => 2,
            CliError::Io { .. } | CliError::Invalid(_) => 1,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m) => write!(f, "{m}"),
            CliError::Io { path, source } => write!(f, "{path}: {source}"),
            CliError::Invalid(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for CliError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CliError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Flag-parsing helpers (`Args::get*`) report plain strings; those are
/// always usage problems.
impl From<String> for CliError {
    fn from(m: String) -> CliError {
        CliError::Usage(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_are_stable() {
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Invalid("x".into()).exit_code(), 1);
        let io = CliError::io("f.json", std::io::Error::other("nope"));
        assert_eq!(io.exit_code(), 1);
        assert_eq!(io.to_string(), "f.json: nope");
    }

    #[test]
    fn string_errors_become_usage() {
        let e: CliError = String::from("invalid value for --ms").into();
        assert!(matches!(e, CliError::Usage(_)));
    }
}
