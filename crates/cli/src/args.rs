//! Tiny dependency-free flag parser for the CLI.

use std::collections::HashMap;

/// Parsed command line: a subcommand plus `--key value` / `--flag` pairs.
#[derive(Debug, Clone, Default)]
pub struct Args {
    pub command: Option<String>,
    values: HashMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse an argument vector (excluding the program name).
    pub fn parse<I: IntoIterator<Item = String>>(argv: I) -> Result<Args, String> {
        let mut out = Args::default();
        let mut it = argv.into_iter().peekable();
        if let Some(first) = it.peek() {
            if !first.starts_with("--") {
                out.command = it.next();
            }
        }
        while let Some(a) = it.next() {
            let Some(key) = a.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {a:?}"));
            };
            if key.is_empty() {
                return Err("empty flag name".into());
            }
            match it.peek() {
                Some(v) if !v.starts_with("--") => {
                    let v = it.next().expect("peeked");
                    out.values.insert(key.to_string(), v);
                }
                _ => out.flags.push(key.to_string()),
            }
        }
        Ok(out)
    }

    /// A boolean flag (`--paper`).
    pub fn flag(&self, name: &str) -> bool {
        self.flags.iter().any(|f| f == name)
    }

    /// A required or optional typed value (`--ms 500`).
    pub fn get<T: std::str::FromStr>(&self, name: &str) -> Result<Option<T>, String> {
        match self.values.get(name) {
            None => Ok(None),
            Some(v) => v
                .parse()
                .map(Some)
                .map_err(|_| format!("invalid value for --{name}: {v:?}")),
        }
    }

    /// Typed value with a default.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        Ok(self.get(name)?.unwrap_or(default))
    }

    pub fn get_string(&self, name: &str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, String> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_values_and_flags() {
        let a = parse("simulate --ms 500 --seed 7 --paper").unwrap();
        assert_eq!(a.command.as_deref(), Some("simulate"));
        assert_eq!(a.get_or("ms", 0u64).unwrap(), 500);
        assert_eq!(a.get_or("seed", 0u64).unwrap(), 7);
        assert!(a.flag("paper"));
        assert!(!a.flag("missing"));
    }

    #[test]
    fn defaults_apply_when_absent() {
        let a = parse("eval").unwrap();
        assert_eq!(a.get_or("epochs", 30usize).unwrap(), 30);
        assert_eq!(a.get::<u64>("ms").unwrap(), None);
    }

    #[test]
    fn rejects_bad_values_and_positionals() {
        let a = parse("simulate --ms abc").unwrap();
        assert!(a.get::<u64>("ms").is_err());
        assert!(parse("simulate stray").is_err());
    }

    #[test]
    fn no_command_is_allowed() {
        let a = parse("--help").unwrap();
        assert_eq!(a.command, None);
        assert!(a.flag("help"));
    }
}
