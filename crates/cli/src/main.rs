//! `fmml` — command-line interface to the telemetry-imputation stack.
//!
//! ```text
//! fmml simulate  --ms 500 --seed 1 --ports 8 --load 0.5      # trace CSV
//! fmml telemetry --ms 500 --seed 1 --interval 50             # coarse CSV
//! fmml train     --out model.json [--kal] [--epochs 30] …    # checkpoint
//! fmml impute    --model model.json --ms 300 --seed 99 [--cem]
//! fmml enforce   --model model.json --jobs 4 [--no-cache]    # batched CEM
//! fmml eval      [--paper] [--epochs N]                      # Table 1
//! fmml fm-solve  --steps 8 --ports 2 --budget-secs 10        # §2.3 model
//! fmml fault-run --seed 7 --jobs 4 [--smt] [--bench-out DIR] # chaos mode
//! fmml serve     --addr 127.0.0.1:4700 [--max-secs N]        # streaming server
//! fmml cluster   --addr 127.0.0.1:4710 --backends 3          # sharded serving
//! fmml cluster-bench --out bench                             # BENCH_cluster.json
//! fmml loadgen   --addr 127.0.0.1:4700 --clients 8 [--chaos] # trace replay
//! fmml serve-bench --out bench                               # BENCH_serve.json
//! fmml recovery-bench --out bench                            # BENCH_recovery.json
//! fmml train-bench --out bench                               # BENCH_train.json
//! fmml obs       --addr 127.0.0.1:4700 [--json]              # live introspection
//! fmml obs-bench --out bench                                 # BENCH_obs.json
//! fmml simtest   --seeds 500 [--inject-bug replay-off-by-one] # DST explorer
//! ```
//!
//! Every command accepts the global observability flags: `--stats` prints
//! the metrics-registry table to stderr on exit, `--stats-json FILE`
//! writes the deterministic JSON snapshot to `FILE`. Structured JSONL run
//! telemetry is enabled via `FMML_LOG=1` (stderr) or `FMML_LOG_FILE=path`.

mod args;
mod error;

use args::Args;
use error::CliError;
use fmml_bench::baseline::Baseline;
use fmml_bench::cem_parallel::{bench_ladder, CemParallelReport};
use fmml_bench::cluster::{bench_cluster, ClusterBenchConfig};
use fmml_bench::obs::{bench_obs, ObsBenchConfig};
use fmml_bench::recovery::{bench_recovery, RecoveryBenchConfig};
use fmml_bench::serve::{bench_serve, ServeBenchConfig};
use fmml_bench::train::bench_train;
use fmml_bench::wire::{bench_wire, WireBenchConfig};
use fmml_core::eval::{generate_windows, run_table1, EvalConfig};
use fmml_core::imputer::Imputer;
use fmml_core::train::{train, train_from};
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fault::{inject_series, inject_window, FaultPlan};
use fmml_fm::cem::{
    enforce, enforce_degraded_batch, CemEngine, DegradationLevel, EnforceOptions, LadderConfig,
    LadderOutcome, SolutionCache,
};
use fmml_fm::packet_model::{
    reference_execution, solve, Arrival, PacketModelConfig, PacketModelOutcome,
};
use fmml_fm::WindowConstraints;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_obs::log_event;
use fmml_serve::protocol::{write_frame, Frame, FrameReader};
use fmml_serve::{ChaosConfig, LoadgenConfig, ServerConfig, WireCodec};
use fmml_smt::solver::Budget;
use fmml_telemetry::{sanitize_series, sanitize_window, SanitizeConfig, SanitizeReport};
use std::collections::BTreeMap;
use std::path::Path;
use std::time::{Duration, Instant};

const USAGE: &str = "\
fmml — formal-methods-augmented telemetry imputation (HotNets '23 reproduction)

USAGE: fmml <command> [--flags]

COMMANDS:
  simulate   run the switch simulator, print the fine-grained trace as CSV
             --ms N (500)  --seed N (1)  --ports N (8)  --load F (0.5)
  telemetry  print the operator's coarse telemetry as CSV
             flags of `simulate` plus --interval N (50)
  train      train a transformer imputer, write a JSON checkpoint
             --out FILE  --kal  --epochs N (30)  --runs N (8)  --ms N (1800)  --seed N (42)
             --resume FILE  continue training from an existing checkpoint
             --smoke        scaled-down config (seconds instead of minutes)
  impute     impute fresh telemetry with a checkpoint
             --model FILE  --ms N (300)  --seed N (99)  --cem
  enforce    impute fresh telemetry and run the CEM degradation ladder
             over every active window, batched (parallel + memoized)
             --model FILE  --ms N (300)  --seed N (99)  --runs N (1)
             --smt  --deadline-ms N  --jobs N (1; 0 = auto)  --no-cache
             --bench-out DIR (sequential-vs-tuned BENCH_cem_parallel.json)
  eval       regenerate Table 1 (markdown)
             --paper  --epochs N
  fm-solve   solve the full §2.3 packet-level model for a scripted scenario
             --steps N (8)  --ports N (2)  --budget-secs N (10)
  fault-run  chaos mode: sim -> inject faults -> sanitize -> impute -> CEM
             degradation ladder; exits non-zero if any output window
             violates its (possibly relaxed) constraints
             --seed N (7)  --runs N (2)  --epochs N (3)  --smt
             --deadline-ms N  --jobs N (1; 0 = auto)  --no-cache
             --bench-out DIR (write BENCH_cem_ladder.json and the
             sequential-vs-tuned BENCH_cem_parallel.json)
  serve      run the streaming imputation server (length-prefixed JSON
             frames over TCP, deadline-aware micro-batching, admission
             control); exits non-zero if any shipped reply violated its
             constraints
             --addr A (127.0.0.1:4700)  --workers N (2)  --jobs N (1)
             --deadline-ms N (50)  --max-batch N (16)  --queue-depth N (64)
             --model FILE (default: deterministic untrained imputer)
             --seed N (3)  --max-secs N (run forever when absent)
             --wire json|bin1 (json; codec preference — binary is used
             only with clients that advertise it in their Hello)
             fault injection (0 = off): --worker-panic-every N
             --solver-stall-every N  --solver-stall-ms N (5)
             --slow-write-every N  --slow-write-ms N (2)
             --max-restarts N (5; per-worker-slot restart budget)
  cluster    run the sharded serving cluster: one router speaking the
             serve wire protocol on both sides, consistent-hash session
             placement over N in-process backend nodes, health-probed
             failover with warm-up migration; exits non-zero if any
             backend shipped a constraint violation
             --addr A (127.0.0.1:4710)  --backends N (3)  --workers N (1)
             --deadline-ms N (50)  --model FILE  --seed N (3)
             --max-secs N (run forever when absent)
             --kill-backend-after-ms N (shut backend 0 down mid-run to
             exercise live migration; 0 = off)
             --wire json|bin1 (json; router + backends prefer the same
             codec, binary sessions pass through without re-encoding)
  cluster-bench
             cluster benchmark: direct single node vs 1 router + N
             backends (unpaced capacity), a paced pass with one backend
             killed mid-run (asserts zero lost intervals), and a timed
             kill measuring client-visible recovery_ms; writes
             BENCH_cluster.json (CI gates speedup >= 1.8 on the 4-core
             runner only — see the report's \"cores\" field)
             --out DIR (bench)  --backends N (3)  --clients N (8)
             --intervals N (40)  --deadline-ms N (50)  --seed N (41)
  loadgen    drive a running server with concurrent trace-replay clients
             --addr A (required)  --clients N (8)  --intervals N (40)
             --seed N (11)  --deadline-ms N (50)  --pace-ms N
             --wire json|bin1 (json; bin1 advertises the binary codec)
             --chaos (standard >= 10% disturbance preset)
             --report-json FILE (write the flat LoadReport JSON)
  serve-bench
             loopback serving benchmark: spawn a server, sweep client
             concurrency, re-run under chaos; writes BENCH_serve.json
             --out DIR (bench)  --clients A,B,C (1,8,32)  --intervals N (40)
             --deadline-ms N (50)  --workers N (2)  --jobs N (1)  --seed N (41)
  wire-bench wire-codec benchmark: JSON vs binary (bin1) encode/decode
             on the hot frames, a cross-codec lockstep pass asserting
             bitwise-identical reply content, and end-to-end loadgen
             under both codecs; writes BENCH_wire.json (CI gates the
             imputed enc+dec speedup >= 1.5 on the 4-core runner only —
             see the report's \"cores\" field)
             --out DIR (bench)  --iters N (20000)  --intervals N (24)
             --clients N (4)  --loadgen-intervals N (30)
             --deadline-ms N (50)  --seed N (41)
  recovery-bench
             crash-recovery benchmark: clean lockstep fingerprint, then
             the same stream under injected worker panics / solver
             stalls / slow writes with a mid-stream kill + resume, then
             a chaos swarm with process faults; asserts exactly-once
             bitwise-identical replies and writes BENCH_recovery.json
             --out DIR (bench)  --intervals N (36)  --workers N (2)
             --worker-panic-every N (8)  --solver-stall-every N (9)
             --slow-write-every N (7)  --chaos-clients N (4)
             --deadline-ms N (50)  --seed N (41)
  train-bench
             three-pass training benchmark: scalar-reference kernels vs
             blocked vs blocked+parallel on the same data; asserts all
             passes land on bit-identical parameters/outputs and writes
             BENCH_train.json; exits non-zero on fingerprint divergence
             or any epoch rollback
             --out DIR (bench)  --epochs N (3)  --ms N (800)  --seed N (7)
  obs        query a running server for its live metrics registry, trace
             summaries, and SLO gauges (sends a MetricsDump frame)
             --addr A (127.0.0.1:4700)  --json (raw dump instead of tables)
             --folded FILE (write folded stacks for flamegraph.pl)
  simtest    deterministic simulation testing: seeded schedules of client
             ops x transport faults x worker panics over virtual time,
             the whole server running over an in-memory transport, every
             reply checked against a reference model of the session
             protocol; each violation prints a replayable FMML_SIM_SEED
             --seeds N (100)  --seed N (1; first seed)  --clients N (3)
             --ops N (16)  --json (per-seed JSON lines)
             --wire json|bin1 (json; run the whole sweep under the
             binary codec — fingerprints are codec-independent)
             --pinned FILE   verify the aggregate reply fingerprint
                             against FILE, or write FILE if absent
             --cluster       multi-node mode: clients -> router -> N
                             backend shards, schedules extended with
                             link flaps, partitions and membership
                             churn; the whole run executes twice and
                             must reproduce bitwise
             --backends N (3; shards per seed, --cluster only)
             --inject-bug replay-off-by-one
                             prove the checker is live: exits 0 iff the
                             deliberately broken replay is caught and
                             reproduced bitwise from the printed seed
  obs-bench  tracing on/off differential benchmark: the same serve replay
             and training pass with tracing disabled then enabled,
             interleaved; asserts bit-identical outputs and writes
             BENCH_obs.json (CI gates max_overhead <= 1.05)
             --out DIR (bench)  --repeats N (3)  --intervals N (120)
             --epochs N (2)  --ms N (480)  --seed N (23)  --jobs N (2)

GLOBAL FLAGS:
  --stats            print the metrics table to stderr on exit
  --stats-json FILE  write the metrics snapshot as JSON to FILE on exit

ENVIRONMENT:
  FMML_LOG=1         structured JSONL run telemetry on stderr
  FMML_LOG_FILE=path append structured JSONL run telemetry to a file
  FMML_TRACE=1       enable span tracing (per-thread ring journals)
  FMML_TRACE_RING=N  slots per trace ring (default 4096)
";

fn main() {
    fmml_obs::RunLog::init_from_env();
    fmml_obs::trace::init_from_env();
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Some(command) = args.command.as_deref() else {
        println!("{USAGE}");
        return;
    };
    log_event!("cli.start", "command" = command);
    let result = match command {
        "simulate" => cmd_simulate(&args),
        "telemetry" => cmd_telemetry(&args),
        "train" => cmd_train(&args),
        "impute" => cmd_impute(&args),
        "enforce" => cmd_enforce(&args),
        "eval" => cmd_eval(&args),
        "fm-solve" => cmd_fm_solve(&args),
        "fault-run" => cmd_fault_run(&args),
        "serve" => cmd_serve(&args),
        "cluster" => cmd_cluster(&args),
        "cluster-bench" => cmd_cluster_bench(&args),
        "loadgen" => cmd_loadgen(&args),
        "serve-bench" => cmd_serve_bench(&args),
        "wire-bench" => cmd_wire_bench(&args),
        "recovery-bench" => cmd_recovery_bench(&args),
        "train-bench" => cmd_train_bench(&args),
        "obs" => cmd_obs(&args),
        "obs-bench" => cmd_obs_bench(&args),
        "simtest" => cmd_simtest(&args),
        _ => {
            println!("{USAGE}");
            return;
        }
    };
    log_event!("cli.done", "command" = command, "ok" = result.is_ok());
    if let Err(e) = emit_stats(&args) {
        eprintln!("error: {e}");
        std::process::exit(e.exit_code());
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        if matches!(e, CliError::Usage(_)) {
            eprintln!("run `fmml` without arguments for usage");
        }
        std::process::exit(e.exit_code());
    }
}

/// Honor the global `--stats` / `--stats-json FILE` flags: snapshot the
/// process-wide metrics registry once and render it both ways.
fn emit_stats(args: &Args) -> Result<(), CliError> {
    let want_table = args.flag("stats");
    let json_path = args.get_string("stats-json");
    if !want_table && json_path.is_none() {
        return Ok(());
    }
    let report = fmml_obs::snapshot();
    if want_table {
        eprint!("{}", report.to_table());
    }
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json()).map_err(|e| CliError::io(path, e))?;
    }
    Ok(())
}

fn sim_config(args: &Args) -> Result<(SimConfig, TrafficConfig, u64, u64), CliError> {
    let mut cfg = SimConfig::paper_default();
    cfg.num_ports = args.get_or("ports", cfg.num_ports)?;
    let load: f64 = args.get_or("load", 0.5)?;
    if !(0.0..=1.0).contains(&load) {
        return Err(CliError::Usage(format!(
            "--load must be within [0,1], got {load}"
        )));
    }
    let traffic = TrafficConfig::websearch_incast(cfg.num_ports, load);
    let ms = args.get_or("ms", 500u64)?;
    let seed = args.get_or("seed", 1u64)?;
    Ok((cfg, traffic, ms, seed))
}

fn cmd_simulate(args: &Args) -> Result<(), CliError> {
    let (cfg, traffic, ms, seed) = sim_config(args)?;
    let gt = Simulation::new(cfg, traffic, seed).run_ms(ms);
    print!("{}", gt.to_csv());
    Ok(())
}

fn cmd_telemetry(args: &Args) -> Result<(), CliError> {
    let (cfg, traffic, ms, seed) = sim_config(args)?;
    let interval = args.get_or("interval", 50usize)?;
    let gt = Simulation::new(cfg, traffic, seed).run_ms(ms);
    let ct = fmml_telemetry::CoarseTelemetry::from_ground_truth(&gt, interval);
    // Header.
    print!("interval");
    for q in 0..ct.num_queues() {
        print!(",sample{q},max{q}");
    }
    for p in 0..ct.num_ports() {
        print!(",recv{p},sent{p},drop{p}");
    }
    println!();
    for k in 0..ct.num_intervals() {
        print!("{k}");
        for q in &ct.queues {
            print!(",{},{}", q.samples[k], q.max[k]);
        }
        for p in &ct.ports {
            print!(",{},{},{}", p.received[k], p.sent[k], p.dropped[k]);
        }
        println!();
    }
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), CliError> {
    let out = args
        .get_string("out")
        .ok_or_else(|| CliError::Usage("--out FILE is required".into()))?
        .to_string();
    let mut cfg = if args.flag("smoke") {
        EvalConfig::smoke()
    } else {
        EvalConfig::paper()
    };
    cfg.train_runs = args.get_or("runs", cfg.train_runs)?;
    cfg.run_ms = args.get_or("ms", cfg.run_ms)?;
    cfg.seed = args.get_or("seed", cfg.seed)?;
    cfg.train.epochs = args.get_or("epochs", cfg.train.epochs)?;
    if args.flag("kal") {
        cfg.train.kal = Some(cfg.kal);
    }
    let scales = Scales {
        qlen: cfg.sim.buffer_packets as f32,
        count: (cfg.sim.pkts_per_ms() as usize * cfg.interval_len) as f32,
    };
    log_event!(
        "cli.train.start",
        "runs" = cfg.train_runs,
        "run_ms" = cfg.run_ms,
        "epochs" = cfg.train.epochs,
        "kal" = cfg.train.kal.is_some(),
    );
    let windows = generate_windows(&cfg, cfg.seed, cfg.train_runs);
    if windows.is_empty() {
        return Err(CliError::Invalid(
            "no active windows in the simulated span".into(),
        ));
    }
    let (model, stats) = match args.get_string("resume") {
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
            let mut model = TransformerImputer::load_json(&json)
                .map_err(|e| CliError::Invalid(format!("--resume {path}: {e}")))?;
            let stats = train_from(&mut model, &windows, &cfg.train);
            (model, stats)
        }
        None => train(&windows, scales, &cfg.train),
    };
    log_event!(
        "cli.train.done",
        "windows" = windows.len(),
        "first_loss" = stats.first().map_or(0.0, |s| s.mean_loss),
        "last_loss" = stats.last().map_or(0.0, |s| s.mean_loss),
        "rollbacks" = stats.iter().filter(|s| s.rolled_back).count(),
    );
    std::fs::write(&out, model.save_json()).map_err(|e| CliError::io(&out, e))?;
    eprintln!("checkpoint written to {out}");
    Ok(())
}

fn cmd_impute(args: &Args) -> Result<(), CliError> {
    let path = args
        .get_string("model")
        .ok_or_else(|| CliError::Usage("--model FILE is required".into()))?;
    let json = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let model = TransformerImputer::load_json(&json)
        .map_err(|e| CliError::Invalid(format!("--model {path}: not a valid checkpoint: {e}")))?;
    let mut cfg = EvalConfig::paper();
    cfg.run_ms = args.get_or("ms", 300u64)?;
    cfg.seed = args.get_or("seed", 99u64)?;
    let windows = generate_windows(&cfg, cfg.seed, 1);
    if windows.is_empty() {
        return Err(CliError::Invalid(
            "no active windows in the simulated span".into(),
        ));
    }
    let use_cem = args.flag("cem");
    println!("window,queue,ms,imputed");
    for (wi, w) in windows.iter().enumerate() {
        let mut series = model.impute(w);
        if use_cem {
            let wc = WindowConstraints::from_window(w);
            if let Ok(out) = enforce(&wc, &series, &CemEngine::Fast) {
                series = out
                    .corrected
                    .iter()
                    .map(|q| q.iter().map(|&v| v as f32).collect())
                    .collect();
            }
        }
        for (q, qs) in series.iter().enumerate() {
            for (t, v) in qs.iter().enumerate() {
                println!("{wi},{q},{},{v:.2}", w.start_bin + t);
            }
        }
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), CliError> {
    let mut cfg = if args.flag("paper") {
        EvalConfig::paper()
    } else {
        EvalConfig::smoke()
    };
    if let Some(e) = args.get::<usize>("epochs")? {
        cfg.train.epochs = e;
    }
    log_event!(
        "cli.eval.start",
        "epochs" = cfg.train.epochs,
        "paper" = args.flag("paper")
    );
    let report = run_table1(&cfg);
    println!("{}", report.to_markdown());
    // Always embed the metrics snapshot so an eval report is
    // self-describing: the table plus the solver/training/sim work that
    // produced it, in the same deterministic JSON as --stats-json.
    println!("## Metrics\n");
    println!("```json\n{}\n```", fmml_obs::snapshot().to_json());
    Ok(())
}

fn cmd_fm_solve(args: &Args) -> Result<(), CliError> {
    let steps = args.get_or("steps", 8usize)?;
    let ports = args.get_or("ports", 2usize)?;
    let budget_secs = args.get_or("budget-secs", 10u64)?;
    if steps < 2 || steps % 2 != 0 {
        return Err(CliError::Usage("--steps must be even and >= 2".into()));
    }
    let cfg = PacketModelConfig {
        num_ports: ports,
        queues_per_port: 2,
        buffer: 16,
        time_steps: steps,
        interval_len: steps / 2,
        strict_priority: true,
    };
    let mut arrivals = Vec::new();
    for t in 0..steps / 2 {
        for i in 0..ports.min(2) {
            arrivals.push(Arrival {
                step: t,
                input_port: i,
                queue: (i * 2) % cfg.num_queues(),
            });
        }
    }
    let tr = reference_execution(&cfg, &arrivals);
    let budget = Budget {
        timeout: Some(Duration::from_secs(budget_secs)),
        max_sat_conflicts: Some(u64::MAX / 2),
        max_bb_nodes: u64::MAX / 2,
    };
    match solve(&cfg, &tr.measurements, budget) {
        PacketModelOutcome::Sat {
            len,
            elapsed,
            stats,
        } => {
            println!("sat in {elapsed:?}; imputed series:");
            for (q, series) in len.iter().enumerate() {
                println!("  q{q}: {series:?}");
            }
            println!(
                "solver: {} decisions, {} conflicts, {} pivots",
                stats.decisions, stats.conflicts, stats.simplex_pivots
            );
        }
        PacketModelOutcome::Unsat { elapsed, .. } => println!("unsat in {elapsed:?}"),
        PacketModelOutcome::Unknown { elapsed, stats } => {
            println!(
                "budget wall after {elapsed:?} (the §2.3 scalability result): \
                 {} conflicts, {} pivots, {} lazy iterations",
                stats.conflicts, stats.simplex_pivots, stats.iterations
            )
        }
    }
    Ok(())
}

/// Stage B of `enforce`/`fault-run`: run the degradation ladder over a
/// batch of `(constraints, prediction)` windows with the requested
/// worker count and memo cache.
///
/// With `--bench-out DIR` the batch is run twice via
/// [`bench_ladder`] — sequential/uncached reference, then the tuned
/// pass — `BENCH_cem_parallel.json` is written into `DIR`, and a
/// divergence between the two passes is a hard error (the determinism
/// contract CI greps for). Without it, only the tuned pass runs.
///
/// Returns the outcomes to verify constraints against (the sequential
/// reference when benchmarking — both passes are asserted identical)
/// plus the bench report when one was produced.
fn run_ladder(
    items: &[(WindowConstraints, Vec<Vec<f32>>)],
    cfg: &LadderConfig,
    jobs: usize,
    use_cache: bool,
    bench_dir: Option<&str>,
) -> Result<(Vec<LadderOutcome>, Option<CemParallelReport>), CliError> {
    if let Some(dir) = bench_dir {
        let (outs, report) = bench_ladder(items, cfg, jobs, use_cache);
        std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
        let path = report
            .save(Path::new(dir))
            .map_err(|e| CliError::io(dir, e))?;
        eprintln!("bench report written to {}", path.display());
        if !report.identical {
            return Err(CliError::Invalid(format!(
                "parallel/cached output diverged from the sequential reference \
                 (seq={:016x} par={:016x})",
                report.sequential_hash, report.parallel_hash
            )));
        }
        Ok((outs, Some(report)))
    } else {
        let cache = SolutionCache::new(fmml_fm::cem::cache::DEFAULT_CAPACITY);
        let opts = EnforceOptions::new(jobs, use_cache.then_some(&cache));
        let outs = enforce_degraded_batch(items, cfg, &opts);
        if use_cache {
            let stats = cache.stats();
            println!(
                "  cache: hits={} misses={} hit_rate={:.1}% evictions={} saved={:.2}ms",
                stats.hits,
                stats.misses,
                stats.hit_rate() * 100.0,
                stats.evictions,
                stats.saved_ns as f64 / 1e6,
            );
        }
        Ok((outs, None))
    }
}

/// Per-rung interval counts, total intervals, and the number of windows
/// whose corrected output violates its effective constraints.
fn summarize_outcomes(
    items: &[(WindowConstraints, Vec<Vec<f32>>)],
    outs: &[LadderOutcome],
) -> ([usize; 5], usize, usize) {
    let mut level_counts = [0usize; 5];
    let mut intervals = 0usize;
    let mut violations = 0usize;
    for (out, (wc, _)) in outs.iter().zip(items) {
        for (total, n) in level_counts.iter_mut().zip(out.level_counts()) {
            *total += n;
        }
        intervals += out.levels.len();
        if !out
            .effective_constraints(wc)
            .satisfied_exact(&out.corrected)
        {
            violations += 1;
        }
    }
    (level_counts, intervals, violations)
}

/// `full=12,clamp=3`-style rendering of per-rung interval counts.
fn ladder_summary(level_counts: &[usize; 5]) -> String {
    DegradationLevel::ALL
        .iter()
        .zip(level_counts)
        .filter(|(_, n)| **n > 0)
        .map(|(l, n)| format!("{}={n}", l.label()))
        .collect::<Vec<_>>()
        .join(",")
}

/// The shared ladder-engine knobs of `enforce`/`fault-run`.
fn ladder_config(args: &Args) -> Result<LadderConfig, CliError> {
    Ok(LadderConfig {
        engine: if args.flag("smt") {
            CemEngine::Smt {
                budget: Budget::tight(),
            }
        } else {
            CemEngine::Fast
        },
        deadline: args.get::<u64>("deadline-ms")?.map(Duration::from_millis),
        escalation_factor: 4,
        breaker: None,
    })
}

/// The inference-side enforcement path, batched: impute a fresh trace
/// with a checkpoint and push every active window through the CEM
/// degradation ladder with `--jobs` workers sharing a memo cache.
fn cmd_enforce(args: &Args) -> Result<(), CliError> {
    let path = args
        .get_string("model")
        .ok_or_else(|| CliError::Usage("--model FILE is required".into()))?;
    let json = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let model = TransformerImputer::load_json(&json)
        .map_err(|e| CliError::Invalid(format!("--model {path}: not a valid checkpoint: {e}")))?;
    let mut cfg = EvalConfig::paper();
    cfg.run_ms = args.get_or("ms", 300u64)?;
    cfg.seed = args.get_or("seed", 99u64)?;
    let runs = args.get_or("runs", 1usize)?;
    let jobs = args.get_or("jobs", 1usize)?;
    let use_cache = !args.flag("no-cache");
    let ladder_cfg = ladder_config(args)?;

    let windows = generate_windows(&cfg, cfg.seed, runs);
    if windows.is_empty() {
        return Err(CliError::Invalid(
            "no active windows in the simulated span".into(),
        ));
    }
    let items: Vec<(WindowConstraints, Vec<Vec<f32>>)> = windows
        .iter()
        .map(|w| (WindowConstraints::from_window(w), model.impute(w)))
        .collect();

    let t0 = Instant::now();
    let (outs, bench) = run_ladder(
        &items,
        &ladder_cfg,
        jobs,
        use_cache,
        args.get_string("bench-out"),
    )?;
    let wall = t0.elapsed();
    let (level_counts, intervals, violations) = summarize_outcomes(&items, &outs);
    println!(
        "enforce: windows={} intervals={intervals} jobs={jobs} cache={} wall={:.2}ms",
        items.len(),
        if use_cache { "on" } else { "off" },
        wall.as_secs_f64() * 1e3,
    );
    println!("  ladder: {}", ladder_summary(&level_counts));
    if let Some(rep) = &bench {
        println!("  bench: {}", rep.summary());
    }
    println!("violations={violations}");
    log_event!(
        "cli.enforce.done",
        "windows" = items.len(),
        "intervals" = intervals,
        "jobs" = jobs,
        "violations" = violations,
    );
    if violations > 0 {
        return Err(CliError::Invalid(format!(
            "{violations} window(s) violated their effective constraints"
        )));
    }
    Ok(())
}

/// The serving model: `--model FILE` loads a checkpoint; otherwise a
/// deterministic untrained imputer seeded by `--seed` (scaled for the
/// `SimConfig::small()` traces the load generator replays).
/// Parse `--wire json|bin1` (default json — byte-identical to pre-v2).
fn parse_wire(args: &Args) -> Result<WireCodec, CliError> {
    match args.get_string("wire") {
        None => Ok(WireCodec::Json),
        Some(s) => WireCodec::parse(s)
            .ok_or_else(|| CliError::Usage(format!("unknown --wire {s:?} (known: json, bin1)"))),
    }
}

fn serve_model(args: &Args) -> Result<std::sync::Arc<TransformerImputer>, CliError> {
    match args.get_string("model") {
        Some(path) => {
            let json = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
            let model = TransformerImputer::load_json(&json).map_err(|e| {
                CliError::Invalid(format!("--model {path}: not a valid checkpoint: {e}"))
            })?;
            Ok(std::sync::Arc::new(model))
        }
        None => {
            let sim = SimConfig::small();
            Ok(std::sync::Arc::new(TransformerImputer::new(
                args.get_or("seed", 3u64)?,
                Scales {
                    qlen: sim.buffer_packets as f32,
                    count: 830.0,
                },
            )))
        }
    }
}

/// `fmml serve`: bind the streaming imputation server and run until
/// `--max-secs` elapses (or forever). On shutdown the final `StatsReply`
/// is printed and a non-zero exit signals shipped constraint violations.
fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let model = serve_model(args)?;
    let process_faults = fmml_fault::ProcessFaultPlan {
        worker_panic_every: args.get_or("worker-panic-every", 0u64)?,
        solver_stall_every: args.get_or("solver-stall-every", 0u64)?,
        solver_stall_ms: args.get_or("solver-stall-ms", 5u64)?,
        slow_write_every: args.get_or("slow-write-every", 0u64)?,
        slow_write_ms: args.get_or("slow-write-ms", 2u64)?,
    };
    if process_faults.worker_panic_every == 1 {
        return Err(CliError::Usage(
            "--worker-panic-every must be >= 2 (every retry would repanic)".into(),
        ));
    }
    let cfg = ServerConfig {
        addr: args.get_string("addr").unwrap_or("127.0.0.1:4700").into(),
        workers: args.get_or("workers", 2usize)?,
        jobs: args.get_or("jobs", 1usize)?,
        deadline: Duration::from_millis(args.get_or("deadline-ms", 50u64)?),
        max_batch: args.get_or("max-batch", 16usize)?,
        queue_depth: args.get_or("queue-depth", 64usize)?,
        max_restarts: args.get_or("max-restarts", 5u32)?,
        wire: parse_wire(args)?,
        process_faults,
        ..ServerConfig::default()
    };
    let max_secs = args.get::<u64>("max-secs")?;
    let handle =
        fmml_serve::spawn(model, cfg.clone()).map_err(|e| CliError::io(cfg.addr.clone(), e))?;
    let addr = handle.addr().to_string();
    eprintln!(
        "fmml-serve listening on {addr} (workers={} deadline={}ms max_batch={} queue_depth={})",
        cfg.workers,
        cfg.deadline.as_millis(),
        cfg.max_batch,
        cfg.queue_depth,
    );
    log_event!("cli.serve.start", "addr" = addr.as_str());
    match max_secs {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }
    let (worker_panics, worker_restarts) = handle.worker_stats();
    let (resumes, replayed) = handle.resume_stats();
    let stats = handle.shutdown();
    let Frame::StatsReply {
        sessions,
        accepted,
        rejected,
        malformed,
        replies,
        batches,
        deadline_misses,
        violations,
        slow_disconnects,
        ..
    } = stats
    else {
        return Err(CliError::Invalid("server returned no stats".into()));
    };
    println!(
        "serve: sessions={sessions} accepted={accepted} rejected={rejected} \
         malformed={malformed} replies={replies} batches={batches} \
         deadline_misses={deadline_misses} slow_disconnects={slow_disconnects}"
    );
    println!(
        "recovery: worker_panics={worker_panics} worker_restarts={worker_restarts} \
         resumes={resumes} replayed={replayed}"
    );
    println!("violations={violations}");
    log_event!(
        "cli.serve.done",
        "sessions" = sessions,
        "replies" = replies,
        "violations" = violations,
    );
    if violations > 0 {
        return Err(CliError::Invalid(format!(
            "{violations} shipped reply(ies) violated their constraints"
        )));
    }
    Ok(())
}

/// `fmml cluster`: the sharded serving cluster — one router bound on
/// `--addr`, N in-process backend serve nodes on loopback ephemeral
/// ports, consistent-hash placement and health-probed failover between
/// them. `--kill-backend-after-ms` shuts backend 0 down mid-run so a
/// live deployment can demonstrate migration under `fmml loadgen`.
fn cmd_cluster(args: &Args) -> Result<(), CliError> {
    let model = serve_model(args)?;
    let backends_n = args.get_or("backends", 3usize)?;
    if backends_n == 0 {
        return Err(CliError::Usage("--backends must be at least 1".into()));
    }
    let wire = parse_wire(args)?;
    let backend_cfg = ServerConfig {
        workers: args.get_or("workers", 1usize)?,
        deadline: Duration::from_millis(args.get_or("deadline-ms", 50u64)?),
        wire,
        ..ServerConfig::default()
    };
    let router = fmml_cluster::spawn(fmml_cluster::RouterConfig {
        addr: args.get_string("addr").unwrap_or("127.0.0.1:4710").into(),
        wire,
        ..fmml_cluster::RouterConfig::default()
    })
    .map_err(|e| CliError::io("cluster router", e))?;
    let mut backends: Vec<Option<fmml_serve::ServerHandle>> = Vec::new();
    for k in 0..backends_n {
        let h = fmml_serve::spawn(std::sync::Arc::clone(&model), backend_cfg.clone())
            .map_err(|e| CliError::io("cluster backend", e))?;
        router.add_backend(
            &format!("b{k}"),
            fmml_serve::TcpConnector {
                addr: h.addr().to_string(),
            },
        );
        backends.push(Some(h));
    }
    let addr = router.addr().to_string();
    eprintln!(
        "fmml-cluster listening on {addr} ({backends_n} backends, workers={} each)",
        backend_cfg.workers
    );
    log_event!(
        "cli.cluster.start",
        "addr" = addr.as_str(),
        "backends" = backends_n as u64
    );

    let kill_after = args.get_or("kill-backend-after-ms", 0u64)?;
    let killer = (kill_after > 0).then(|| {
        let victim = backends[0].take().expect("backend 0 exists");
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(kill_after));
            eprintln!("fmml-cluster: killing backend b0 (live-migration drill)");
            victim.shutdown()
        })
    });

    match args.get::<u64>("max-secs")? {
        Some(secs) => std::thread::sleep(Duration::from_secs(secs)),
        None => loop {
            std::thread::sleep(Duration::from_secs(3600));
        },
    }

    let (migrations, resumes, replayed) = router.cluster_stats();
    let stats = router.shutdown();
    let mut violations_total = 0u64;
    if let Some(k) = killer {
        if let Frame::StatsReply { violations, .. } = k.join().expect("killer thread") {
            violations_total += violations;
        }
    }
    for h in backends.into_iter().flatten() {
        if let Frame::StatsReply { violations, .. } = h.shutdown() {
            violations_total += violations;
        }
    }
    let Frame::StatsReply {
        sessions,
        accepted,
        malformed,
        replies,
        ..
    } = stats
    else {
        return Err(CliError::Invalid("router returned no stats".into()));
    };
    println!(
        "cluster: sessions={sessions} accepted={accepted} malformed={malformed} \
         replies={replies}"
    );
    println!("cluster: migrations={migrations} resumes={resumes} replayed={replayed}");
    println!("violations={violations_total}");
    log_event!(
        "cli.cluster.done",
        "sessions" = sessions,
        "replies" = replies,
        "migrations" = migrations,
        "violations" = violations_total,
    );
    if violations_total > 0 {
        return Err(CliError::Invalid(format!(
            "{violations_total} shipped reply(ies) violated their constraints"
        )));
    }
    Ok(())
}

/// `fmml cluster-bench`: the benchmark behind `BENCH_cluster.json` —
/// direct-vs-cluster capacity, a mid-run backend kill (zero lost
/// intervals asserted inside `bench_cluster`), and the timed-recovery
/// pass.
fn cmd_cluster_bench(args: &Args) -> Result<(), CliError> {
    let dir = args.get_string("out").unwrap_or("bench");
    let mut bc = ClusterBenchConfig::default();
    bc.backends = args.get_or("backends", bc.backends)?;
    bc.clients = args.get_or("clients", bc.clients)?;
    bc.intervals_per_client = args.get_or("intervals", bc.intervals_per_client)?;
    bc.deadline = Duration::from_millis(args.get_or("deadline-ms", 50u64)?);
    bc.seed = args.get_or("seed", bc.seed)?;
    if bc.backends == 0 {
        return Err(CliError::Usage("--backends must be at least 1".into()));
    }
    let model = serve_model(args)?;
    let report = bench_cluster(model, &bc);
    eprint!("{}", report.summary());
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let path = report
        .save(Path::new(dir))
        .map_err(|e| CliError::io(dir, e))?;
    println!("bench report written to {}", path.display());
    Ok(())
}

/// `fmml loadgen`: concurrent trace-replay clients against a running
/// server, optionally under the standard chaos preset. Prints the
/// aggregate report table; `--report-json FILE` writes the flat JSON
/// (fields like `deadline_miss_rate` and `rejected`) for CI to grep.
fn cmd_loadgen(args: &Args) -> Result<(), CliError> {
    let addr = args
        .get_string("addr")
        .ok_or_else(|| CliError::Usage("--addr HOST:PORT is required".into()))?;
    let cfg = LoadgenConfig {
        addr: addr.into(),
        clients: args.get_or("clients", 8usize)?,
        intervals: args.get_or("intervals", 40usize)?,
        seed: args.get_or("seed", 11u64)?,
        deadline: Duration::from_millis(args.get_or("deadline-ms", 50u64)?),
        pace: args.get::<u64>("pace-ms")?.map(Duration::from_millis),
        chaos: args.flag("chaos").then(ChaosConfig::standard),
        wire: parse_wire(args)?,
        ..LoadgenConfig::default()
    };
    log_event!(
        "cli.loadgen.start",
        "addr" = addr,
        "clients" = cfg.clients,
        "chaos" = cfg.chaos.is_some(),
    );
    let report = fmml_serve::run_loadgen(&cfg);
    print!("{}", report.render_table());
    if let Some(path) = args.get_string("report-json") {
        std::fs::write(path, report.to_json()).map_err(|e| CliError::io(path, e))?;
        eprintln!("load report written to {path}");
    }
    log_event!(
        "cli.loadgen.done",
        "sent" = report.sent,
        "answered" = report.answered,
        "rejected" = report.rejected,
        "p99_us" = report.p99_us,
    );
    if report.server_violations > 0 {
        return Err(CliError::Invalid(format!(
            "server shipped {} constraint violation(s)",
            report.server_violations
        )));
    }
    if report.unknown_levels > 0 {
        return Err(CliError::Invalid(format!(
            "{} reply(ies) carried an undecodable degradation level",
            report.unknown_levels
        )));
    }
    Ok(())
}

/// `fmml serve-bench`: the loopback serving benchmark behind
/// `BENCH_serve.json` — a concurrency sweep plus a chaos re-run.
fn cmd_serve_bench(args: &Args) -> Result<(), CliError> {
    let dir = args.get_string("out").unwrap_or("bench");
    let mut bc = ServeBenchConfig::default();
    if let Some(list) = args.get_string("clients") {
        bc.client_counts = list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("--clients: bad count {s:?}")))
            })
            .collect::<Result<_, _>>()?;
        if bc.client_counts.is_empty() {
            return Err(CliError::Usage("--clients needs at least one count".into()));
        }
    }
    bc.intervals_per_client = args.get_or("intervals", bc.intervals_per_client)?;
    bc.deadline = Duration::from_millis(args.get_or("deadline-ms", 50u64)?);
    bc.workers = args.get_or("workers", bc.workers)?;
    bc.jobs = args.get_or("jobs", bc.jobs)?;
    bc.seed = args.get_or("seed", bc.seed)?;
    let model = serve_model(args)?;
    let report = bench_serve(model, &bc);
    eprint!("{}", report.summary());
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let path = report
        .save(Path::new(dir))
        .map_err(|e| CliError::io(dir, e))?;
    println!("bench report written to {}", path.display());
    Ok(())
}

/// `fmml wire-bench`: the wire-codec benchmark behind
/// `BENCH_wire.json` — JSON vs binary encode/decode microbench on the
/// hot frames, a cross-codec lockstep fingerprint pass (asserted
/// bitwise-equal inside `bench_wire`), and end-to-end loadgen under
/// both codecs.
fn cmd_wire_bench(args: &Args) -> Result<(), CliError> {
    let dir = args.get_string("out").unwrap_or("bench");
    let mut bc = WireBenchConfig::default();
    bc.iters = args.get_or("iters", bc.iters)?;
    bc.intervals = args.get_or("intervals", bc.intervals)?;
    bc.clients = args.get_or("clients", bc.clients)?;
    bc.loadgen_intervals = args.get_or("loadgen-intervals", bc.loadgen_intervals)?;
    bc.deadline = Duration::from_millis(args.get_or("deadline-ms", 50u64)?);
    bc.seed = args.get_or("seed", bc.seed)?;
    let model = serve_model(args)?;
    let report = bench_wire(model, &bc);
    eprint!("{}", report.summary());
    log_event!(
        "wire_bench.done",
        "imputed_encdec_speedup" = report.imputed_encdec_speedup(),
        "fingerprint_match" = report.fingerprint_match,
    );
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let path = report
        .save(Path::new(dir))
        .map_err(|e| CliError::io(dir, e))?;
    println!("bench report written to {}", path.display());
    Ok(())
}

/// `fmml recovery-bench`: the crash-recovery benchmark behind
/// `BENCH_recovery.json` — clean-vs-crash fingerprint passes plus a
/// chaos swarm with process faults. `bench_recovery` panics on any
/// contract violation (lost reply, fingerprint divergence, shipped
/// constraint violation), so a written report is itself the proof the
/// recovery contract held.
fn cmd_recovery_bench(args: &Args) -> Result<(), CliError> {
    let dir = args.get_string("out").unwrap_or("bench");
    let mut bc = RecoveryBenchConfig::default();
    bc.intervals = args.get_or("intervals", bc.intervals)?;
    bc.deadline = Duration::from_millis(args.get_or("deadline-ms", 50u64)?);
    bc.workers = args.get_or("workers", bc.workers)?;
    bc.worker_panic_every = args.get_or("worker-panic-every", bc.worker_panic_every)?;
    bc.solver_stall_every = args.get_or("solver-stall-every", bc.solver_stall_every)?;
    bc.solver_stall_ms = args.get_or("solver-stall-ms", bc.solver_stall_ms)?;
    bc.slow_write_every = args.get_or("slow-write-every", bc.slow_write_every)?;
    bc.slow_write_ms = args.get_or("slow-write-ms", bc.slow_write_ms)?;
    bc.chaos_clients = args.get_or("chaos-clients", bc.chaos_clients)?;
    bc.chaos_intervals = args.get_or("chaos-intervals", bc.chaos_intervals)?;
    bc.seed = args.get_or("seed", bc.seed)?;
    if bc.worker_panic_every == 1 {
        return Err(CliError::Usage(
            "--worker-panic-every must be >= 2 (every retry would repanic)".into(),
        ));
    }
    let model = serve_model(args)?;
    let report = bench_recovery(model, &bc);
    eprint!("{}", report.summary());
    log_event!(
        "recovery_bench.done",
        "fingerprint_match" = report.fingerprint_match,
        "worker_restarts" = report.worker_restarts,
        "recovery_p99_us" = report.recovery_p99_us,
        "chaos_lost" = report.chaos_lost,
    );
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let path = report
        .save(Path::new(dir))
        .map_err(|e| CliError::io(dir, e))?;
    println!("bench report written to {}", path.display());
    Ok(())
}

/// `fmml train-bench`: the three-pass kernel benchmark behind
/// `BENCH_train.json` — the same training run on the scalar reference
/// kernels, the blocked kernels, and the blocked+parallel path.
///
/// The passes must land on bit-identical parameters, imputed series, and
/// epoch losses (the canonical summation-order contract of
/// `fmml_nn::kernel`); any fingerprint divergence or epoch rollback is a
/// hard error.
fn cmd_train_bench(args: &Args) -> Result<(), CliError> {
    let dir = args.get_string("out").unwrap_or("bench");
    let epochs: usize = args.get_or("epochs", 3usize)?;
    let ms: u64 = args.get_or("ms", 800u64)?;
    let seed: u64 = args.get_or("seed", 7u64)?;
    let (_, report) = bench_train(ms, seed, epochs);
    eprintln!("{}", report.summary());
    log_event!(
        "train_bench.done",
        "identical" = report.identical,
        "blocked_speedup" = report.blocked_speedup,
        "parallel_speedup" = report.parallel_speedup,
        "rollbacks" = report.rollbacks,
    );
    if !report.identical {
        return Err(CliError::Invalid(format!(
            "kernel passes diverged: reference={:016x} blocked={:016x} parallel={:016x}",
            report.reference_hash, report.blocked_hash, report.parallel_hash
        )));
    }
    if report.rollbacks > 0 {
        return Err(CliError::Invalid(format!(
            "{} epoch(s) rolled back during a clean benchmark run",
            report.rollbacks
        )));
    }
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let path = report
        .save(Path::new(dir))
        .map_err(|e| CliError::io(dir, e))?;
    println!("bench report written to {}", path.display());
    Ok(())
}

/// `fmml obs`: live introspection of a running server. Sends a
/// `MetricsDump` frame (accepted before or after the handshake) and
/// renders the `MetricsReply` — counters/gauges, per-stage latency
/// quantiles, SLO gauges, and recent trace summaries. `--json` prints
/// the raw dump; `--folded FILE` writes the folded-stacks export that
/// `flamegraph.pl` consumes.
fn cmd_obs(args: &Args) -> Result<(), CliError> {
    let addr = args.get_string("addr").unwrap_or("127.0.0.1:4700");
    let mut stream =
        std::net::TcpStream::connect(addr).map_err(|e| CliError::io(addr.to_string(), e))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(|e| CliError::io(addr.to_string(), e))?;
    write_frame(&mut stream, &Frame::MetricsDump)
        .map_err(|e| CliError::Invalid(format!("{addr}: {e}")))?;
    let mut reader = FrameReader::new(stream);
    let reply = reader
        .read_frame()
        .map_err(|e| CliError::Invalid(format!("{addr}: {e}")))?;
    let Frame::MetricsReply { json } = reply else {
        return Err(CliError::Invalid(format!(
            "{addr}: expected MetricsReply, got {}",
            reply.tag()
        )));
    };
    let dump: serde_json::Value = serde_json::from_str(&json)
        .map_err(|e| CliError::Invalid(format!("{addr}: undecodable dump: {e}")))?;
    if let Some(path) = args.get_string("folded") {
        let folded = dump["trace"]["folded"].as_str().unwrap_or("");
        std::fs::write(path, folded).map_err(|e| CliError::io(path, e))?;
        eprintln!("folded stacks written to {path}");
    }
    if args.flag("json") {
        println!("{json}");
    } else {
        print!("{}", render_obs_dump(&dump));
    }
    Ok(())
}

/// Human rendering of a [`fmml_obs::dump_json`] payload: the same
/// fixed-width tables as `--stats`, then the trace section.
fn render_obs_dump(dump: &serde_json::Value) -> String {
    let mut out = String::new();
    let m = &dump["metrics"];
    let mut scalars: Vec<(&str, String)> = Vec::new();
    for section in ["counters", "gauges", "float_gauges"] {
        for (k, v) in m[section].as_object().into_iter().flatten() {
            let rendered = v
                .as_u64()
                .map(|n| n.to_string())
                .or_else(|| v.as_f64().map(|f| format!("{f:.4}")))
                .unwrap_or_else(|| "?".into());
            scalars.push((k.as_str(), rendered));
        }
    }
    if !scalars.is_empty() {
        out.push_str(&format!("{:<44} {:>16}\n", "counter/gauge", "value"));
        for (k, v) in scalars {
            out.push_str(&format!("{k:<44} {v:>16}\n"));
        }
    }
    if let Some(hists) = m["histograms"].as_object().filter(|h| !h.is_empty()) {
        out.push_str(&format!(
            "{:<30} {:>7} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>3}\n",
            "histogram", "count", "mean", "p50", "p90", "p99", "p999", "max", ""
        ));
        for (name, h) in hists {
            out.push_str(&format!(
                "{:<30} {:>7} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>9.2} {:>3}\n",
                name,
                h["count"].as_u64().unwrap_or(0),
                h["mean"].as_f64().unwrap_or(0.0),
                h["p50"].as_f64().unwrap_or(0.0),
                h["p90"].as_f64().unwrap_or(0.0),
                h["p99"].as_f64().unwrap_or(0.0),
                h["p999"].as_f64().unwrap_or(0.0),
                h["max"].as_f64().unwrap_or(0.0),
                h["unit"].as_str().unwrap_or(""),
            ));
        }
    }
    let t = &dump["trace"];
    out.push_str(&format!(
        "trace: enabled={} spans={} dropped={}\n",
        t["enabled"].as_bool().unwrap_or(false),
        t["spans"].as_u64().unwrap_or(0),
        t["dropped"].as_u64().unwrap_or(0),
    ));
    for s in t["summaries"].as_array().into_iter().flatten() {
        out.push_str(&format!(
            "  trace {:>12} root={} spans={} total={:.1}us\n",
            s["trace_id"].as_u64().unwrap_or(0),
            s["root"].as_str().unwrap_or("?"),
            s["spans"].as_u64().unwrap_or(0),
            s["total_ns"].as_u64().unwrap_or(0) as f64 / 1e3,
        ));
    }
    out
}

/// `fmml obs-bench`: the tracing on/off differential behind
/// `BENCH_obs.json`. Bit-divergent outputs between the traced and
/// untraced passes are a hard error; the overhead ratio is reported for
/// CI to gate (wall-clock noise makes an in-process assertion flaky).
fn cmd_obs_bench(args: &Args) -> Result<(), CliError> {
    let dir = args.get_string("out").unwrap_or("bench");
    let defaults = ObsBenchConfig::default();
    let bc = ObsBenchConfig {
        sim_ms: args.get_or("ms", defaults.sim_ms)?,
        seed: args.get_or("seed", defaults.seed)?,
        serve_intervals: args.get_or("intervals", defaults.serve_intervals)?,
        jobs: args.get_or("jobs", defaults.jobs)?,
        epochs: args.get_or("epochs", defaults.epochs)?,
        repeats: args.get_or("repeats", defaults.repeats)?,
    };
    let report = bench_obs(&bc);
    eprintln!("{}", report.summary());
    log_event!(
        "obs_bench.done",
        "identical" = report.identical,
        "max_overhead" = report.max_overhead,
        "spans" = report.spans,
        "dropped" = report.dropped,
    );
    if !report.identical {
        return Err(CliError::Invalid(format!(
            "tracing perturbed outputs: serve {:016x}/{:016x} train {:016x}/{:016x}",
            report.serve_hash_off,
            report.serve_hash_on,
            report.train_hash_off,
            report.train_hash_on
        )));
    }
    std::fs::create_dir_all(dir).map_err(|e| CliError::io(dir, e))?;
    let path = report
        .save(Path::new(dir))
        .map_err(|e| CliError::io(dir, e))?;
    println!("bench report written to {}", path.display());
    Ok(())
}

/// Chaos mode: drive the full pipeline through seeded fault injection
/// and prove the degradation ladder still yields constraint-satisfying
/// windows.
///
/// Stages (all deterministic in `--seed`):
/// 1. train a small imputer with a poisoned epoch (exercises the
///    non-finite loss guard and checkpoint rollback — `train.rollback`
///    in the run log);
/// 2. simulate fresh traffic, corrupt the coarse telemetry with
///    [`FaultPlan::chaos`] (>= 10% of intervals), sanitize it;
/// 3. impute, corrupt the model output with NaN/Inf spikes, sanitize;
/// 4. run [`enforce_degraded`] and verify every window satisfies its
///    effective (possibly minimally-relaxed) C1 ∧ C2 ∧ C3.
///
/// Exits non-zero if any window violates its constraints. `--bench-out
/// DIR` additionally writes a `BENCH_cem_ladder.json` baseline with the
/// median per-window ladder latency.
fn cmd_fault_run(args: &Args) -> Result<(), CliError> {
    let seed = args.get_or("seed", 7u64)?;
    let runs = args.get_or("runs", 2usize)?;
    let epochs = args.get_or("epochs", 3usize)?.max(2);
    let jobs = args.get_or("jobs", 1usize)?;
    let use_cache = !args.flag("no-cache");

    let mut cfg = EvalConfig::smoke();
    cfg.seed = seed;
    cfg.train.seed = seed;
    cfg.train.epochs = epochs;
    // Poison the second training epoch so the rollback path runs on
    // every chaos invocation.
    cfg.train.nan_loss_epoch = Some(1);

    let plan = FaultPlan::chaos(seed);
    log_event!(
        "cli.fault_run.start",
        "seed" = seed,
        "runs" = runs,
        "expected_rate" = plan.expected_coarse_rate(),
    );

    // 1. Train (with the poisoned epoch).
    let scales = Scales {
        qlen: cfg.sim.buffer_packets as f32,
        count: (cfg.sim.pkts_per_ms() as usize * cfg.interval_len) as f32,
    };
    let train_windows = generate_windows(&cfg, cfg.seed, cfg.train_runs);
    if train_windows.is_empty() {
        return Err(CliError::Invalid("no active training windows".into()));
    }
    let (model, stats) = train(&train_windows, scales, &cfg.train);
    let rollbacks = stats.iter().filter(|s| s.rolled_back).count();
    if rollbacks == 0 {
        return Err(CliError::Invalid(
            "poisoned epoch did not trigger a rollback".into(),
        ));
    }

    // 2.-4. Inject -> sanitize -> impute -> ladder on fresh windows.
    let mut windows = generate_windows(&cfg, cfg.seed ^ 0xFA17, runs);
    if windows.is_empty() {
        return Err(CliError::Invalid("no active evaluation windows".into()));
    }
    let san_cfg = SanitizeConfig::for_sim(cfg.sim.buffer_packets, cfg.interval_len);
    let ladder_cfg = ladder_config(args)?;

    // Stage A (sequential, deterministic in --seed): inject -> sanitize
    // -> impute -> sanitize, collecting each window's enforcement input.
    let mut injected: BTreeMap<&'static str, usize> = BTreeMap::new();
    let mut report = SanitizeReport::default();
    let mut items: Vec<(WindowConstraints, Vec<Vec<f32>>)> = Vec::with_capacity(windows.len());
    for (i, w) in windows.iter_mut().enumerate() {
        let salt = i as u64;
        for e in inject_window(&plan, salt, w) {
            *injected.entry(e.kind.label()).or_default() += 1;
        }
        report.merge(sanitize_window(w, &san_cfg));
        let mut series = model.impute(w);
        for e in inject_series(&plan, salt, &mut series) {
            *injected.entry(e.kind.label()).or_default() += 1;
        }
        report.merge(sanitize_series(&mut series));
        items.push((WindowConstraints::from_window(w), series));
    }

    // Stage B: the ladder, batched — parallel across windows when
    // --jobs != 1, memoized unless --no-cache, benchmarked against the
    // sequential reference when --bench-out is set.
    let (outs, bench) = run_ladder(
        &items,
        &ladder_cfg,
        jobs,
        use_cache,
        args.get_string("bench-out"),
    )?;
    let (level_counts, intervals, violations) = summarize_outcomes(&items, &outs);

    let injected_total: usize = injected.values().sum();
    let injected_str: Vec<String> = injected.iter().map(|(k, n)| format!("{k}={n}")).collect();
    println!(
        "fault-run: seed={seed} windows={} intervals={intervals} jobs={jobs} cache={}",
        windows.len(),
        if use_cache { "on" } else { "off" },
    );
    println!(
        "  plan: chaos preset, expected corruption rate {:.1}%",
        plan.expected_coarse_rate() * 100.0
    );
    println!(
        "  injected: total={injected_total} ({})",
        injected_str.join(",")
    );
    println!("  sanitizer: {}", report.summary());
    println!("  ladder: {}", ladder_summary(&level_counts));
    if let Some(rep) = &bench {
        println!("  bench: {}", rep.summary());
    }
    println!(
        "  train: epochs={} rollbacks={rollbacks} final_loss={:.4}",
        stats.len(),
        stats.last().map_or(f32::NAN, |s| s.mean_loss)
    );
    println!("violations={violations}");
    log_event!(
        "cli.fault_run.done",
        "injected" = injected_total,
        "artifacts" = report.total(),
        "violations" = violations,
        "rollbacks" = rollbacks,
    );

    if let (Some(dir), Some(rep)) = (args.get_string("bench-out"), &bench) {
        // The historical per-window ladder baseline, now derived from the
        // bench report's sequential reference pass (mean ns per window).
        let mut baseline = Baseline::new("cem_ladder");
        baseline.record(
            "fault_run_enforce_window",
            rep.sequential_ns as f64 / rep.windows.max(1) as f64,
            rep.windows as u64,
        );
        let path = baseline
            .save(Path::new(dir))
            .map_err(|e| CliError::io(dir, e))?;
        eprintln!("bench baseline written to {}", path.display());
    }

    if violations > 0 {
        return Err(CliError::Invalid(format!(
            "{violations} window(s) violated their effective constraints"
        )));
    }
    Ok(())
}

/// Deterministic simulation testing: run seeded schedules of client ops,
/// transport faults, and worker panics against the full server over the
/// in-memory transport, checking every reply against the reference
/// protocol model. Exit is non-zero iff any seed reports a violation
/// (or, with `--inject-bug`, iff the bug is *not* caught and reproduced).
fn cmd_simtest(args: &Args) -> Result<(), CliError> {
    if args.flag("cluster") {
        if args.get_string("inject-bug").is_some() {
            return Err(CliError::Usage(
                "--inject-bug is a single-node mode (the planted bug lives in the \
                 backend replay path; use it without --cluster)"
                    .into(),
            ));
        }
        if args.get_string("pinned").is_some() {
            return Err(CliError::Usage(
                "--pinned is a single-node gate; cluster mode proves determinism \
                 by running every seed twice and requiring a bitwise match"
                    .into(),
            ));
        }
        return cmd_simtest_cluster(args);
    }
    let bug = match args.get_string("inject-bug") {
        None => None,
        Some("replay-off-by-one") => Some(fmml_serve::ProtocolBug::ReplayOffByOne),
        Some(other) => {
            return Err(CliError::Usage(format!(
                "unknown --inject-bug {other:?} (known: replay-off-by-one)"
            )))
        }
    };
    let defaults = fmml_simtest::SimtestConfig::default();
    let cfg = fmml_simtest::SimtestConfig {
        seeds: args.get_or("seeds", defaults.seeds)?,
        start_seed: args.get_or("seed", defaults.start_seed)?,
        clients: args.get_or("clients", defaults.clients)?,
        ops: args.get_or("ops", defaults.ops)?,
        inject_bug: bug,
        wire: parse_wire(args)?,
    };
    if cfg.seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }

    if cfg.inject_bug.is_some() {
        return cmd_simtest_bug(&cfg);
    }

    let t0 = Instant::now();
    let outcomes = fmml_simtest::run(&cfg);
    let wall = t0.elapsed();

    // Aggregate fingerprint over all seeds: pins the complete observable
    // behaviour of the run so CI can detect silent divergence.
    let mut agg: u64 = 0xcbf2_9ce4_8422_2325;
    let mut totals = (0u64, 0u64, 0u64, 0u64, 0u64);
    let mut bad_seeds = 0usize;
    for o in &outcomes {
        agg ^= o.fingerprint;
        agg = agg.wrapping_mul(0x0000_0100_0000_01b3);
        totals.0 += o.faults.dropped;
        totals.1 += o.faults.duplicated;
        totals.2 += o.faults.reordered;
        totals.3 += o.faults.delayed;
        totals.4 += o.faults.disconnects;
        if args.flag("json") {
            use serde_json::Value;
            let line = Value::Object(vec![
                ("seed".into(), Value::U64(o.seed)),
                (
                    "fingerprint".into(),
                    Value::String(format!("{:016x}", o.fingerprint)),
                ),
                (
                    "violations".into(),
                    Value::Array(
                        o.violations
                            .iter()
                            .map(|v| Value::String(v.clone()))
                            .collect(),
                    ),
                ),
                (
                    "faults".into(),
                    Value::Object(vec![
                        ("delayed".into(), Value::U64(o.faults.delayed)),
                        ("disconnects".into(), Value::U64(o.faults.disconnects)),
                    ]),
                ),
            ]);
            println!("{line}");
        }
        if !o.violations.is_empty() {
            bad_seeds += 1;
            println!("FMML_SIM_SEED={}", o.seed);
            for v in &o.violations {
                println!("  violation: {v}");
            }
        }
    }
    println!(
        "simtest: {} seeds ({}..{}), {} clients x {} ops, {} violating seed(s), \
         faults delayed={} disconnects={}, fingerprint {:016x}, {:.1}s",
        cfg.seeds,
        cfg.start_seed,
        cfg.start_seed + cfg.seeds - 1,
        cfg.clients,
        cfg.ops,
        bad_seeds,
        totals.3,
        totals.4,
        agg,
        wall.as_secs_f64()
    );
    log_event!(
        "simtest.done",
        "seeds" = cfg.seeds,
        "violating" = bad_seeds as u64,
        "fingerprint" = agg,
    );

    if let Some(path) = args.get_string("pinned") {
        check_or_write_pinned(path, &cfg, agg)?;
    }

    if bad_seeds > 0 {
        return Err(CliError::Invalid(format!(
            "{bad_seeds} seed(s) violated the protocol model; \
             re-run any with `fmml simtest --seeds 1 --seed <FMML_SIM_SEED>`"
        )));
    }
    Ok(())
}

/// `--inject-bug` mode: scan seeds until the checker flags the planted
/// protocol bug, then re-run that exact seed and require a bitwise match
/// of fingerprint and violation text — proving both that the checker is
/// live and that a printed seed is a complete reproducer.
fn cmd_simtest_bug(cfg: &fmml_simtest::SimtestConfig) -> Result<(), CliError> {
    let t0 = Instant::now();
    for seed in cfg.start_seed..cfg.start_seed + cfg.seeds {
        let first = fmml_simtest::run_seed(seed, cfg);
        if first.violations.is_empty() {
            continue;
        }
        println!("FMML_SIM_SEED={seed}");
        for v in &first.violations {
            println!("  violation: {v}");
        }
        let replay = fmml_simtest::run_seed(seed, cfg);
        if replay.fingerprint != first.fingerprint || replay.violations != first.violations {
            return Err(CliError::Invalid(format!(
                "seed {seed} caught the bug but did not reproduce bitwise: \
                 fingerprint {:016x} vs {:016x}",
                first.fingerprint, replay.fingerprint
            )));
        }
        println!(
            "simtest: injected bug caught at seed {seed} and reproduced bitwise \
             (fingerprint {:016x}, {:.1}s)",
            first.fingerprint,
            t0.elapsed().as_secs_f64()
        );
        log_event!(
            "simtest.bug_caught",
            "seed" = seed,
            "fingerprint" = first.fingerprint
        );
        return Ok(());
    }
    Err(CliError::Invalid(format!(
        "injected bug was NOT caught in {} seed(s) — the checker is blind to it",
        cfg.seeds
    )))
}

/// `fmml simtest --cluster`: the multi-node explorer — clients → router
/// → N backend shards per seed, schedules extended with link flaps,
/// partitions and membership churn. Determinism is proven the strong
/// way: the whole batch runs **twice** and the folded fingerprint must
/// match bitwise (placement, migration and probe timing may all differ
/// between runs; reply content must not).
fn cmd_simtest_cluster(args: &Args) -> Result<(), CliError> {
    let defaults = fmml_simtest::ClusterSimConfig::default();
    let cfg = fmml_simtest::ClusterSimConfig {
        seeds: args.get_or("seeds", defaults.seeds)?,
        start_seed: args.get_or("seed", defaults.start_seed)?,
        clients: args.get_or("clients", defaults.clients)?,
        backends: args.get_or("backends", defaults.backends)?,
        ops: args.get_or("ops", defaults.ops)?,
        wire: parse_wire(args)?,
    };
    if cfg.seeds == 0 {
        return Err(CliError::Usage("--seeds must be at least 1".into()));
    }
    if cfg.backends == 0 {
        return Err(CliError::Usage("--backends must be at least 1".into()));
    }

    let t0 = Instant::now();
    let first = fmml_simtest::cluster::run(&cfg);
    let second = fmml_simtest::cluster::run(&cfg);
    let wall = t0.elapsed();

    let fp1 = fmml_simtest::cluster::fold_run_fingerprint(&first);
    let fp2 = fmml_simtest::cluster::fold_run_fingerprint(&second);
    let mut bad_seeds = 0usize;
    let mut migrations = 0u64;
    let mut resumes = 0u64;
    for (a, b) in first.iter().zip(&second) {
        migrations += a.migrations;
        resumes += a.resumes;
        if args.flag("json") {
            use serde_json::Value;
            let line = Value::Object(vec![
                ("seed".into(), Value::U64(a.inner.seed)),
                (
                    "fingerprint".into(),
                    Value::String(format!("{:016x}", a.inner.fingerprint)),
                ),
                ("migrations".into(), Value::U64(a.migrations)),
                ("resumes".into(), Value::U64(a.resumes)),
                (
                    "violations".into(),
                    Value::Array(
                        a.inner
                            .violations
                            .iter()
                            .map(|v| Value::String(v.clone()))
                            .collect(),
                    ),
                ),
            ]);
            println!("{line}");
        }
        if !a.inner.violations.is_empty() {
            bad_seeds += 1;
            println!("FMML_SIM_SEED={}", a.inner.seed);
            for v in &a.inner.violations {
                println!("  violation: {v}");
            }
        }
        if a.inner.fingerprint != b.inner.fingerprint {
            println!(
                "seed {} NOT reproducible: {:016x} vs {:016x}",
                a.inner.seed, a.inner.fingerprint, b.inner.fingerprint
            );
        }
    }
    println!(
        "simtest --cluster: {} seeds ({}..{}), {} clients x {} ops x {} backends, \
         {} violating seed(s), migrations={} resumes={}, fingerprint {:016x}, {:.1}s",
        cfg.seeds,
        cfg.start_seed,
        cfg.start_seed + cfg.seeds - 1,
        cfg.clients,
        cfg.ops,
        cfg.backends,
        bad_seeds,
        migrations,
        resumes,
        fp1,
        wall.as_secs_f64()
    );
    log_event!(
        "simtest.cluster.done",
        "seeds" = cfg.seeds,
        "violating" = bad_seeds as u64,
        "migrations" = migrations,
        "fingerprint" = fp1,
    );
    if fp1 != fp2 {
        return Err(CliError::Invalid(format!(
            "cluster run not reproducible: first pass {fp1:016x}, second pass {fp2:016x}"
        )));
    }
    if bad_seeds > 0 {
        return Err(CliError::Invalid(format!(
            "{bad_seeds} seed(s) violated the protocol model; re-run any with \
             `fmml simtest --cluster --seeds 1 --seed <FMML_SIM_SEED>`"
        )));
    }
    Ok(())
}

/// Compare the aggregate fingerprint against a pinned baseline file, or
/// create the file on first run. The pin only holds for identical
/// (seeds, start_seed, clients, ops) parameters, so mismatched configs
/// are reported as such rather than as behavioural divergence.
fn check_or_write_pinned(
    path: &str,
    cfg: &fmml_simtest::SimtestConfig,
    agg: u64,
) -> Result<(), CliError> {
    use serde_json::Value;
    let record = Value::Object(vec![
        ("seeds".into(), Value::U64(cfg.seeds)),
        ("start_seed".into(), Value::U64(cfg.start_seed)),
        ("clients".into(), Value::U64(cfg.clients as u64)),
        ("ops".into(), Value::U64(cfg.ops as u64)),
        ("fingerprint".into(), Value::String(format!("{agg:016x}"))),
    ]);
    if !Path::new(path).exists() {
        let pretty = serde_json::to_string_pretty(&record)
            .map_err(|e| CliError::Invalid(format!("{path}: {e}")))?;
        std::fs::write(path, format!("{pretty}\n")).map_err(|e| CliError::io(path, e))?;
        println!("pinned fingerprint written to {path}");
        return Ok(());
    }
    let raw = std::fs::read_to_string(path).map_err(|e| CliError::io(path, e))?;
    let pinned: serde_json::Value = serde_json::from_str(&raw)
        .map_err(|e| CliError::Invalid(format!("{path}: not valid JSON: {e}")))?;
    for key in ["seeds", "start_seed", "clients", "ops"] {
        if pinned.get(key) != record.get(key) {
            return Err(CliError::Invalid(format!(
                "{path}: pinned {key}={} but this run used {key}={} — \
                 re-pin or pass matching flags",
                pinned.get(key).unwrap_or(&serde_json::Value::Null),
                record.get(key).unwrap_or(&serde_json::Value::Null),
            )));
        }
    }
    let want = pinned
        .get("fingerprint")
        .and_then(|v| v.as_str())
        .unwrap_or("");
    let got = format!("{agg:016x}");
    if want != got {
        return Err(CliError::Invalid(format!(
            "{path}: fingerprint mismatch: pinned {want}, got {got} — behaviour diverged \
             (or the host computes floats differently; see ci.yml simtest-smoke notes)"
        )));
    }
    println!("pinned fingerprint verified ({got})");
    Ok(())
}
