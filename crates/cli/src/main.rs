//! `fmml` — command-line interface to the telemetry-imputation stack.
//!
//! ```text
//! fmml simulate  --ms 500 --seed 1 --ports 8 --load 0.5      # trace CSV
//! fmml telemetry --ms 500 --seed 1 --interval 50             # coarse CSV
//! fmml train     --out model.json [--kal] [--epochs 30] …    # checkpoint
//! fmml impute    --model model.json --ms 300 --seed 99 [--cem]
//! fmml eval      [--paper] [--epochs N]                      # Table 1
//! fmml fm-solve  --steps 8 --ports 2 --budget-secs 10        # §2.3 model
//! ```
//!
//! Every command accepts the global observability flags: `--stats` prints
//! the metrics-registry table to stderr on exit, `--stats-json FILE`
//! writes the deterministic JSON snapshot to `FILE`. Structured JSONL run
//! telemetry is enabled via `FMML_LOG=1` (stderr) or `FMML_LOG_FILE=path`.

mod args;

use args::Args;
use fmml_core::eval::{generate_windows, run_table1, EvalConfig};
use fmml_core::imputer::Imputer;
use fmml_core::train::train;
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fm::cem::{enforce, CemEngine};
use fmml_fm::packet_model::{
    reference_execution, solve, Arrival, PacketModelConfig, PacketModelOutcome,
};
use fmml_fm::WindowConstraints;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_obs::log_event;
use fmml_smt::solver::Budget;
use std::time::Duration;

const USAGE: &str = "\
fmml — formal-methods-augmented telemetry imputation (HotNets '23 reproduction)

USAGE: fmml <command> [--flags]

COMMANDS:
  simulate   run the switch simulator, print the fine-grained trace as CSV
             --ms N (500)  --seed N (1)  --ports N (8)  --load F (0.5)
  telemetry  print the operator's coarse telemetry as CSV
             flags of `simulate` plus --interval N (50)
  train      train a transformer imputer, write a JSON checkpoint
             --out FILE  --kal  --epochs N (30)  --runs N (8)  --ms N (1800)  --seed N (42)
  impute     impute fresh telemetry with a checkpoint
             --model FILE  --ms N (300)  --seed N (99)  --cem
  eval       regenerate Table 1 (markdown)
             --paper  --epochs N
  fm-solve   solve the full §2.3 packet-level model for a scripted scenario
             --steps N (8)  --ports N (2)  --budget-secs N (10)

GLOBAL FLAGS:
  --stats            print the metrics table to stderr on exit
  --stats-json FILE  write the metrics snapshot as JSON to FILE on exit

ENVIRONMENT:
  FMML_LOG=1         structured JSONL run telemetry on stderr
  FMML_LOG_FILE=path append structured JSONL run telemetry to a file
";

fn main() {
    fmml_obs::RunLog::init_from_env();
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            std::process::exit(2);
        }
    };
    let Some(command) = args.command.as_deref() else {
        println!("{USAGE}");
        return;
    };
    log_event!("cli.start", "command" = command);
    let result = match command {
        "simulate" => cmd_simulate(&args),
        "telemetry" => cmd_telemetry(&args),
        "train" => cmd_train(&args),
        "impute" => cmd_impute(&args),
        "eval" => cmd_eval(&args),
        "fm-solve" => cmd_fm_solve(&args),
        _ => {
            println!("{USAGE}");
            return;
        }
    };
    log_event!("cli.done", "command" = command, "ok" = result.is_ok());
    if let Err(e) = emit_stats(&args) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if let Err(e) = result {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}

/// Honor the global `--stats` / `--stats-json FILE` flags: snapshot the
/// process-wide metrics registry once and render it both ways.
fn emit_stats(args: &Args) -> Result<(), String> {
    let want_table = args.flag("stats");
    let json_path = args.get_string("stats-json");
    if !want_table && json_path.is_none() {
        return Ok(());
    }
    let report = fmml_obs::snapshot();
    if want_table {
        eprint!("{}", report.to_table());
    }
    if let Some(path) = json_path {
        std::fs::write(path, report.to_json())
            .map_err(|e| format!("cannot write --stats-json {path}: {e}"))?;
    }
    Ok(())
}

fn sim_config(args: &Args) -> Result<(SimConfig, TrafficConfig, u64, u64), String> {
    let mut cfg = SimConfig::paper_default();
    cfg.num_ports = args.get_or("ports", cfg.num_ports)?;
    let load: f64 = args.get_or("load", 0.5)?;
    if !(0.0..=1.0).contains(&load) {
        return Err(format!("--load must be within [0,1], got {load}"));
    }
    let traffic = TrafficConfig::websearch_incast(cfg.num_ports, load);
    let ms = args.get_or("ms", 500u64)?;
    let seed = args.get_or("seed", 1u64)?;
    Ok((cfg, traffic, ms, seed))
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let (cfg, traffic, ms, seed) = sim_config(args)?;
    let gt = Simulation::new(cfg, traffic, seed).run_ms(ms);
    print!("{}", gt.to_csv());
    Ok(())
}

fn cmd_telemetry(args: &Args) -> Result<(), String> {
    let (cfg, traffic, ms, seed) = sim_config(args)?;
    let interval = args.get_or("interval", 50usize)?;
    let gt = Simulation::new(cfg, traffic, seed).run_ms(ms);
    let ct = fmml_telemetry::CoarseTelemetry::from_ground_truth(&gt, interval);
    // Header.
    print!("interval");
    for q in 0..ct.num_queues() {
        print!(",sample{q},max{q}");
    }
    for p in 0..ct.num_ports() {
        print!(",recv{p},sent{p},drop{p}");
    }
    println!();
    for k in 0..ct.num_intervals() {
        print!("{k}");
        for q in &ct.queues {
            print!(",{},{}", q.samples[k], q.max[k]);
        }
        for p in &ct.ports {
            print!(",{},{},{}", p.received[k], p.sent[k], p.dropped[k]);
        }
        println!();
    }
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), String> {
    let out = args
        .get_string("out")
        .ok_or("--out FILE is required")?
        .to_string();
    let mut cfg = EvalConfig::paper();
    cfg.train_runs = args.get_or("runs", cfg.train_runs)?;
    cfg.run_ms = args.get_or("ms", cfg.run_ms)?;
    cfg.seed = args.get_or("seed", cfg.seed)?;
    cfg.train.epochs = args.get_or("epochs", cfg.train.epochs)?;
    if args.flag("kal") {
        cfg.train.kal = Some(cfg.kal);
    }
    let scales = Scales {
        qlen: cfg.sim.buffer_packets as f32,
        count: (cfg.sim.pkts_per_ms() as usize * cfg.interval_len) as f32,
    };
    log_event!(
        "cli.train.start",
        "runs" = cfg.train_runs,
        "run_ms" = cfg.run_ms,
        "epochs" = cfg.train.epochs,
        "kal" = cfg.train.kal.is_some(),
    );
    let windows = generate_windows(&cfg, cfg.seed, cfg.train_runs);
    let (model, stats) = train(&windows, scales, &cfg.train);
    log_event!(
        "cli.train.done",
        "windows" = windows.len(),
        "first_loss" = stats.first().map_or(0.0, |s| s.mean_loss),
        "last_loss" = stats.last().map_or(0.0, |s| s.mean_loss),
    );
    std::fs::write(&out, model.save_json()).map_err(|e| e.to_string())?;
    eprintln!("checkpoint written to {out}");
    Ok(())
}

fn cmd_impute(args: &Args) -> Result<(), String> {
    let path = args.get_string("model").ok_or("--model FILE is required")?;
    let json = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    let model = TransformerImputer::load_json(&json)?;
    let mut cfg = EvalConfig::paper();
    cfg.run_ms = args.get_or("ms", 300u64)?;
    cfg.seed = args.get_or("seed", 99u64)?;
    let windows = generate_windows(&cfg, cfg.seed, 1);
    if windows.is_empty() {
        return Err("no active windows in the simulated span".into());
    }
    let use_cem = args.flag("cem");
    println!("window,queue,ms,imputed");
    for (wi, w) in windows.iter().enumerate() {
        let mut series = model.impute(w);
        if use_cem {
            let wc = WindowConstraints::from_window(w);
            if let Ok(out) = enforce(&wc, &series, &CemEngine::Fast) {
                series = out
                    .corrected
                    .iter()
                    .map(|q| q.iter().map(|&v| v as f32).collect())
                    .collect();
            }
        }
        for (q, qs) in series.iter().enumerate() {
            for (t, v) in qs.iter().enumerate() {
                println!("{wi},{q},{},{v:.2}", w.start_bin + t);
            }
        }
    }
    Ok(())
}

fn cmd_eval(args: &Args) -> Result<(), String> {
    let mut cfg = if args.flag("paper") {
        EvalConfig::paper()
    } else {
        EvalConfig::smoke()
    };
    if let Some(e) = args.get::<usize>("epochs")? {
        cfg.train.epochs = e;
    }
    log_event!(
        "cli.eval.start",
        "epochs" = cfg.train.epochs,
        "paper" = args.flag("paper")
    );
    let report = run_table1(&cfg);
    println!("{}", report.to_markdown());
    // Always embed the metrics snapshot so an eval report is
    // self-describing: the table plus the solver/training/sim work that
    // produced it, in the same deterministic JSON as --stats-json.
    println!("## Metrics\n");
    println!("```json\n{}\n```", fmml_obs::snapshot().to_json());
    Ok(())
}

fn cmd_fm_solve(args: &Args) -> Result<(), String> {
    let steps = args.get_or("steps", 8usize)?;
    let ports = args.get_or("ports", 2usize)?;
    let budget_secs = args.get_or("budget-secs", 10u64)?;
    if steps < 2 || steps % 2 != 0 {
        return Err("--steps must be even and >= 2".into());
    }
    let cfg = PacketModelConfig {
        num_ports: ports,
        queues_per_port: 2,
        buffer: 16,
        time_steps: steps,
        interval_len: steps / 2,
        strict_priority: true,
    };
    let mut arrivals = Vec::new();
    for t in 0..steps / 2 {
        for i in 0..ports.min(2) {
            arrivals.push(Arrival {
                step: t,
                input_port: i,
                queue: (i * 2) % cfg.num_queues(),
            });
        }
    }
    let tr = reference_execution(&cfg, &arrivals);
    let budget = Budget {
        timeout: Some(Duration::from_secs(budget_secs)),
        max_sat_conflicts: Some(u64::MAX / 2),
        max_bb_nodes: u64::MAX / 2,
    };
    match solve(&cfg, &tr.measurements, budget) {
        PacketModelOutcome::Sat {
            len,
            elapsed,
            stats,
        } => {
            println!("sat in {elapsed:?}; imputed series:");
            for (q, series) in len.iter().enumerate() {
                println!("  q{q}: {series:?}");
            }
            println!(
                "solver: {} decisions, {} conflicts, {} pivots",
                stats.decisions, stats.conflicts, stats.simplex_pivots
            );
        }
        PacketModelOutcome::Unsat { elapsed, .. } => println!("unsat in {elapsed:?}"),
        PacketModelOutcome::Unknown { elapsed, stats } => {
            println!(
                "budget wall after {elapsed:?} (the §2.3 scalability result): \
                 {} conflicts, {} pivots, {} lazy iterations",
                stats.conflicts, stats.simplex_pivots, stats.iterations
            )
        }
    }
    Ok(())
}
