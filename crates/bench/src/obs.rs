//! The tracing-overhead differential benchmark behind `BENCH_obs.json`.
//!
//! Span tracing's contract is *zero-cost-when-off, cheap-when-on*:
//! every entry point folds to one relaxed atomic load when disabled, and
//! an enabled run adds only a handful of seqlock ring writes per
//! request. [`bench_obs`] measures both halves of the claim on the two
//! hot paths the tracing instruments:
//!
//! * **serve path** — an offline [`StreamingImputer`] replay (model
//!   forward + CEM ladder enforcement, `jobs > 1` so the rayon
//!   context-propagation bridge is exercised), one `bench.interval`
//!   root span per push when tracing is on;
//! * **train path** — a `BlockedParallel` training pass (data-parallel
//!   batches + row-sharded GEMMs), `train.epoch` spans plus per-shard
//!   `nn.gemm_shard` spans when on.
//!
//! Off/on passes run interleaved `repeats` times and the minimum
//! wall-clock per mode is compared (min-of-N strips scheduler noise the
//! way Criterion's lower bound does). Every pass is fingerprinted
//! (FNV-1a over the full output bit pattern), so the report also proves
//! tracing never perturbs a single output bit. CI asserts
//! `identical == true` and `max_overhead <= 1.05` on the committed
//! report.

use crate::train::{fingerprint, train_scales, train_windows};
use fmml_core::streaming::{IntervalUpdate, StreamOptions, StreamingImputer};
use fmml_core::train::{train, LossKind, TrainConfig};
use fmml_core::transformer_imputer::TransformerImputer;
use fmml_fm::cem::{self, CemEngine, LadderConfig};
use fmml_nn::kernel::{with_mode, KernelMode};
use fmml_obs::trace;
use fmml_telemetry::PortWindow;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Benchmark knobs.
#[derive(Debug, Clone)]
pub struct ObsBenchConfig {
    /// Simulated milliseconds feeding the telemetry windows.
    pub sim_ms: u64,
    pub seed: u64,
    /// Serve-path replay length (interval pushes).
    pub serve_intervals: usize,
    /// Interval-level CEM parallelism for the serve path (>1 exercises
    /// the explicit rayon context hand-off).
    pub jobs: usize,
    /// Train-path epochs.
    pub epochs: usize,
    /// Interleaved off/on repetitions; min wall-clock per mode wins.
    pub repeats: usize,
}

impl Default for ObsBenchConfig {
    fn default() -> ObsBenchConfig {
        ObsBenchConfig {
            sim_ms: 480,
            seed: 23,
            serve_intervals: 120,
            jobs: 2,
            epochs: 2,
            repeats: 3,
        }
    }
}

/// One `BENCH_obs.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct ObsBenchReport {
    pub repeats: usize,
    pub serve_intervals: usize,
    pub epochs: usize,
    /// Min wall-clock of the serve path with tracing off / on.
    pub serve_off_ns: u64,
    pub serve_on_ns: u64,
    /// `serve_on_ns / serve_off_ns`.
    pub serve_overhead: f64,
    /// Min wall-clock of the train path with tracing off / on.
    pub train_off_ns: u64,
    pub train_on_ns: u64,
    pub train_overhead: f64,
    /// The worse of the two ratios — what CI gates at ≤ 1.05.
    pub max_overhead: f64,
    pub serve_hash_off: u64,
    pub serve_hash_on: u64,
    pub train_hash_off: u64,
    pub train_hash_on: u64,
    /// All off/on fingerprints agree — tracing perturbed nothing.
    pub identical: bool,
    /// Spans recorded across the traced passes.
    pub spans: u64,
    /// Ring evictions across the traced passes.
    pub dropped: u64,
}

impl ObsBenchReport {
    /// Deterministic JSON (fixed key order).
    pub fn to_json(&self) -> String {
        let mut v = serde_json::Value::Object(Vec::new());
        v["bench"] = serde_json::Value::String("obs".into());
        v["repeats"] = serde_json::Value::U64(self.repeats as u64);
        v["serve_intervals"] = serde_json::Value::U64(self.serve_intervals as u64);
        v["epochs"] = serde_json::Value::U64(self.epochs as u64);
        v["serve_off_ns"] = serde_json::Value::U64(self.serve_off_ns);
        v["serve_on_ns"] = serde_json::Value::U64(self.serve_on_ns);
        v["serve_overhead"] = serde_json::Value::F64(self.serve_overhead);
        v["train_off_ns"] = serde_json::Value::U64(self.train_off_ns);
        v["train_on_ns"] = serde_json::Value::U64(self.train_on_ns);
        v["train_overhead"] = serde_json::Value::F64(self.train_overhead);
        v["max_overhead"] = serde_json::Value::F64(self.max_overhead);
        v["serve_hash_off"] = serde_json::Value::String(format!("{:016x}", self.serve_hash_off));
        v["serve_hash_on"] = serde_json::Value::String(format!("{:016x}", self.serve_hash_on));
        v["train_hash_off"] = serde_json::Value::String(format!("{:016x}", self.train_hash_off));
        v["train_hash_on"] = serde_json::Value::String(format!("{:016x}", self.train_hash_on));
        v["identical"] = serde_json::Value::Bool(self.identical);
        v["spans"] = serde_json::Value::U64(self.spans);
        v["dropped"] = serde_json::Value::U64(self.dropped);
        v.to_string()
    }

    /// Write `BENCH_obs.json` into `dir`; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_obs.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "serve {:.2}ms→{:.2}ms ({:.3}x) train {:.2}ms→{:.2}ms ({:.3}x) \
             identical={} spans={} dropped={}",
            self.serve_off_ns as f64 / 1e6,
            self.serve_on_ns as f64 / 1e6,
            self.serve_overhead,
            self.train_off_ns as f64 / 1e6,
            self.train_on_ns as f64 / 1e6,
            self.train_overhead,
            self.identical,
            self.spans,
            self.dropped,
        )
    }
}

/// A replayable single-port interval stream (same construction as the
/// load generator's, minus the wire).
fn replay_updates(bc: &ObsBenchConfig) -> (Vec<PortWindow>, Vec<IntervalUpdate>) {
    let ws = train_windows(bc.sim_ms, bc.seed);
    assert!(!ws.is_empty(), "no active windows for the obs bench");
    let port = ws[0].port;
    let mut updates = Vec::with_capacity(bc.serve_intervals);
    'outer: loop {
        for w in ws.iter().filter(|w| w.port == port) {
            for k in 0..w.intervals() {
                updates.push(IntervalUpdate::from_window(w, k));
                if updates.len() >= bc.serve_intervals {
                    break 'outer;
                }
            }
        }
    }
    (ws, updates)
}

/// One timed serve-path pass: replay every update through a fresh
/// streaming imputer, roots a `bench.interval` span per push when
/// tracing is on, and fingerprints every imputed series.
fn serve_pass(
    model: &TransformerImputer,
    updates: &[IntervalUpdate],
    bc: &ObsBenchConfig,
    traced: bool,
) -> (u64, u64) {
    let opts = StreamOptions {
        ladder: LadderConfig {
            engine: CemEngine::Fast,
            ..LadderConfig::default()
        },
        jobs: bc.jobs,
        cache: None,
    };
    let first = &updates[0];
    let mut imp = StreamingImputer::with_options(
        model,
        opts,
        first.port,
        first.samples.len(),
        // Geometry matches `train_windows`: 10-bin intervals, 3-interval
        // sliding window.
        10,
        3,
    );
    let mut series: Vec<Vec<u32>> = Vec::new();
    let t0 = Instant::now();
    for u in updates {
        let out = if traced {
            let _root = trace::root("bench.interval");
            imp.push(u.clone())
        } else {
            imp.push(u.clone())
        };
        if let Some(ii) = out {
            series.extend(ii.series);
        }
    }
    let ns = t0.elapsed().as_nanos() as u64;
    assert!(!series.is_empty(), "replay produced no imputed intervals");
    (ns, cem::hash_u32_series(&series))
}

/// One timed train-path pass: `BlockedParallel` kernels, data-parallel
/// batches, full fingerprint (params + probe imputation + losses).
fn train_pass(ws: &[PortWindow], bc: &ObsBenchConfig) -> (u64, u64) {
    let cfg = TrainConfig {
        epochs: bc.epochs,
        lr: 5e-3,
        batch_size: 8,
        loss: LossKind::Emd,
        kal: None,
        seed: bc.seed,
        clip_norm: 5.0,
        parallel: true,
        nan_loss_epoch: None,
    };
    let t0 = Instant::now();
    let (m, s) = with_mode(KernelMode::BlockedParallel, || {
        train(ws, train_scales(), &cfg)
    });
    let ns = t0.elapsed().as_nanos() as u64;
    let q = with_mode(KernelMode::BlockedParallel, || m.impute_queue(&ws[0], 0));
    (ns, fingerprint(&m, &q, &s))
}

/// Run the interleaved off/on differential; restores the process-global
/// tracing switch to its prior state before returning. Panics if any
/// pass's fingerprint diverges (tracing must never touch outputs).
pub fn bench_obs(bc: &ObsBenchConfig) -> ObsBenchReport {
    assert!(bc.repeats >= 1);
    let was_enabled = trace::enabled();
    let ws = train_windows(bc.sim_ms, bc.seed);
    let (_, updates) = replay_updates(bc);
    let model = {
        // A tiny trained model so the serve path's forward pass does
        // real GEMM work (an untrained model would too, but training it
        // here keeps the replay outputs non-degenerate).
        let cfg = TrainConfig {
            epochs: 1,
            lr: 5e-3,
            batch_size: 8,
            loss: LossKind::Emd,
            kal: None,
            seed: bc.seed,
            clip_norm: 5.0,
            parallel: false,
            nan_loss_epoch: None,
        };
        train(&ws, train_scales(), &cfg).0
    };

    let mut serve_off_ns = u64::MAX;
    let mut serve_on_ns = u64::MAX;
    let mut train_off_ns = u64::MAX;
    let mut train_on_ns = u64::MAX;
    let mut serve_hash_off = 0u64;
    let mut serve_hash_on = 0u64;
    let mut train_hash_off = 0u64;
    let mut train_hash_on = 0u64;
    let spans0 = trace::TRACE_SPANS.get();
    let dropped0 = trace::TRACE_DROPPED.get();
    for r in 0..bc.repeats {
        trace::set_enabled(false);
        let (ns, h) = serve_pass(&model, &updates, bc, false);
        serve_off_ns = serve_off_ns.min(ns);
        serve_hash_off = h;
        let (ns, h) = train_pass(&ws, bc);
        train_off_ns = train_off_ns.min(ns);
        train_hash_off = h;

        trace::set_enabled(true);
        let (ns, h) = serve_pass(&model, &updates, bc, true);
        serve_on_ns = serve_on_ns.min(ns);
        serve_hash_on = h;
        let (ns, h) = train_pass(&ws, bc);
        train_on_ns = train_on_ns.min(ns);
        train_hash_on = h;

        assert_eq!(
            serve_hash_off, serve_hash_on,
            "serve outputs diverged under tracing (repeat {r})"
        );
        assert_eq!(
            train_hash_off, train_hash_on,
            "train outputs diverged under tracing (repeat {r})"
        );
    }
    trace::set_enabled(was_enabled);

    let serve_overhead = serve_on_ns as f64 / serve_off_ns.max(1) as f64;
    let train_overhead = train_on_ns as f64 / train_off_ns.max(1) as f64;
    ObsBenchReport {
        repeats: bc.repeats,
        serve_intervals: bc.serve_intervals,
        epochs: bc.epochs,
        serve_off_ns,
        serve_on_ns,
        serve_overhead,
        train_off_ns,
        train_on_ns,
        train_overhead,
        max_overhead: serve_overhead.max(train_overhead),
        serve_hash_off,
        serve_hash_on,
        train_hash_off,
        train_hash_on,
        identical: serve_hash_off == serve_hash_on && train_hash_off == train_hash_on,
        spans: trace::TRACE_SPANS.get() - spans0,
        dropped: trace::TRACE_DROPPED.get() - dropped0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tracing_never_perturbs_outputs() {
        let bc = ObsBenchConfig {
            sim_ms: 160,
            serve_intervals: 24,
            epochs: 1,
            repeats: 1,
            ..ObsBenchConfig::default()
        };
        let report = bench_obs(&bc);
        assert!(report.identical, "outputs diverged: {report:?}");
        assert!(report.spans > 0, "traced pass recorded no spans");
        // No overhead-ratio assertion here: a 1-repeat tiny pass is too
        // noisy for a wall-clock gate; CI gates the committed report.
        let j = report.to_json();
        assert!(j.contains("\"bench\":\"obs\""), "{j}");
        assert!(j.contains("\"identical\":true"), "{j}");
        assert!(j.contains("\"max_overhead\""), "{j}");
    }
}
