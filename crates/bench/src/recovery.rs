//! The crash-recovery benchmark behind `BENCH_recovery.json`.
//!
//! Three passes against real loopback servers answer the failure-
//! recovery questions §12 of DESIGN.md poses:
//!
//! 1. **Clean fingerprint** — a lockstep replay with no faults; every
//!    `Imputed` series is folded into an order-sensitive FNV
//!    fingerprint. This is the ground truth a recovered run must match
//!    bit for bit.
//! 2. **Crash pass** — the same stream against a server injecting
//!    worker panics, solver stalls, and slow writes, plus a deliberate
//!    mid-stream disconnect resumed via the session token. The pass
//!    asserts exactly-once delivery (every enforced interval answered
//!    exactly once, fingerprint identical to pass 1), measures recovery
//!    latency (panic requeue → reply committed) and worker restarts.
//! 3. **Chaos swarm** — the trace-replay load generator under the
//!    standard wire-chaos preset *and* process faults at once; with
//!    resumption in play the run must end with zero lost and zero
//!    unsent intervals.
//!
//! Like the serving benchmark, contract violations panic so CI fails
//! loud, and the JSON is flat so CI can grep single fields.

use fmml_core::streaming::IntervalUpdate;
use fmml_core::transformer_imputer::TransformerImputer;
use fmml_fault::ProcessFaultPlan;
use fmml_fm::cem::hash_u32_series;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_serve::protocol::{write_frame, Frame, FrameReader};
use fmml_serve::{loadgen, ChaosConfig, LoadgenConfig, ServerConfig, WireCodec};
use fmml_telemetry::{windows_from_trace, PortWindow};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// Benchmark knobs.
#[derive(Debug, Clone)]
pub struct RecoveryBenchConfig {
    /// Intervals replayed by the lockstep passes.
    pub intervals: usize,
    pub interval_len: usize,
    pub window_intervals: usize,
    /// End-to-end budget used by the chaos-swarm pass.
    pub deadline: Duration,
    pub workers: usize,
    /// Process-fault cadences for the crash passes (see
    /// [`ProcessFaultPlan`]; panic cadence must be ≥ 2).
    pub worker_panic_every: u64,
    pub solver_stall_every: u64,
    pub solver_stall_ms: u64,
    pub slow_write_every: u64,
    pub slow_write_ms: u64,
    /// Chaos-swarm geometry.
    pub chaos_clients: usize,
    pub chaos_intervals: usize,
    pub seed: u64,
}

impl Default for RecoveryBenchConfig {
    fn default() -> RecoveryBenchConfig {
        RecoveryBenchConfig {
            intervals: 36,
            interval_len: 10,
            window_intervals: 3,
            deadline: Duration::from_millis(50),
            workers: 2,
            worker_panic_every: 8,
            solver_stall_every: 9,
            solver_stall_ms: 5,
            slow_write_every: 7,
            slow_write_ms: 2,
            chaos_clients: 4,
            chaos_intervals: 30,
            seed: 41,
        }
    }
}

impl RecoveryBenchConfig {
    fn faults(&self) -> ProcessFaultPlan {
        ProcessFaultPlan {
            worker_panic_every: self.worker_panic_every,
            solver_stall_every: self.solver_stall_every,
            solver_stall_ms: self.solver_stall_ms,
            slow_write_every: self.slow_write_every,
            slow_write_ms: self.slow_write_ms,
        }
    }
}

/// One `BENCH_recovery.json` payload.
#[derive(Debug, Clone)]
pub struct RecoveryBenchReport {
    pub intervals: usize,
    pub enforced: usize,
    pub deadline_ms: u64,
    pub clean_fingerprint: u64,
    pub crash_fingerprint: u64,
    pub fingerprint_match: bool,
    pub worker_panics: u64,
    pub worker_restarts: u64,
    pub resumes: u64,
    pub replayed: u64,
    /// Exactly-once delivery ratio of the crash pass (answered once /
    /// enforced); anything but 1.0 panics before the report is built.
    pub availability: f64,
    pub recovery_samples: usize,
    pub recovery_p50_us: u64,
    pub recovery_p99_us: u64,
    pub recovery_max_us: u64,
    pub crash_violations: u64,
    /// Chaos-swarm pass (wire chaos + process faults + resumption).
    pub chaos_clients: usize,
    pub chaos_sent: u64,
    pub chaos_answered: u64,
    pub chaos_lost: u64,
    pub chaos_unsent: u64,
    pub chaos_resumes: u64,
    pub chaos_duplicates: u64,
    pub chaos_reconnects: u64,
    pub chaos_client_failures: u64,
    pub chaos_violations: u64,
    pub chaos_worker_restarts: u64,
}

impl RecoveryBenchReport {
    /// Deterministic, grep-friendly flat JSON.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let mut v = Value::Object(Vec::new());
        v["bench"] = Value::String("recovery".into());
        v["intervals"] = Value::U64(self.intervals as u64);
        v["enforced"] = Value::U64(self.enforced as u64);
        v["deadline_ms"] = Value::U64(self.deadline_ms);
        v["clean_fingerprint"] = Value::String(format!("{:016x}", self.clean_fingerprint));
        v["crash_fingerprint"] = Value::String(format!("{:016x}", self.crash_fingerprint));
        v["fingerprint_match"] = Value::U64(self.fingerprint_match as u64);
        v["worker_panics"] = Value::U64(self.worker_panics);
        v["worker_restarts"] = Value::U64(self.worker_restarts);
        v["resumes"] = Value::U64(self.resumes);
        v["replayed"] = Value::U64(self.replayed);
        v["availability"] = Value::F64(self.availability);
        v["recovery_samples"] = Value::U64(self.recovery_samples as u64);
        v["recovery_p50_us"] = Value::U64(self.recovery_p50_us);
        v["recovery_p99_us"] = Value::U64(self.recovery_p99_us);
        v["recovery_max_us"] = Value::U64(self.recovery_max_us);
        v["crash_violations"] = Value::U64(self.crash_violations);
        v["chaos_clients"] = Value::U64(self.chaos_clients as u64);
        v["chaos_sent"] = Value::U64(self.chaos_sent);
        v["chaos_answered"] = Value::U64(self.chaos_answered);
        v["chaos_lost"] = Value::U64(self.chaos_lost);
        v["chaos_unsent"] = Value::U64(self.chaos_unsent);
        v["chaos_resumes"] = Value::U64(self.chaos_resumes);
        v["chaos_duplicates"] = Value::U64(self.chaos_duplicates);
        v["chaos_reconnects"] = Value::U64(self.chaos_reconnects);
        v["chaos_client_failures"] = Value::U64(self.chaos_client_failures);
        v["chaos_violations"] = Value::U64(self.chaos_violations);
        v["chaos_worker_restarts"] = Value::U64(self.chaos_worker_restarts);
        v.to_string()
    }

    /// Write `BENCH_recovery.json` into `dir`; returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_recovery.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// Human-readable stderr summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        let _ = writeln!(
            s,
            "recovery: {} enforced intervals, fingerprint match = {}",
            self.enforced, self.fingerprint_match
        );
        let _ = writeln!(
            s,
            "  crash pass   panics {} | restarts {} | resumes {} | replayed {} | violations {}",
            self.worker_panics,
            self.worker_restarts,
            self.resumes,
            self.replayed,
            self.crash_violations
        );
        let _ = writeln!(
            s,
            "  recovery lat p50 {} us | p99 {} us | max {} us ({} samples)",
            self.recovery_p50_us, self.recovery_p99_us, self.recovery_max_us, self.recovery_samples
        );
        let _ = writeln!(
            s,
            "  chaos swarm  sent {} | answered {} | lost {} | unsent {} | resumes {} | dups {} | violations {}",
            self.chaos_sent, self.chaos_answered, self.chaos_lost, self.chaos_unsent,
            self.chaos_resumes, self.chaos_duplicates, self.chaos_violations
        );
        s
    }
}

/// Flat interval stream over the first active port of a simulated trace.
fn stream(cfg: &RecoveryBenchConfig) -> (Vec<IntervalUpdate>, usize, usize) {
    let sim = SimConfig::small();
    let gt = Simulation::new(
        sim.clone(),
        TrafficConfig::websearch_incast(sim.num_ports, 0.6),
        cfg.seed,
    )
    .run_ms(720);
    let wlen = cfg.interval_len * cfg.window_intervals;
    let ws: Vec<PortWindow> = windows_from_trace(&gt, wlen, cfg.interval_len, wlen)
        .into_iter()
        .filter(|w| w.has_activity())
        .collect();
    assert!(!ws.is_empty(), "recovery bench trace has no active windows");
    let port = ws[0].port;
    let queues = ws[0].num_queues();
    let mut updates = Vec::with_capacity(cfg.intervals);
    'outer: loop {
        for w in ws.iter().filter(|w| w.port == port) {
            for k in 0..w.intervals() {
                updates.push(IntervalUpdate::from_window(w, k));
                if updates.len() >= cfg.intervals {
                    break 'outer;
                }
            }
        }
    }
    (updates, port, queues)
}

fn connect(addr: std::net::SocketAddr) -> (TcpStream, FrameReader<TcpStream>) {
    let stream = TcpStream::connect(addr).expect("connect recovery client");
    stream.set_nodelay(true).expect("nodelay");
    let reader = FrameReader::new(stream.try_clone().expect("clone"));
    (stream, reader)
}

fn hello_frame(
    port: usize,
    queues: usize,
    cfg: &RecoveryBenchConfig,
    resume: Option<(&str, u64)>,
) -> Frame {
    Frame::Hello {
        tenant: "recovery".into(),
        ports: vec![port],
        queues,
        interval_len: cfg.interval_len,
        window_intervals: cfg.window_intervals,
        resume_token: resume.map(|(t, _)| t.to_string()),
        last_acked: resume.map(|(_, a)| a),
        codecs: None,
    }
}

/// What a lockstep pass produced, beyond the replies themselves.
struct PassOutcome {
    replies: BTreeMap<u64, Vec<Vec<u32>>>,
    worker_panics: u64,
    worker_restarts: u64,
    resumes: u64,
    replayed: u64,
    requeue_latencies_us: Vec<u64>,
    violations: u64,
}

/// Lockstep replay of `updates` against a fresh server. With
/// `kill_connection`, the client vanishes mid-stream with a reply in
/// flight and resumes via the session token — exercising park, drain,
/// watermark, and replay on top of whatever process faults are active.
fn lockstep_pass(
    model: &Arc<TransformerImputer>,
    cfg: &RecoveryBenchConfig,
    updates: &[IntervalUpdate],
    port: usize,
    queues: usize,
    faults: ProcessFaultPlan,
    kill_connection: bool,
) -> PassOutcome {
    let handle = fmml_serve::spawn(
        Arc::clone(model),
        ServerConfig {
            workers: cfg.workers,
            // Generous server-side deadline: recovery latency is measured
            // separately; deadline misses are not this bench's subject.
            deadline: Duration::from_millis(500),
            max_restarts: 64,
            process_faults: faults,
            ..ServerConfig::default()
        },
    )
    .expect("spawn recovery bench server");
    let addr = handle.addr();

    let mut replies: BTreeMap<u64, Vec<Vec<u32>>> = BTreeMap::new();
    let record = |replies: &mut BTreeMap<u64, Vec<Vec<u32>>>, seq: u64, series: Vec<Vec<u32>>| {
        if let Some(prev) = replies.insert(seq, series) {
            assert_eq!(
                Some(&prev),
                replies.get(&seq),
                "duplicate reply for seq {seq} diverged"
            );
        }
    };

    let (mut tx, mut rx) = connect(addr);
    write_frame(&mut tx, &hello_frame(port, queues, cfg, None)).expect("hello");
    let token = match rx.read_frame().expect("welcome") {
        Frame::Welcome { resume_token, .. } => resume_token.expect("resumable server"),
        other => panic!("expected Welcome, got {other:?}"),
    };

    let cut = if kill_connection {
        updates.len() / 2
    } else {
        usize::MAX
    };
    let mut last_read = 0u64;
    let mut idx = 0usize;
    while idx < updates.len() {
        let seq = idx as u64 + 1;
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update: updates[idx].clone(),
                trace_id: None,
            },
        )
        .expect("send interval");
        idx += 1;
        if idx == cut {
            // Vanish with this seq's reply unread; the server parks the
            // session and the token brings it back.
            drop(tx);
            drop(rx);
            let (mut tx2, mut rx2) = connect(addr);
            write_frame(
                &mut tx2,
                &hello_frame(port, queues, cfg, Some((&token, last_read))),
            )
            .expect("resume hello");
            let resume_seq = match rx2.read_frame().expect("resume welcome") {
                Frame::Welcome {
                    resumed,
                    resume_seq,
                    ..
                } => {
                    assert_eq!(resumed, Some(true), "mid-stream resume must succeed");
                    resume_seq.expect("resumed welcome carries the watermark")
                }
                other => panic!("expected Welcome, got {other:?}"),
            };
            assert!(
                resume_seq >= seq,
                "watermark must cover the drained in-flight seq"
            );
            // Replayed frames cover (last_read, resume_seq], in order.
            for expect in last_read + 1..=resume_seq {
                match rx2.read_frame().expect("replayed frame") {
                    Frame::Ack { seq: s, .. } => assert_eq!(s, expect),
                    Frame::Imputed { seq: s, series, .. } => {
                        assert_eq!(s, expect);
                        record(&mut replies, s, series);
                    }
                    other => panic!("unexpected replay {other:?}"),
                }
            }
            last_read = resume_seq;
            idx = resume_seq as usize;
            tx = tx2;
            rx = rx2;
            continue;
        }
        match rx.read_frame().expect("reply") {
            Frame::Ack { seq: s, .. } => assert_eq!(s, seq),
            Frame::Imputed { seq: s, series, .. } => {
                assert_eq!(s, seq);
                record(&mut replies, s, series);
            }
            other => panic!("unexpected reply {other:?}"),
        }
        last_read = seq;
    }
    write_frame(&mut tx, &Frame::Bye).expect("bye");
    match rx.read_frame().expect("byeack") {
        Frame::ByeAck { remaining, .. } => assert_eq!(remaining, 0, "drain timed out"),
        other => panic!("expected ByeAck, got {other:?}"),
    }

    let (worker_panics, worker_restarts) = handle.worker_stats();
    let (resumes, replayed) = handle.resume_stats();
    let requeue_latencies_us = handle.requeue_latencies();
    let violations = match handle.shutdown() {
        Frame::StatsReply { violations, .. } => violations,
        other => panic!("expected StatsReply, got {other:?}"),
    };
    PassOutcome {
        replies,
        worker_panics,
        worker_restarts,
        resumes,
        replayed,
        requeue_latencies_us,
        violations,
    }
}

fn fingerprint(replies: &BTreeMap<u64, Vec<Vec<u32>>>) -> u64 {
    // Order-sensitive: flatten in seq order; per-series hashing keeps
    // shape boundaries from colliding.
    let flat: Vec<Vec<u32>> = replies
        .values()
        .flat_map(|series| series.iter().cloned())
        .collect();
    hash_u32_series(&flat)
}

fn pct(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        0
    } else {
        sorted[((sorted.len() - 1) as f64 * q) as usize]
    }
}

/// Run the full recovery benchmark; panics on contract violations so CI
/// fails loud.
pub fn bench_recovery(
    model: Arc<TransformerImputer>,
    cfg: &RecoveryBenchConfig,
) -> RecoveryBenchReport {
    assert!(
        cfg.worker_panic_every != 1,
        "worker_panic_every = 1 poisons every retry by construction"
    );
    let (updates, port, queues) = stream(cfg);
    let enforced = updates.len() - (cfg.window_intervals - 1);

    // Pass 1: ground truth.
    let clean = lockstep_pass(
        &model,
        cfg,
        &updates,
        port,
        queues,
        ProcessFaultPlan::none(),
        false,
    );
    assert_eq!(clean.replies.len(), enforced, "clean pass dropped replies");
    assert_eq!(clean.violations, 0, "clean pass shipped violations");
    assert_eq!(clean.worker_panics, 0);

    // Pass 2: worker panics + solver stalls + slow writes + a killed
    // connection, resumed. Same replies, bit for bit.
    let crash = lockstep_pass(&model, cfg, &updates, port, queues, cfg.faults(), true);
    assert_eq!(
        crash.replies.len(),
        enforced,
        "crash pass must answer every enforced interval exactly once"
    );
    assert_eq!(crash.violations, 0, "crash pass shipped violations");
    assert!(crash.worker_panics >= 1, "panic cadence never fired");
    assert!(crash.worker_restarts >= 1, "supervisor never restarted");
    assert_eq!(crash.resumes, 1, "the killed connection must resume");
    let clean_fp = fingerprint(&clean.replies);
    let crash_fp = fingerprint(&crash.replies);
    assert_eq!(
        clean_fp, crash_fp,
        "recovered run diverged from the uninterrupted run"
    );

    let mut rec = crash.requeue_latencies_us.clone();
    rec.sort_unstable();

    // Pass 3: the chaos swarm with resumption — nothing lost, nothing
    // unsent, no client thread down.
    let handle = fmml_serve::spawn(
        Arc::clone(&model),
        ServerConfig {
            workers: cfg.workers,
            deadline: cfg.deadline,
            max_restarts: 64,
            process_faults: cfg.faults(),
            ..ServerConfig::default()
        },
    )
    .expect("spawn chaos server");
    let lg = LoadgenConfig {
        addr: handle.addr().to_string(),
        clients: cfg.chaos_clients,
        intervals: cfg.chaos_intervals,
        interval_len: cfg.interval_len,
        window_intervals: cfg.window_intervals,
        sim: SimConfig::small(),
        sim_ms: 480,
        distinct_traces: 2.min(cfg.chaos_clients.max(1)),
        seed: cfg.seed,
        deadline: cfg.deadline,
        pace: Some(cfg.deadline / 2),
        chaos: Some(ChaosConfig::standard()),
        tenant_prefix: "recovery".into(),
        wire: WireCodec::Json,
    };
    let chaos = loadgen::run(&lg);
    let (_, chaos_restarts) = handle.worker_stats();
    let chaos_violations = match handle.shutdown() {
        Frame::StatsReply { violations, .. } => violations,
        other => panic!("expected StatsReply, got {other:?}"),
    };
    assert_eq!(chaos.lost, 0, "chaos swarm lost replies: {chaos:?}");
    assert_eq!(chaos.unsent, 0, "chaos swarm gave up sending: {chaos:?}");
    assert_eq!(chaos.client_failures, 0, "chaos swarm client panicked");
    assert_eq!(chaos_violations, 0, "chaos swarm shipped violations");

    RecoveryBenchReport {
        intervals: updates.len(),
        enforced,
        deadline_ms: cfg.deadline.as_millis() as u64,
        clean_fingerprint: clean_fp,
        crash_fingerprint: crash_fp,
        fingerprint_match: clean_fp == crash_fp,
        worker_panics: crash.worker_panics,
        worker_restarts: crash.worker_restarts,
        resumes: crash.resumes,
        replayed: crash.replayed,
        availability: crash.replies.len() as f64 / enforced as f64,
        recovery_samples: rec.len(),
        recovery_p50_us: pct(&rec, 0.50),
        recovery_p99_us: pct(&rec, 0.99),
        recovery_max_us: rec.last().copied().unwrap_or(0),
        crash_violations: crash.violations,
        chaos_clients: cfg.chaos_clients,
        chaos_sent: chaos.sent,
        chaos_answered: chaos.answered,
        chaos_lost: chaos.lost,
        chaos_unsent: chaos.unsent,
        chaos_resumes: chaos.resumes,
        chaos_duplicates: chaos.duplicates,
        chaos_reconnects: chaos.reconnects,
        chaos_client_failures: chaos.client_failures,
        chaos_violations,
        chaos_worker_restarts: chaos_restarts,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_core::transformer_imputer::Scales;

    #[test]
    fn tiny_recovery_bench_runs_and_serializes() {
        let model = Arc::new(TransformerImputer::new(
            3,
            Scales {
                qlen: SimConfig::small().buffer_packets as f32,
                count: 830.0,
            },
        ));
        let cfg = RecoveryBenchConfig {
            intervals: 12,
            worker_panic_every: 4,
            chaos_clients: 2,
            chaos_intervals: 10,
            deadline: Duration::from_millis(200),
            ..RecoveryBenchConfig::default()
        };
        let report = bench_recovery(model, &cfg);
        assert!(report.fingerprint_match);
        assert!(report.worker_restarts >= 1);
        let j = report.to_json();
        assert!(j.contains("\"fingerprint_match\":1"));
        assert!(j.contains("\"chaos_lost\":0"));
    }
}
