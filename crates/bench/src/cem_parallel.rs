//! The sequential-vs-parallel CEM enforcement benchmark behind
//! `BENCH_cem_parallel.json`.
//!
//! [`bench_ladder`] runs the *same* batch of `(constraints, prediction)`
//! items three times through [`fmml_fm::cem`]:
//!
//! 1. **reference** — sequential, uncached (`jobs = 1`, no cache): the
//!    historical code path and the ground truth for the equivalence
//!    check;
//! 2. **tuned, cold** — `jobs` workers sharing a fresh
//!    [`SolutionCache`]: the cold-start cost of the parallel + memoized
//!    path (hits come only from intra-batch duplicate intervals);
//! 3. **tuned, steady** — the same batch again with the now-warm cache:
//!    the steady-state regime of the paper's always-on 50 ms inference
//!    loop, where recurring interval problems are answered from memory.
//!
//! It then asserts all three runs' corrected windows and per-interval
//! degradation levels hash identically (FNV-1a over a length-prefixed
//! encoding — any divergence is a bug, not a tolerance question) and
//! emits a [`CemParallelReport`] with the wall-clocks, both speedups,
//! and the cache hit statistics of each tuned pass. CI consumes the
//! JSON via its asserts: `identical == true`, `cache_hits > 0`,
//! `violations == 0` (the last from the caller), and — on multi-core
//! runners — a floor on `speedup`.

use fmml_fm::cem::{
    self, enforce_degraded_batch, EnforceOptions, LadderConfig, LadderOutcome, SolutionCache,
};
use fmml_fm::WindowConstraints;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// One `BENCH_cem_parallel.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct CemParallelReport {
    /// Worker threads of the tuned run.
    pub jobs: usize,
    pub windows: usize,
    pub intervals: usize,
    /// Wall-clock of the sequential, uncached reference pass.
    pub sequential_ns: u64,
    /// Wall-clock of the parallel, cold-cache pass.
    pub parallel_ns: u64,
    /// Wall-clock of the parallel, warm-cache (steady-state) pass.
    pub steady_ns: u64,
    /// `sequential_ns / parallel_ns` — the cold-start speedup (≥ 1.0
    /// when the tuned path wins; needs real cores and/or intra-batch
    /// duplicate intervals).
    pub speedup: f64,
    /// `sequential_ns / steady_ns` — the steady-state speedup, where
    /// every recurring interval problem is a cache hit.
    pub steady_speedup: f64,
    /// Hits of the cold pass (intra-batch duplicates only).
    pub cache_hits: u64,
    pub cache_misses: u64,
    pub cache_evictions: u64,
    /// Hits over lookups in the cold pass.
    pub cache_hit_rate: f64,
    /// Hits over lookups in the steady (warm) pass.
    pub steady_hit_rate: f64,
    /// Solver time the hits skipped across both tuned passes, in ns.
    pub cache_saved_ns: u64,
    /// FNV-1a fingerprint of the reference outputs (corrected series +
    /// degradation levels, all windows).
    pub sequential_hash: u64,
    /// Same fingerprint for the cold tuned outputs.
    pub parallel_hash: u64,
    /// Same fingerprint for the steady tuned outputs.
    pub steady_hash: u64,
    /// All three fingerprints agree — the determinism contract.
    pub identical: bool,
}

impl CemParallelReport {
    /// Deterministic JSON (fixed key order).
    pub fn to_json(&self) -> String {
        let mut v = serde_json::Value::Object(Vec::new());
        v["bench"] = serde_json::Value::String("cem_parallel".into());
        v["jobs"] = serde_json::Value::U64(self.jobs as u64);
        v["windows"] = serde_json::Value::U64(self.windows as u64);
        v["intervals"] = serde_json::Value::U64(self.intervals as u64);
        v["sequential_ns"] = serde_json::Value::U64(self.sequential_ns);
        v["parallel_ns"] = serde_json::Value::U64(self.parallel_ns);
        v["steady_ns"] = serde_json::Value::U64(self.steady_ns);
        v["speedup"] = serde_json::Value::F64(self.speedup);
        v["steady_speedup"] = serde_json::Value::F64(self.steady_speedup);
        v["cache_hits"] = serde_json::Value::U64(self.cache_hits);
        v["cache_misses"] = serde_json::Value::U64(self.cache_misses);
        v["cache_evictions"] = serde_json::Value::U64(self.cache_evictions);
        v["cache_hit_rate"] = serde_json::Value::F64(self.cache_hit_rate);
        v["steady_hit_rate"] = serde_json::Value::F64(self.steady_hit_rate);
        v["cache_saved_ns"] = serde_json::Value::U64(self.cache_saved_ns);
        v["sequential_hash"] = serde_json::Value::String(format!("{:016x}", self.sequential_hash));
        v["parallel_hash"] = serde_json::Value::String(format!("{:016x}", self.parallel_hash));
        v["steady_hash"] = serde_json::Value::String(format!("{:016x}", self.steady_hash));
        v["identical"] = serde_json::Value::Bool(self.identical);
        v.to_string()
    }

    /// Write `BENCH_cem_parallel.json` into `dir`; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_cem_parallel.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// `seq=… par=… speedup=… steady=… …x hit_rate=… identical=…` line.
    pub fn summary(&self) -> String {
        format!(
            "seq={:.2}ms par={:.2}ms speedup={:.2}x steady={:.2}ms \
             steady_speedup={:.2}x hit_rate={:.1}% identical={}",
            self.sequential_ns as f64 / 1e6,
            self.parallel_ns as f64 / 1e6,
            self.speedup,
            self.steady_ns as f64 / 1e6,
            self.steady_speedup,
            self.cache_hit_rate * 100.0,
            self.identical,
        )
    }
}

/// Fingerprint a batch of ladder outcomes: corrected series plus the
/// per-interval degradation levels (levels are encoded as a `u32` series
/// so a rung change is as loud as a value change).
pub fn hash_outcomes(outs: &[LadderOutcome]) -> u64 {
    let mut series: Vec<Vec<u32>> = Vec::new();
    for out in outs {
        series.extend(out.corrected.iter().cloned());
        series.push(out.levels.iter().map(|l| *l as u32).collect());
        series.push(vec![
            (out.objective >> 32) as u32,
            out.objective as u32,
            u32::from(out.relaxed.is_some()),
        ]);
    }
    cem::hash_u32_series(&series)
}

/// Run the three passes and build the report. Returns the **reference**
/// outcomes (callers verify constraints against those — all passes are
/// asserted identical anyway) plus the report.
pub fn bench_ladder(
    items: &[(WindowConstraints, Vec<Vec<f32>>)],
    cfg: &LadderConfig,
    jobs: usize,
    use_cache: bool,
) -> (Vec<LadderOutcome>, CemParallelReport) {
    // Reference: sequential, uncached.
    let t0 = Instant::now();
    let reference = enforce_degraded_batch(items, cfg, &EnforceOptions::default());
    let sequential_ns = t0.elapsed().as_nanos() as u64;

    // Tuned, cold: `jobs` workers, shared fresh cache.
    let cache = SolutionCache::new(cem::cache::DEFAULT_CAPACITY);
    let opts = EnforceOptions::new(jobs, use_cache.then_some(&cache));
    let t1 = Instant::now();
    let tuned = enforce_degraded_batch(items, cfg, &opts);
    let parallel_ns = t1.elapsed().as_nanos() as u64;
    let cold = cache.stats();

    // Tuned, steady: same batch, now-warm cache — every recurring
    // problem resolves from memory, as in the always-on inference loop.
    let t2 = Instant::now();
    let steady = enforce_degraded_batch(items, cfg, &opts);
    let steady_ns = t2.elapsed().as_nanos() as u64;
    let total = cache.stats();

    let sequential_hash = hash_outcomes(&reference);
    let parallel_hash = hash_outcomes(&tuned);
    let steady_hash = hash_outcomes(&steady);
    let steady_lookups = (total.hits - cold.hits) + (total.misses - cold.misses);
    let report = CemParallelReport {
        jobs,
        windows: items.len(),
        intervals: reference.iter().map(|o| o.levels.len()).sum(),
        sequential_ns,
        parallel_ns,
        steady_ns,
        speedup: sequential_ns as f64 / (parallel_ns.max(1)) as f64,
        steady_speedup: sequential_ns as f64 / (steady_ns.max(1)) as f64,
        cache_hits: cold.hits,
        cache_misses: cold.misses,
        cache_evictions: total.evictions,
        cache_hit_rate: cold.hit_rate(),
        steady_hit_rate: (total.hits - cold.hits) as f64 / (steady_lookups.max(1)) as f64,
        cache_saved_ns: total.saved_ns,
        sequential_hash,
        parallel_hash,
        steady_hash,
        identical: sequential_hash == parallel_hash && sequential_hash == steady_hash,
    };
    (reference, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper_windows;
    use fmml_fm::cem::DegradationLevel;

    fn items() -> Vec<(WindowConstraints, Vec<Vec<f32>>)> {
        paper_windows(350, 5)
            .iter()
            .map(|w| {
                let wc = WindowConstraints::from_window(w);
                let pred: Vec<Vec<f32>> = w
                    .truth
                    .iter()
                    .map(|q| q.iter().map(|&v| v * 1.3 + 0.4).collect())
                    .collect();
                (wc, pred)
            })
            .collect()
    }

    #[test]
    fn bench_ladder_is_equivalent_and_reports_hits() {
        let items = items();
        assert!(!items.is_empty());
        let (outs, report) = bench_ladder(&items, &LadderConfig::default(), 2, true);
        assert!(report.identical, "parallel/cached output diverged");
        assert_eq!(report.windows, items.len());
        assert_eq!(outs.len(), items.len());
        assert!(report.intervals > 0);
        assert_eq!(
            report.cache_hits + report.cache_misses,
            report.intervals as u64,
            "every interval is exactly one lookup"
        );
        assert!(
            report.steady_hit_rate >= report.cache_hit_rate,
            "warm pass should hit at least as often as the cold pass: {} < {}",
            report.steady_hit_rate,
            report.cache_hit_rate
        );
        assert_eq!(report.steady_hash, report.sequential_hash);
        for (out, (wc, _)) in outs.iter().zip(&items) {
            assert!(out
                .effective_constraints(wc)
                .satisfied_exact(&out.corrected));
        }
        // Real windows stay at full fidelity.
        assert!(outs
            .iter()
            .flat_map(|o| &o.levels)
            .all(|&l| l == DegradationLevel::Full));
    }

    #[test]
    fn report_json_has_the_ci_asserted_fields() {
        let report = CemParallelReport {
            jobs: 4,
            windows: 2,
            intervals: 12,
            sequential_ns: 2_000_000,
            parallel_ns: 500_000,
            steady_ns: 250_000,
            speedup: 4.0,
            steady_speedup: 8.0,
            cache_hits: 7,
            cache_misses: 5,
            cache_evictions: 0,
            cache_hit_rate: 7.0 / 12.0,
            steady_hit_rate: 1.0,
            cache_saved_ns: 123,
            sequential_hash: 0xdead_beef,
            parallel_hash: 0xdead_beef,
            steady_hash: 0xdead_beef,
            identical: true,
        };
        let j = report.to_json();
        assert!(j.contains("\"bench\":\"cem_parallel\""), "{j}");
        assert!(j.contains("\"identical\":true"), "{j}");
        assert!(j.contains("\"cache_hits\":7"), "{j}");
        assert!(j.contains("\"speedup\":4"), "{j}");
        assert!(j.contains("\"steady_speedup\":8"), "{j}");
        assert!(
            j.contains("\"sequential_hash\":\"00000000deadbeef\""),
            "{j}"
        );
        assert!(
            report.summary().contains("speedup=4.00x"),
            "{}",
            report.summary()
        );
    }
}
