//! The cluster benchmark behind `BENCH_cluster.json`: sharded serving
//! through the `fmml-cluster` router vs a single direct node.
//!
//! Three passes, all over real loopback TCP:
//!
//! 1. **direct** — one 1-worker serve node driven by the trace-replay
//!    load generator, unpaced (capacity, not wire rate).
//! 2. **cluster** — the same load through 1 router + N 1-worker
//!    backends. On a multi-core box the shards process windows
//!    concurrently, so throughput should scale toward N× despite the
//!    extra hop (CI gates `speedup >= 1.8` with 3 backends on the
//!    4-core runner; a 1-core box serializes the shards and only shows
//!    the router's overhead — see the `cores` field).
//! 3. **kill** — a paced chaos pass that shuts one of the backends down
//!    mid-run, plus a single surgically-timed session whose host
//!    backend is killed between two intervals. Both must lose zero
//!    intervals (exactly-once across migration is asserted, not
//!    sampled), and the timed pass reports `recovery_ms`: client-visible
//!    stall between the kill and the next committed reply.
//!
//! Like the other bench reports the JSON is flat so CI can grep single
//! fields, and a written report is itself proof the survival contract
//! held — `bench_cluster` panics on any lost interval or violation.

use fmml_cluster::{RouterConfig, RouterHandle};
use fmml_core::streaming::IntervalUpdate;
use fmml_core::transformer_imputer::TransformerImputer;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_serve::protocol::{write_frame, Frame, FrameReader};
use fmml_serve::{
    loadgen, LoadReport, LoadgenConfig, ServerConfig, ServerHandle, TcpConnector, WireCodec,
};
use fmml_telemetry::{windows_from_trace, PortWindow};
use std::io::Write as _;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Benchmark knobs.
#[derive(Debug, Clone)]
pub struct ClusterBenchConfig {
    /// Concurrent load-generator clients per pass.
    pub clients: usize,
    pub intervals_per_client: usize,
    /// Backend serve nodes behind the router (the direct pass always
    /// uses exactly one node of the same shape).
    pub backends: usize,
    pub interval_len: usize,
    pub window_intervals: usize,
    pub deadline: Duration,
    pub seed: u64,
}

impl Default for ClusterBenchConfig {
    fn default() -> ClusterBenchConfig {
        ClusterBenchConfig {
            clients: 8,
            intervals_per_client: 40,
            backends: 3,
            interval_len: 10,
            window_intervals: 3,
            deadline: Duration::from_millis(50),
            seed: 41,
        }
    }
}

/// One throughput point (direct or cluster).
#[derive(Debug, Clone)]
pub struct ClusterPoint {
    pub answered: u64,
    pub lost: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub throughput_rps: f64,
}

impl ClusterPoint {
    fn from_report(r: &LoadReport) -> ClusterPoint {
        ClusterPoint {
            answered: r.answered,
            lost: r.lost,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            throughput_rps: r.throughput_rps,
        }
    }
}

/// One `BENCH_cluster.json` payload.
#[derive(Debug, Clone)]
pub struct ClusterBenchReport {
    /// Host parallelism when the numbers were taken: the speedup gate
    /// only means anything with `cores > backends`.
    pub cores: usize,
    pub backends: usize,
    pub clients: usize,
    pub intervals_per_client: usize,
    pub deadline_ms: u64,
    pub direct: ClusterPoint,
    pub cluster: ClusterPoint,
    /// cluster throughput / direct throughput.
    pub speedup: f64,
    /// The paced chaos pass with one backend shut down mid-run.
    pub kill: ClusterPoint,
    pub kill_migrations: u64,
    pub kill_resumes: u64,
    /// Client-visible stall across a surgically-timed host kill: ms
    /// from the kill to the next committed (bitwise-checked) reply.
    pub recovery_ms: f64,
}

impl ClusterBenchReport {
    /// Deterministic, grep-friendly flat JSON.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let mut v = Value::Object(Vec::new());
        v["bench"] = Value::String("cluster".into());
        v["cores"] = Value::U64(self.cores as u64);
        v["backends"] = Value::U64(self.backends as u64);
        v["clients"] = Value::U64(self.clients as u64);
        v["intervals_per_client"] = Value::U64(self.intervals_per_client as u64);
        v["deadline_ms"] = Value::U64(self.deadline_ms);
        for (name, p) in [
            ("direct", &self.direct),
            ("cluster", &self.cluster),
            ("kill", &self.kill),
        ] {
            v[format!("{name}_answered").as_str()] = Value::U64(p.answered);
            v[format!("{name}_lost").as_str()] = Value::U64(p.lost);
            v[format!("{name}_p50_us").as_str()] = Value::U64(p.p50_us);
            v[format!("{name}_p99_us").as_str()] = Value::U64(p.p99_us);
            v[format!("{name}_throughput_rps").as_str()] = Value::F64(p.throughput_rps);
        }
        v["speedup"] = Value::F64(self.speedup);
        v["kill_migrations"] = Value::U64(self.kill_migrations);
        v["kill_resumes"] = Value::U64(self.kill_resumes);
        v["recovery_ms"] = Value::F64(self.recovery_ms);
        v.to_string()
    }

    /// Write `BENCH_cluster.json` into `dir`; returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_cluster.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// Stderr progress lines.
    pub fn summary(&self) -> String {
        format!(
            "direct   answered={:<5} p99={}us {:.0} rps\n\
             cluster  answered={:<5} p99={}us {:.0} rps  ({:.2}x, {} backends, {} cores)\n\
             kill     answered={:<5} lost={} migrations={} recovery={:.1}ms\n",
            self.direct.answered,
            self.direct.p99_us,
            self.direct.throughput_rps,
            self.cluster.answered,
            self.cluster.p99_us,
            self.cluster.throughput_rps,
            self.speedup,
            self.backends,
            self.cores,
            self.kill.answered,
            self.kill.lost,
            self.kill_migrations,
            self.recovery_ms,
        )
    }
}

fn backend_cfg(bc: &ClusterBenchConfig) -> ServerConfig {
    ServerConfig {
        // One worker per node: the cluster's parallelism comes from the
        // shards, so the direct-vs-cluster comparison is node-for-node.
        workers: 1,
        jobs: 1,
        deadline: bc.deadline,
        ..ServerConfig::default()
    }
}

fn loadgen_cfg(bc: &ClusterBenchConfig, addr: String, pace: Option<Duration>) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        clients: bc.clients,
        intervals: bc.intervals_per_client,
        interval_len: bc.interval_len,
        window_intervals: bc.window_intervals,
        sim: SimConfig::small(),
        sim_ms: 480,
        distinct_traces: 4.min(bc.clients.max(1)),
        seed: bc.seed,
        deadline: bc.deadline,
        pace,
        chaos: None,
        tenant_prefix: "cbench".into(),
        wire: WireCodec::Json,
    }
}

struct Cluster {
    router: RouterHandle,
    backends: Vec<ServerHandle>,
}

fn spawn_cluster(model: &Arc<TransformerImputer>, bc: &ClusterBenchConfig, n: usize) -> Cluster {
    let router = fmml_cluster::spawn(RouterConfig {
        probe_interval: Duration::from_millis(50),
        probe_failures: 2,
        dial_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("spawn bench router");
    let backends: Vec<ServerHandle> = (0..n)
        .map(|_| fmml_serve::spawn(Arc::clone(model), backend_cfg(bc)).expect("spawn backend"))
        .collect();
    for (k, b) in backends.iter().enumerate() {
        router.add_backend(
            &format!("b{k}"),
            TcpConnector {
                addr: b.addr().to_string(),
            },
        );
    }
    Cluster { router, backends }
}

/// Pass 1: one direct node, unpaced.
fn direct_point(model: &Arc<TransformerImputer>, bc: &ClusterBenchConfig) -> LoadReport {
    let handle = fmml_serve::spawn(Arc::clone(model), backend_cfg(bc)).expect("spawn direct node");
    let report = loadgen::run(&loadgen_cfg(bc, handle.addr().to_string(), None));
    handle.shutdown();
    report
}

/// Pass 2: router + N backends, unpaced.
fn cluster_point(model: &Arc<TransformerImputer>, bc: &ClusterBenchConfig) -> LoadReport {
    let c = spawn_cluster(model, bc, bc.backends);
    let report = loadgen::run(&loadgen_cfg(bc, c.router.addr().to_string(), None));
    c.router.shutdown();
    for b in c.backends {
        b.shutdown();
    }
    report
}

/// Pass 3a: paced load with one backend shut down mid-run. The clients
/// talk only to the router and must not notice.
fn kill_point(model: &Arc<TransformerImputer>, bc: &ClusterBenchConfig) -> (LoadReport, u64, u64) {
    let mut c = spawn_cluster(model, bc, bc.backends);
    let victim = c.backends.remove(0);
    let killer = std::thread::spawn(move || {
        // Paced run length is intervals * pace; strike inside it.
        std::thread::sleep(Duration::from_millis(150));
        victim.shutdown();
    });
    let report = loadgen::run(&loadgen_cfg(
        bc,
        c.router.addr().to_string(),
        Some(Duration::from_millis(10)),
    ));
    killer.join().expect("killer thread");
    let (migrations, resumes, _replayed) = c.router.cluster_stats();
    c.router.shutdown();
    for b in c.backends {
        b.shutdown();
    }
    (report, migrations, resumes)
}

fn bench_window(bc: &ClusterBenchConfig) -> PortWindow {
    let cfg = SimConfig::small();
    let gt = Simulation::new(
        cfg.clone(),
        TrafficConfig::websearch_incast(cfg.num_ports, 0.6),
        bc.seed,
    )
    .run_ms(360);
    let span = bc.interval_len * bc.window_intervals * 4;
    windows_from_trace(&gt, span, bc.interval_len, span)
        .into_iter()
        .find(|w| w.has_activity())
        .expect("an active window")
}

/// Pass 3b: the surgically-timed kill. One session on a known host
/// ("a", the only backend), a second node joins, the host dies between
/// two intervals, and we time the stall until the next reply commits.
/// Exactly-once is asserted through the final `ByeAck` accounting.
fn timed_recovery(model: &Arc<TransformerImputer>, bc: &ClusterBenchConfig) -> f64 {
    let w = bench_window(bc);
    let router = fmml_cluster::spawn(RouterConfig {
        probe_interval: Duration::from_millis(50),
        probe_failures: 2,
        dial_timeout: Duration::from_millis(500),
        ..RouterConfig::default()
    })
    .expect("spawn recovery router");
    let a = fmml_serve::spawn(Arc::clone(model), backend_cfg(bc)).expect("spawn backend a");
    router.add_backend(
        "a",
        TcpConnector {
            addr: a.addr().to_string(),
        },
    );

    let stream = TcpStream::connect(router.addr()).expect("connect");
    stream.set_nodelay(true).unwrap();
    let mut tx = stream.try_clone().unwrap();
    let mut rx = FrameReader::new(stream);
    write_frame(
        &mut tx,
        &Frame::Hello {
            tenant: "cbench".into(),
            ports: vec![w.port],
            queues: w.num_queues(),
            interval_len: bc.interval_len,
            window_intervals: bc.window_intervals,
            resume_token: None,
            last_acked: None,
            codecs: None,
        },
    )
    .unwrap();
    assert!(matches!(rx.read_frame().unwrap(), Frame::Welcome { .. }));

    let total = w.intervals().min(8);
    let split = total / 2;
    let mut send_one = |seq: u64, k: usize, rx: &mut FrameReader<TcpStream>| {
        let update = IntervalUpdate::from_window(&w, k);
        write_frame(
            &mut tx,
            &Frame::Interval {
                seq,
                update,
                trace_id: None,
            },
        )
        .unwrap();
        match rx.read_frame().unwrap() {
            Frame::Ack { seq: s, .. } | Frame::Imputed { seq: s, .. } => assert_eq!(s, seq),
            other => panic!("unexpected {other:?}"),
        }
    };
    for (k, seq) in (0..split).zip(1u64..) {
        send_one(seq, k, &mut rx);
    }

    let b = fmml_serve::spawn(Arc::clone(model), backend_cfg(bc)).expect("spawn backend b");
    router.add_backend(
        "b",
        TcpConnector {
            addr: b.addr().to_string(),
        },
    );
    a.shutdown();
    let t0 = Instant::now();
    send_one(split as u64 + 1, split, &mut rx);
    let recovery = t0.elapsed();
    for (k, seq) in (split + 1..total).zip(split as u64 + 2..) {
        send_one(seq, k, &mut rx);
    }
    write_frame(&mut tx, &Frame::Bye).unwrap();
    match rx.read_frame().unwrap() {
        Frame::ByeAck {
            answered,
            remaining,
        } => {
            assert_eq!(answered, total as u64, "kill lost an interval");
            assert_eq!(remaining, 0);
        }
        other => panic!("expected ByeAck, got {other:?}"),
    }
    let (migrations, _, _) = router.cluster_stats();
    assert!(migrations >= 1, "the timed kill must force a migration");
    router.shutdown();
    b.shutdown();
    recovery.as_secs_f64() * 1e3
}

/// Run the full cluster benchmark; panics on any lost interval or
/// shipped violation so CI fails loud.
pub fn bench_cluster(
    model: Arc<TransformerImputer>,
    bc: &ClusterBenchConfig,
) -> ClusterBenchReport {
    let direct = direct_point(&model, bc);
    assert_eq!(direct.lost, 0, "direct pass lost replies");
    assert_eq!(direct.server_violations, 0);
    let cluster = cluster_point(&model, bc);
    assert_eq!(cluster.lost, 0, "cluster pass lost replies");
    let (kill, kill_migrations, kill_resumes) = kill_point(&model, bc);
    assert_eq!(kill.lost, 0, "backend kill lost client intervals");
    assert_eq!(kill.unknown_levels, 0);
    let recovery_ms = timed_recovery(&model, bc);
    let speedup = if direct.throughput_rps > 0.0 {
        cluster.throughput_rps / direct.throughput_rps
    } else {
        0.0
    };
    ClusterBenchReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        backends: bc.backends,
        clients: bc.clients,
        intervals_per_client: bc.intervals_per_client,
        deadline_ms: bc.deadline.as_millis() as u64,
        direct: ClusterPoint::from_report(&direct),
        cluster: ClusterPoint::from_report(&cluster),
        speedup,
        kill: ClusterPoint::from_report(&kill),
        kill_migrations,
        kill_resumes,
        recovery_ms,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_core::transformer_imputer::Scales;

    #[test]
    fn tiny_cluster_bench_runs_and_serializes() {
        let model = Arc::new(TransformerImputer::new(
            3,
            Scales {
                qlen: SimConfig::small().buffer_packets as f32,
                count: 830.0,
            },
        ));
        let bc = ClusterBenchConfig {
            clients: 2,
            intervals_per_client: 8,
            backends: 2,
            deadline: Duration::from_millis(200),
            ..ClusterBenchConfig::default()
        };
        let report = bench_cluster(model, &bc);
        let j = report.to_json();
        assert!(j.contains("\"cluster_throughput_rps\""));
        assert!(j.contains("\"kill_lost\":0"));
        assert!(j.contains("\"cores\""));
        assert!(report.recovery_ms > 0.0);
    }
}
