//! The loopback serving benchmark behind `BENCH_serve.json`.
//!
//! [`bench_serve`] spawns a real `fmml-serve` server on loopback and
//! drives it with the trace-replay load generator at increasing
//! concurrency (1 / 8 / 32 clients by default), each client paced at the
//! wire rate (one interval per 50 ms period). Per concurrency point it
//! records throughput, end-to-end latency percentiles (send→`Imputed`),
//! and the deadline-miss rate; a final pass re-runs the 8-client point
//! under the standard chaos preset and asserts the survival contract
//! (zero violations, zero unknown levels).
//!
//! The JSON layout is flat per point
//! (`clients{N}_p99_us`, `clients{N}_deadline_miss_rate`, …) so CI can
//! grep single fields without a JSON parser.

use fmml_core::transformer_imputer::TransformerImputer;
use fmml_serve::protocol::Frame;
use fmml_serve::{loadgen, ChaosConfig, LoadReport, LoadgenConfig, ServerConfig, WireCodec};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::Duration;

/// One concurrency point of the serving benchmark.
#[derive(Debug, Clone)]
pub struct ServePoint {
    pub clients: usize,
    pub sent: u64,
    pub answered: u64,
    pub rejected: u64,
    pub p50_us: u64,
    pub p99_us: u64,
    pub p999_us: u64,
    pub max_us: u64,
    pub deadline_miss: u64,
    pub deadline_miss_rate: f64,
    pub throughput_rps: f64,
    pub wire_rate_x: f64,
    pub server_batches: u64,
    pub server_violations: u64,
}

impl ServePoint {
    fn from_report(r: &LoadReport) -> ServePoint {
        ServePoint {
            clients: r.clients,
            sent: r.sent,
            answered: r.answered,
            rejected: r.rejected,
            p50_us: r.p50_us,
            p99_us: r.p99_us,
            p999_us: r.p999_us,
            max_us: r.max_us,
            deadline_miss: r.deadline_miss,
            deadline_miss_rate: r.deadline_miss_rate,
            throughput_rps: r.throughput_rps,
            wire_rate_x: r.wire_rate_x,
            server_batches: r.server_batches,
            server_violations: r.server_violations,
        }
    }
}

/// One `BENCH_serve.json` payload.
#[derive(Debug, Clone)]
pub struct ServeBenchReport {
    pub deadline_ms: u64,
    pub interval_len: usize,
    pub window_intervals: usize,
    pub intervals_per_client: usize,
    pub workers: usize,
    /// Clean (no-chaos), wire-rate-paced points.
    pub points: Vec<ServePoint>,
    /// The chaos re-run of the middle concurrency point.
    pub chaos: ServePoint,
    pub chaos_reconnects: u64,
    pub chaos_malformed_rejects: u64,
    pub chaos_unknown_levels: u64,
}

impl ServeBenchReport {
    /// Deterministic, grep-friendly flat JSON.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let mut v = Value::Object(Vec::new());
        v["bench"] = Value::String("serve".into());
        v["deadline_ms"] = Value::U64(self.deadline_ms);
        v["interval_len"] = Value::U64(self.interval_len as u64);
        v["window_intervals"] = Value::U64(self.window_intervals as u64);
        v["intervals_per_client"] = Value::U64(self.intervals_per_client as u64);
        v["workers"] = Value::U64(self.workers as u64);
        for p in &self.points {
            let k = |s: &str| format!("clients{}_{s}", p.clients);
            v[k("sent").as_str()] = Value::U64(p.sent);
            v[k("answered").as_str()] = Value::U64(p.answered);
            v[k("rejected").as_str()] = Value::U64(p.rejected);
            v[k("p50_us").as_str()] = Value::U64(p.p50_us);
            v[k("p99_us").as_str()] = Value::U64(p.p99_us);
            v[k("p999_us").as_str()] = Value::U64(p.p999_us);
            v[k("max_us").as_str()] = Value::U64(p.max_us);
            v[k("deadline_miss").as_str()] = Value::U64(p.deadline_miss);
            v[k("deadline_miss_rate").as_str()] = Value::F64(p.deadline_miss_rate);
            v[k("throughput_rps").as_str()] = Value::F64(p.throughput_rps);
            v[k("wire_rate_x").as_str()] = Value::F64(p.wire_rate_x);
            v[k("batches").as_str()] = Value::U64(p.server_batches);
            v[k("violations").as_str()] = Value::U64(p.server_violations);
        }
        v["chaos_clients"] = Value::U64(self.chaos.clients as u64);
        v["chaos_sent"] = Value::U64(self.chaos.sent);
        v["chaos_answered"] = Value::U64(self.chaos.answered);
        v["chaos_rejected"] = Value::U64(self.chaos.rejected);
        v["chaos_p99_us"] = Value::U64(self.chaos.p99_us);
        v["chaos_deadline_miss_rate"] = Value::F64(self.chaos.deadline_miss_rate);
        v["chaos_violations"] = Value::U64(self.chaos.server_violations);
        v["chaos_reconnects"] = Value::U64(self.chaos_reconnects);
        v["chaos_malformed_rejects"] = Value::U64(self.chaos_malformed_rejects);
        v["chaos_unknown_levels"] = Value::U64(self.chaos_unknown_levels);
        v.to_string()
    }

    /// Write `BENCH_serve.json` into `dir`; returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_serve.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// One line per point, for stderr progress.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        for p in &self.points {
            let _ = writeln!(
                s,
                "clients={:<3} answered={:<5} p50={}us p99={}us miss_rate={:.4} {:.2}x wire rate",
                p.clients, p.answered, p.p50_us, p.p99_us, p.deadline_miss_rate, p.wire_rate_x
            );
        }
        let _ = writeln!(
            s,
            "chaos(clients={}) answered={} p99={}us violations={} reconnects={}",
            self.chaos.clients,
            self.chaos.answered,
            self.chaos.p99_us,
            self.chaos.server_violations,
            self.chaos_reconnects
        );
        s
    }
}

/// Benchmark knobs.
#[derive(Debug, Clone)]
pub struct ServeBenchConfig {
    pub client_counts: Vec<usize>,
    pub intervals_per_client: usize,
    pub interval_len: usize,
    pub window_intervals: usize,
    pub deadline: Duration,
    pub workers: usize,
    pub jobs: usize,
    pub seed: u64,
}

impl Default for ServeBenchConfig {
    fn default() -> ServeBenchConfig {
        ServeBenchConfig {
            client_counts: vec![1, 8, 32],
            intervals_per_client: 40,
            interval_len: 10,
            window_intervals: 3,
            deadline: Duration::from_millis(50),
            workers: 2,
            jobs: 1,
            seed: 41,
        }
    }
}

fn loadgen_cfg(bc: &ServeBenchConfig, addr: String, clients: usize) -> LoadgenConfig {
    LoadgenConfig {
        addr,
        clients,
        intervals: bc.intervals_per_client,
        interval_len: bc.interval_len,
        window_intervals: bc.window_intervals,
        sim: fmml_netsim::SimConfig::small(),
        sim_ms: 480,
        distinct_traces: 4.min(clients.max(1)),
        seed: bc.seed,
        deadline: bc.deadline,
        // Wire rate: one coarse interval per deadline period per client.
        pace: Some(bc.deadline),
        chaos: None,
        tenant_prefix: "bench".into(),
        wire: WireCodec::Json,
    }
}

fn run_point(
    model: &Arc<TransformerImputer>,
    bc: &ServeBenchConfig,
    clients: usize,
    chaos: Option<ChaosConfig>,
) -> LoadReport {
    let handle = fmml_serve::spawn(
        Arc::clone(model),
        ServerConfig {
            workers: bc.workers,
            jobs: bc.jobs,
            deadline: bc.deadline,
            ..ServerConfig::default()
        },
    )
    .expect("spawn bench server");
    let mut cfg = loadgen_cfg(bc, handle.addr().to_string(), clients);
    cfg.chaos = chaos;
    let mut report = loadgen::run(&cfg);
    // Fold the final authoritative server counters in (the in-run probe
    // races the last batch).
    if let Frame::StatsReply {
        batches,
        violations,
        rejected,
        ..
    } = handle.shutdown()
    {
        report.server_batches = batches;
        report.server_violations = violations;
        report.server_rejected = rejected;
    }
    report
}

/// Run the full serving benchmark; panics on contract violations so CI
/// fails loud.
pub fn bench_serve(model: Arc<TransformerImputer>, bc: &ServeBenchConfig) -> ServeBenchReport {
    let mut points = Vec::new();
    for &clients in &bc.client_counts {
        let r = run_point(&model, bc, clients, None);
        assert_eq!(r.server_violations, 0, "clean run shipped violations");
        assert_eq!(r.lost, 0, "clean run lost replies: {r:?}");
        assert_eq!(r.unknown_levels, 0);
        points.push(ServePoint::from_report(&r));
    }
    // Chaos pass at the middle concurrency.
    let chaos_clients = bc.client_counts.get(1).copied().unwrap_or(8);
    let r = run_point(&model, bc, chaos_clients, Some(ChaosConfig::standard()));
    assert_eq!(r.server_violations, 0, "chaos run shipped violations");
    assert_eq!(r.unknown_levels, 0);
    ServeBenchReport {
        deadline_ms: bc.deadline.as_millis() as u64,
        interval_len: bc.interval_len,
        window_intervals: bc.window_intervals,
        intervals_per_client: bc.intervals_per_client,
        workers: bc.workers,
        points,
        chaos: ServePoint::from_report(&r),
        chaos_reconnects: r.reconnects,
        chaos_malformed_rejects: r.malformed_rejects,
        chaos_unknown_levels: r.unknown_levels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_core::transformer_imputer::Scales;

    #[test]
    fn tiny_bench_runs_and_serializes() {
        let model = Arc::new(TransformerImputer::new(
            3,
            Scales {
                qlen: fmml_netsim::SimConfig::small().buffer_packets as f32,
                count: 830.0,
            },
        ));
        let bc = ServeBenchConfig {
            client_counts: vec![1, 2],
            intervals_per_client: 8,
            deadline: Duration::from_millis(200),
            ..ServeBenchConfig::default()
        };
        let report = bench_serve(model, &bc);
        let j = report.to_json();
        assert!(j.contains("\"clients1_p99_us\""));
        assert!(j.contains("\"clients2_deadline_miss_rate\""));
        assert!(j.contains("\"chaos_violations\":0"));
        assert_eq!(report.points.len(), 2);
    }
}
