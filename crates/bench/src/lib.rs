//! # fmml-bench — shared fixtures for the Criterion benchmarks
//!
//! Each bench target regenerates one table/figure of the paper (see
//! DESIGN.md's per-experiment index). This library crate holds the
//! fixture builders they share so each bench measures only the operation
//! under test.

pub mod baseline;
pub mod cem_parallel;
pub mod cluster;
pub mod obs;
pub mod recovery;
pub mod serve;
pub mod train;
pub mod wire;

use fmml_fm::cem::IntervalProblem;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{GroundTruth, SimConfig, Simulation};
use fmml_telemetry::{windows_from_trace, PortWindow};

/// A paper-shaped trace: 8-port switch, websearch+incast at 0.5 load.
pub fn paper_trace(ms: u64, seed: u64) -> GroundTruth {
    let cfg = SimConfig::paper_default();
    let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.5);
    Simulation::new(cfg, traffic, seed).run_ms(ms)
}

/// Paper-shaped windows (300 bins / 50-bin intervals), active only.
pub fn paper_windows(ms: u64, seed: u64) -> Vec<PortWindow> {
    windows_from_trace(&paper_trace(ms, seed), 300, 50, 300)
        .into_iter()
        .filter(|w| w.has_activity())
        .collect()
}

/// A realistic single-interval CEM problem taken from a real window: the
/// target is the ground truth perturbed (so C1/C2/C3 are all violated and
/// every CEM code path runs).
pub fn cem_interval(len: usize) -> IntervalProblem {
    let ws = paper_windows(400, 99);
    let w = ws
        .iter()
        .max_by_key(|w| w.peak_max())
        .expect("active window");
    let l = w.interval_len.min(len);
    // The interval with the largest max.
    let k = (0..w.intervals())
        .max_by_key(|&k| w.maxes.iter().map(|m| m[k]).max().unwrap())
        .unwrap();
    IntervalProblem {
        len: l,
        target: (0..w.num_queues())
            .map(|q| {
                w.truth[q][k * w.interval_len..k * w.interval_len + l]
                    .iter()
                    .map(|&v| (v * 0.8 + 1.0).round() as i64) // perturb
                    .collect()
            })
            .collect(),
        maxes: (0..w.num_queues()).map(|q| w.maxes[q][k]).collect(),
        samples: (0..w.num_queues())
            .map(|q| {
                if l == w.interval_len {
                    w.samples[q][k]
                } else {
                    w.truth[q][k * w.interval_len + l - 1] as u32
                }
            })
            .collect(),
        m_out: w.sent[k],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_usable() {
        let ws = paper_windows(350, 1);
        assert!(!ws.is_empty());
        let p = cem_interval(50);
        assert_eq!(p.len, 50);
        assert!(p.measurements_consistent());
    }
}
