//! `--save-baseline`-style JSON summaries of benchmark runs.
//!
//! Each bench target's run is summarized as one `BENCH_<name>.json` file:
//!
//! ```json
//! {"bench":"sim_throughput",
//!  "results":[{"id":"sim/run_ms/100","median_ns":1234567.0,"samples":20}]}
//! ```
//!
//! The schema matches what the workspace's criterion harness emits, so a
//! file written by a bench run can be loaded back here and compared
//! against a later run to track the repo's perf trajectory. Comparison is
//! on **median ns/iter** — robust to the one-off outliers a busy CI host
//! produces.

use std::io::Write;
use std::path::{Path, PathBuf};

/// One benchmark's summary: median wall time per iteration.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Criterion-style id, e.g. `"cem/fast/len50"`.
    pub id: String,
    /// Median nanoseconds per iteration.
    pub median_ns: f64,
    /// Number of timed samples behind the median.
    pub samples: u64,
}

/// A named set of benchmark results (one bench target's run).
#[derive(Debug, Clone, PartialEq)]
pub struct Baseline {
    /// Bench target name; determines the `BENCH_<name>.json` filename.
    pub bench: String,
    pub results: Vec<BenchRecord>,
}

/// One entry of [`Baseline::compare`]: how a result moved vs a baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct Delta {
    pub id: String,
    pub baseline_ns: f64,
    pub current_ns: f64,
    /// `current / baseline − 1`; positive means slower.
    pub ratio: f64,
}

impl Baseline {
    pub fn new(bench: &str) -> Baseline {
        Baseline {
            bench: bench.to_string(),
            results: Vec::new(),
        }
    }

    /// Append one result.
    pub fn record(&mut self, id: &str, median_ns: f64, samples: u64) {
        self.results.push(BenchRecord {
            id: id.to_string(),
            median_ns,
            samples,
        });
    }

    /// Deterministic JSON (results in insertion order).
    pub fn to_json(&self) -> String {
        let mut v = serde_json::Value::Object(Vec::new());
        v["bench"] = serde_json::Value::String(self.bench.clone());
        let results: Vec<serde_json::Value> = self
            .results
            .iter()
            .map(|r| {
                let mut o = serde_json::Value::Object(Vec::new());
                o["id"] = serde_json::Value::String(r.id.clone());
                o["median_ns"] = serde_json::Value::F64(r.median_ns);
                o["samples"] = serde_json::Value::U64(r.samples);
                o
            })
            .collect();
        v["results"] = serde_json::Value::Array(results);
        v.to_string()
    }

    /// Parse a summary previously written by [`Baseline::save`] (or by
    /// the criterion harness, which uses the same schema).
    pub fn from_json(s: &str) -> Result<Baseline, String> {
        let v: serde_json::Value = serde_json::from_str(s).map_err(|e| e.to_string())?;
        let bench = v["bench"].as_str().ok_or("missing \"bench\"")?.to_string();
        let arr = v["results"].as_array().ok_or("missing \"results\"")?;
        let mut results = Vec::with_capacity(arr.len());
        for r in arr {
            results.push(BenchRecord {
                id: r["id"].as_str().ok_or("result missing \"id\"")?.to_string(),
                median_ns: r["median_ns"]
                    .as_f64()
                    .ok_or("result missing \"median_ns\"")?,
                samples: r["samples"].as_u64().unwrap_or(0),
            });
        }
        Ok(Baseline { bench, results })
    }

    /// Write `BENCH_<bench>.json` into `dir`; returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join(format!("BENCH_{}.json", self.bench));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// Load a summary from a `BENCH_<name>.json` path.
    pub fn load(path: &Path) -> Result<Baseline, String> {
        let s = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
        Baseline::from_json(&s)
    }

    /// Compare `self` (current run) against an earlier `baseline`, id by
    /// id. Ids missing on either side are skipped — a bench rename is not
    /// a regression.
    pub fn compare(&self, baseline: &Baseline) -> Vec<Delta> {
        self.results
            .iter()
            .filter_map(|cur| {
                let base = baseline.results.iter().find(|b| b.id == cur.id)?;
                if base.median_ns <= 0.0 {
                    return None;
                }
                Some(Delta {
                    id: cur.id.clone(),
                    baseline_ns: base.median_ns,
                    current_ns: cur.median_ns,
                    ratio: cur.median_ns / base.median_ns - 1.0,
                })
            })
            .collect()
    }

    /// Ids that got slower than `tolerance` (e.g. `0.10` = +10%).
    pub fn regressions(&self, baseline: &Baseline, tolerance: f64) -> Vec<Delta> {
        self.compare(baseline)
            .into_iter()
            .filter(|d| d.ratio > tolerance)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        let mut b = Baseline::new("demo");
        b.record("cem/fast/len50", 1_500.0, 20);
        b.record("cem/smt/len50", 420_000.5, 10);
        b
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let j = b.to_json();
        assert!(j.starts_with("{\"bench\":\"demo\""), "{j}");
        let back = Baseline::from_json(&j).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn save_writes_bench_named_file_and_load_reads_it() {
        let dir = std::env::temp_dir().join(format!("fmml_baseline_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = sample().save(&dir).unwrap();
        assert!(path.file_name().unwrap().to_str().unwrap() == "BENCH_demo.json");
        let back = Baseline::load(&path).unwrap();
        assert_eq!(back, sample());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn compare_flags_only_real_regressions() {
        let base = sample();
        let mut cur = sample();
        cur.results[0].median_ns = 1_800.0; // +20%
        cur.results[1].median_ns = 400_000.0; // faster
        let deltas = cur.compare(&base);
        assert_eq!(deltas.len(), 2);
        let regs = cur.regressions(&base, 0.10);
        assert_eq!(regs.len(), 1);
        assert_eq!(regs[0].id, "cem/fast/len50");
        assert!((regs[0].ratio - 0.2).abs() < 1e-9);
    }

    #[test]
    fn renamed_ids_are_skipped_not_flagged() {
        let base = sample();
        let mut cur = Baseline::new("demo");
        cur.record("cem/fast/len100", 9_999_999.0, 5);
        assert!(cur.compare(&base).is_empty());
        assert!(cur.regressions(&base, 0.0).is_empty());
    }

    #[test]
    fn harness_emitted_file_is_loadable() {
        // The criterion harness writes the same schema; samples may be
        // absent in hand-written files.
        let j = r#"{"bench":"smt_micro","results":[{"id":"pigeonhole/5","median_ns":123.0}]}"#;
        let b = Baseline::from_json(j).unwrap();
        assert_eq!(b.bench, "smt_micro");
        assert_eq!(b.results[0].samples, 0);
    }
}
