//! The wire-codec benchmark behind `BENCH_wire.json`.
//!
//! Three passes, one report:
//!
//! 1. **Codec microbench** — encode and decode throughput for the two
//!    hot frames (`Interval` up, `Imputed` down) under the JSON wire v1
//!    and the binary wire v2 (`bin1`), on realistic simulated telemetry
//!    (not toy zeros — JSON cost scales with digit count). The headline
//!    number CI gates on is `imputed_encdec_speedup`: binary
//!    encode+decode throughput over JSON on `Imputed` frames.
//! 2. **Cross-codec fingerprint** — the same lockstep interval stream
//!    replayed twice against fresh servers, once per negotiated codec;
//!    every `Imputed` series is recorded and the two FNV fingerprints
//!    must match bitwise. The codec is transport, never content.
//! 3. **End-to-end loadgen** — the trace-replay load generator against a
//!    loopback server under each codec, so the report carries whole-path
//!    numbers (answered / p99 / rps), not just serializer loops.
//!
//! The JSON layout is flat (`imputed_bin1_encode_ns`,
//! `fingerprint_match`, …) so CI can grep single fields.

use fmml_core::streaming::IntervalUpdate;
use fmml_core::transformer_imputer::TransformerImputer;
use fmml_fm::cem::hash_u32_series;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_serve::protocol::{
    decode_frame, encode_frame_with, write_frame_with, Frame, FrameReader, WireCodec, MAX_FRAME_LEN,
};
use fmml_serve::{loadgen, LoadReport, LoadgenConfig, ServerConfig};
use fmml_telemetry::{windows_from_trace, PortWindow};
use std::collections::BTreeMap;
use std::io::Write;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Encode/decode cost of one frame shape under one codec.
#[derive(Debug, Clone, Copy)]
pub struct CodecPoint {
    pub bytes: usize,
    pub encode_ns: f64,
    pub decode_ns: f64,
}

/// One end-to-end loadgen point.
#[derive(Debug, Clone, Copy)]
pub struct EndToEndPoint {
    pub answered: u64,
    pub p99_us: u64,
    pub throughput_rps: f64,
    pub violations: u64,
}

impl EndToEndPoint {
    fn from_report(r: &LoadReport) -> EndToEndPoint {
        EndToEndPoint {
            answered: r.answered,
            p99_us: r.p99_us,
            throughput_rps: r.throughput_rps,
            violations: r.server_violations,
        }
    }
}

/// One `BENCH_wire.json` payload.
#[derive(Debug, Clone)]
pub struct WireBenchReport {
    pub cores: usize,
    pub iters: usize,
    pub interval_json: CodecPoint,
    pub interval_bin1: CodecPoint,
    pub imputed_json: CodecPoint,
    pub imputed_bin1: CodecPoint,
    pub json_fingerprint: u64,
    pub bin1_fingerprint: u64,
    pub fingerprint_match: bool,
    pub e2e_json: EndToEndPoint,
    pub e2e_bin1: EndToEndPoint,
}

impl WireBenchReport {
    /// Encode+decode throughput of bin1 over JSON for one frame shape.
    fn encdec_speedup(json: &CodecPoint, bin: &CodecPoint) -> f64 {
        (json.encode_ns + json.decode_ns) / (bin.encode_ns + bin.decode_ns)
    }

    pub fn imputed_encdec_speedup(&self) -> f64 {
        Self::encdec_speedup(&self.imputed_json, &self.imputed_bin1)
    }

    pub fn interval_encdec_speedup(&self) -> f64 {
        Self::encdec_speedup(&self.interval_json, &self.interval_bin1)
    }

    /// Deterministic, grep-friendly flat JSON.
    pub fn to_json(&self) -> String {
        use serde_json::Value;
        let mut v = Value::Object(Vec::new());
        v["bench"] = Value::String("wire".into());
        v["cores"] = Value::U64(self.cores as u64);
        v["iters"] = Value::U64(self.iters as u64);
        for (name, p) in [
            ("interval_json", &self.interval_json),
            ("interval_bin1", &self.interval_bin1),
            ("imputed_json", &self.imputed_json),
            ("imputed_bin1", &self.imputed_bin1),
        ] {
            v[format!("{name}_bytes").as_str()] = Value::U64(p.bytes as u64);
            v[format!("{name}_encode_ns").as_str()] = Value::F64(p.encode_ns);
            v[format!("{name}_decode_ns").as_str()] = Value::F64(p.decode_ns);
        }
        v["interval_encode_speedup"] =
            Value::F64(self.interval_json.encode_ns / self.interval_bin1.encode_ns);
        v["interval_decode_speedup"] =
            Value::F64(self.interval_json.decode_ns / self.interval_bin1.decode_ns);
        v["imputed_encode_speedup"] =
            Value::F64(self.imputed_json.encode_ns / self.imputed_bin1.encode_ns);
        v["imputed_decode_speedup"] =
            Value::F64(self.imputed_json.decode_ns / self.imputed_bin1.decode_ns);
        v["interval_encdec_speedup"] = Value::F64(self.interval_encdec_speedup());
        v["imputed_encdec_speedup"] = Value::F64(self.imputed_encdec_speedup());
        v["json_fingerprint"] = Value::String(format!("{:016x}", self.json_fingerprint));
        v["bin1_fingerprint"] = Value::String(format!("{:016x}", self.bin1_fingerprint));
        v["fingerprint_match"] = Value::U64(self.fingerprint_match as u64);
        for (name, p) in [("json", &self.e2e_json), ("bin1", &self.e2e_bin1)] {
            v[format!("e2e_{name}_answered").as_str()] = Value::U64(p.answered);
            v[format!("e2e_{name}_p99_us").as_str()] = Value::U64(p.p99_us);
            v[format!("e2e_{name}_throughput_rps").as_str()] = Value::F64(p.throughput_rps);
            v[format!("e2e_{name}_violations").as_str()] = Value::U64(p.violations);
        }
        v.to_string()
    }

    /// Write `BENCH_wire.json` into `dir`; returns the path written.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_wire.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// A few lines for stderr progress.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        use std::fmt::Write as _;
        for (name, j, b) in [
            ("interval", &self.interval_json, &self.interval_bin1),
            ("imputed", &self.imputed_json, &self.imputed_bin1),
        ] {
            let _ = writeln!(
                s,
                "{name:<9} json {jb}B {je:.0}ns enc / {jd:.0}ns dec | bin1 {bb}B {be:.0}ns enc / \
                 {bd:.0}ns dec | enc+dec {x:.2}x",
                jb = j.bytes,
                je = j.encode_ns,
                jd = j.decode_ns,
                bb = b.bytes,
                be = b.encode_ns,
                bd = b.decode_ns,
                x = Self::encdec_speedup(j, b),
            );
        }
        let _ = writeln!(
            s,
            "fingerprint json={:016x} bin1={:016x} match={}",
            self.json_fingerprint, self.bin1_fingerprint, self.fingerprint_match
        );
        let _ = writeln!(
            s,
            "e2e json answered={} p99={}us {:.0}rps | bin1 answered={} p99={}us {:.0}rps",
            self.e2e_json.answered,
            self.e2e_json.p99_us,
            self.e2e_json.throughput_rps,
            self.e2e_bin1.answered,
            self.e2e_bin1.p99_us,
            self.e2e_bin1.throughput_rps,
        );
        s
    }
}

/// Benchmark knobs.
#[derive(Debug, Clone)]
pub struct WireBenchConfig {
    /// Encode/decode iterations per measured point.
    pub iters: usize,
    /// Lockstep intervals for the cross-codec fingerprint pass.
    pub intervals: usize,
    pub interval_len: usize,
    pub window_intervals: usize,
    /// Loadgen concurrency for the end-to-end points.
    pub clients: usize,
    pub loadgen_intervals: usize,
    pub deadline: Duration,
    pub seed: u64,
}

impl Default for WireBenchConfig {
    fn default() -> WireBenchConfig {
        WireBenchConfig {
            iters: 20_000,
            intervals: 24,
            interval_len: 10,
            window_intervals: 3,
            clients: 4,
            loadgen_intervals: 30,
            deadline: Duration::from_millis(50),
            seed: 41,
        }
    }
}

/// Realistic interval stream over the first active port of a simulated
/// trace (same recipe as the recovery bench).
fn stream(cfg: &WireBenchConfig) -> (Vec<IntervalUpdate>, usize, usize) {
    let sim = SimConfig::small();
    let gt = Simulation::new(
        sim.clone(),
        TrafficConfig::websearch_incast(sim.num_ports, 0.6),
        cfg.seed,
    )
    .run_ms(720);
    let wlen = cfg.interval_len * cfg.window_intervals;
    let ws: Vec<PortWindow> = windows_from_trace(&gt, wlen, cfg.interval_len, wlen)
        .into_iter()
        .filter(|w| w.has_activity())
        .collect();
    assert!(!ws.is_empty(), "wire bench trace has no active windows");
    let port = ws[0].port;
    let queues = ws[0].num_queues();
    let mut updates = Vec::with_capacity(cfg.intervals);
    'outer: loop {
        for w in ws.iter().filter(|w| w.port == port) {
            for k in 0..w.intervals() {
                updates.push(IntervalUpdate::from_window(w, k));
                if updates.len() >= cfg.intervals {
                    break 'outer;
                }
            }
        }
    }
    (updates, port, queues)
}

/// Mean ns/op over `iters` runs of `f`, `black_box`ed so the serializer
/// loop cannot be optimized away.
fn time_ns<T>(iters: usize, mut f: impl FnMut() -> T) -> f64 {
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_nanos() as f64 / iters as f64
}

fn codec_point(frame: &Frame, codec: WireCodec, iters: usize) -> CodecPoint {
    let bytes = encode_frame_with(frame, codec, MAX_FRAME_LEN).expect("bench frame encodes");
    let decoded = decode_frame(&bytes)
        .expect("bench frame decodes")
        .expect("complete");
    assert_eq!(&decoded.0, frame, "codec must round-trip the bench frame");
    CodecPoint {
        bytes: bytes.len(),
        encode_ns: time_ns(iters, || {
            encode_frame_with(frame, codec, MAX_FRAME_LEN).unwrap()
        }),
        decode_ns: time_ns(iters, || decode_frame(&bytes).unwrap().unwrap()),
    }
}

/// Lockstep replay of `updates` under one negotiated codec; returns the
/// FNV fingerprint over every `Imputed` series in seq order. Panics if
/// negotiation lands on anything but `codec` — a bench that silently
/// measured JSON twice would "pass" the speedup gate with 1.0x.
fn lockstep_fingerprint(
    model: &Arc<TransformerImputer>,
    cfg: &WireBenchConfig,
    updates: &[IntervalUpdate],
    port: usize,
    queues: usize,
    codec: WireCodec,
) -> u64 {
    let handle = fmml_serve::spawn(
        Arc::clone(model),
        ServerConfig {
            workers: 1,
            deadline: Duration::from_millis(500),
            wire: codec,
            ..ServerConfig::default()
        },
    )
    .expect("spawn wire bench server");
    let stream = TcpStream::connect(handle.addr()).expect("connect wire bench client");
    stream.set_nodelay(true).expect("nodelay");
    let mut rx = FrameReader::new(stream.try_clone().expect("clone"));
    let mut tx = stream;

    // The Hello always travels JSON; `codecs` is the advertisement.
    write_frame_with(
        &mut tx,
        &Frame::Hello {
            tenant: "wire".into(),
            ports: vec![port],
            queues,
            interval_len: cfg.interval_len,
            window_intervals: cfg.window_intervals,
            resume_token: None,
            last_acked: None,
            codecs: (codec == WireCodec::Bin1).then(WireCodec::advertise),
        },
        WireCodec::Json,
    )
    .expect("hello");
    match rx.read_frame().expect("welcome") {
        Frame::Welcome { codec: picked, .. } => {
            let picked = picked
                .as_deref()
                .and_then(WireCodec::parse)
                .unwrap_or_default();
            assert_eq!(
                picked, codec,
                "negotiation must land on the codec under test"
            );
        }
        other => panic!("expected Welcome, got {other:?}"),
    }

    let mut replies: BTreeMap<u64, Vec<Vec<u32>>> = BTreeMap::new();
    for (idx, u) in updates.iter().enumerate() {
        let seq = idx as u64 + 1;
        write_frame_with(
            &mut tx,
            &Frame::Interval {
                seq,
                update: u.clone(),
                trace_id: None,
            },
            codec,
        )
        .expect("send interval");
        match rx.read_frame().expect("reply") {
            Frame::Ack { seq: s, .. } => assert_eq!(s, seq),
            Frame::Imputed { seq: s, series, .. } => {
                assert_eq!(s, seq);
                replies.insert(s, series);
            }
            other => panic!("unexpected reply {other:?}"),
        }
    }
    write_frame_with(&mut tx, &Frame::Bye, codec).expect("bye");
    match rx.read_frame().expect("byeack") {
        Frame::ByeAck { remaining, .. } => assert_eq!(remaining, 0, "drain timed out"),
        other => panic!("expected ByeAck, got {other:?}"),
    }
    match handle.shutdown() {
        Frame::StatsReply { violations, .. } => assert_eq!(violations, 0),
        other => panic!("expected StatsReply, got {other:?}"),
    }

    let flat: Vec<Vec<u32>> = replies
        .values()
        .flat_map(|series| series.iter().cloned())
        .collect();
    hash_u32_series(&flat)
}

fn e2e_point(
    model: &Arc<TransformerImputer>,
    cfg: &WireBenchConfig,
    codec: WireCodec,
) -> EndToEndPoint {
    let handle = fmml_serve::spawn(
        Arc::clone(model),
        ServerConfig {
            workers: 2,
            deadline: cfg.deadline,
            wire: codec,
            ..ServerConfig::default()
        },
    )
    .expect("spawn wire bench server");
    let report = loadgen::run(&LoadgenConfig {
        addr: handle.addr().to_string(),
        clients: cfg.clients,
        intervals: cfg.loadgen_intervals,
        interval_len: cfg.interval_len,
        window_intervals: cfg.window_intervals,
        sim: SimConfig::small(),
        sim_ms: 480,
        distinct_traces: 4.min(cfg.clients.max(1)),
        seed: cfg.seed,
        deadline: cfg.deadline,
        pace: None,
        chaos: None,
        tenant_prefix: "wire".into(),
        wire: codec,
    });
    assert_eq!(report.lost, 0, "{codec:?} e2e pass lost replies");
    assert_eq!(report.unknown_levels, 0);
    assert_eq!(report.server_violations, 0);
    handle.shutdown();
    EndToEndPoint::from_report(&report)
}

/// Run the full wire benchmark; panics on cross-codec divergence so CI
/// fails loud.
pub fn bench_wire(model: Arc<TransformerImputer>, cfg: &WireBenchConfig) -> WireBenchReport {
    let (updates, port, queues) = stream(cfg);

    // Microbench frames: the hottest update in the stream (largest
    // serialized size) and the Imputed reply the model produces for it.
    let update = updates
        .iter()
        .max_by_key(|u| {
            encode_frame_with(
                &Frame::Interval {
                    seq: 1,
                    update: (*u).clone(),
                    trace_id: None,
                },
                WireCodec::Json,
                MAX_FRAME_LEN,
            )
            .map_or(0, |b| b.len())
        })
        .expect("non-empty stream")
        .clone();
    let interval = Frame::Interval {
        seq: 48_271,
        update,
        trace_id: Some(0x9e37_79b9_7f4a_7c15),
    };
    let imputed = Frame::Imputed {
        seq: 48_271,
        port,
        series: (0..queues)
            .map(|q| {
                (0..cfg.interval_len * cfg.window_intervals)
                    .map(|i| (q * 7919 + i * 104_729) as u32 % 10_000)
                    .collect()
            })
            .collect(),
        level: "full".into(),
        enforced: true,
        latency_us: 1_234,
        trace_id: Some(0x9e37_79b9_7f4a_7c15),
    };

    let interval_json = codec_point(&interval, WireCodec::Json, cfg.iters);
    let interval_bin1 = codec_point(&interval, WireCodec::Bin1, cfg.iters);
    let imputed_json = codec_point(&imputed, WireCodec::Json, cfg.iters);
    let imputed_bin1 = codec_point(&imputed, WireCodec::Bin1, cfg.iters);

    let json_fp = lockstep_fingerprint(&model, cfg, &updates, port, queues, WireCodec::Json);
    let bin1_fp = lockstep_fingerprint(&model, cfg, &updates, port, queues, WireCodec::Bin1);
    assert_eq!(
        json_fp, bin1_fp,
        "reply content diverged across codecs — the wire leaked into the answers"
    );

    let e2e_json = e2e_point(&model, cfg, WireCodec::Json);
    let e2e_bin1 = e2e_point(&model, cfg, WireCodec::Bin1);

    WireBenchReport {
        cores: std::thread::available_parallelism().map_or(1, |n| n.get()),
        iters: cfg.iters,
        interval_json,
        interval_bin1,
        imputed_json,
        imputed_bin1,
        json_fingerprint: json_fp,
        bin1_fingerprint: bin1_fp,
        fingerprint_match: json_fp == bin1_fp,
        e2e_json,
        e2e_bin1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmml_core::transformer_imputer::Scales;

    #[test]
    fn tiny_bench_runs_and_serializes() {
        let model = Arc::new(TransformerImputer::new(
            3,
            Scales {
                qlen: SimConfig::small().buffer_packets as f32,
                count: 830.0,
            },
        ));
        let cfg = WireBenchConfig {
            iters: 50,
            intervals: 6,
            clients: 2,
            loadgen_intervals: 6,
            deadline: Duration::from_millis(200),
            ..WireBenchConfig::default()
        };
        let report = bench_wire(model, &cfg);
        assert!(report.fingerprint_match);
        let j = report.to_json();
        assert!(j.contains("\"imputed_encdec_speedup\""));
        assert!(j.contains("\"fingerprint_match\":1"));
        assert!(j.contains("\"e2e_bin1_violations\":0"));
        // Binary frames must at least not be larger than JSON on the
        // hot path (the speedup gate itself runs only on CI's 4-core
        // runner, where timings are stable).
        assert!(report.imputed_bin1.bytes <= report.imputed_json.bytes);
    }
}
