//! The three-pass training benchmark behind `BENCH_train.json`.
//!
//! [`bench_train`] trains the *same* transformer imputer on the *same*
//! windows three times:
//!
//! 1. **reference** — the scalar [`KernelMode::Reference`] GEMMs with
//!    tape pooling disabled: the pre-kernel-rewrite substrate, and the
//!    ground truth for the equivalence check;
//! 2. **blocked** — the tiled, transpose-cached kernels
//!    ([`KernelMode::Blocked`], the default) with the arena-pooled tape,
//!    serial batches;
//! 3. **blocked+parallel** — the same kernels with `cfg.parallel = true`
//!    (rayon data-parallel batches) and [`KernelMode::BlockedParallel`]
//!    row sharding armed for any GEMM crossing the FMA threshold.
//!
//! Every kernel follows the canonical summation-order contract
//! (`crates/nn/src/kernel.rs`), so all three passes must land on
//! bit-identical parameters, imputed series, and epoch losses. The
//! report fingerprints each pass (FNV-1a over a length-prefixed `u32`
//! encoding of every `f32::to_bits`) and CI asserts `identical == true`,
//! `rollbacks == 0`, and a floor on `blocked_speedup`.

use fmml_core::train::{train, EpochStats, LossKind, TrainConfig};
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fm::cem;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_nn::kernel::{self, with_mode, KernelMode};
use fmml_nn::tape;
use fmml_telemetry::{windows_from_trace, PortWindow};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Training windows for the benchmark: the small 8→4-port sim geometry
/// with 60-bin windows (10-bin intervals), active ports only — the same
/// shape the training-loop tests use, big enough that the encoder GEMMs
/// dominate the wall-clock.
pub fn train_windows(ms: u64, seed: u64) -> Vec<PortWindow> {
    let cfg = SimConfig::small();
    let gt = Simulation::new(
        cfg.clone(),
        TrafficConfig::websearch_incast(cfg.num_ports, 0.6),
        seed,
    )
    .run_ms(ms);
    windows_from_trace(&gt, 60, 10, 60)
        .into_iter()
        .filter(|w| w.has_activity())
        .collect()
}

/// Normalization scales matching the small sim geometry.
pub fn train_scales() -> Scales {
    Scales {
        qlen: 260.0,
        count: 830.0,
    }
}

/// FNV fingerprint of everything training is supposed to determine:
/// every parameter tensor, the imputed series of the probe window, and
/// the per-epoch mean losses — all as raw `f32` bits, so a 1-ulp drift
/// anywhere flips the hash.
pub fn fingerprint(model: &TransformerImputer, imputed: &[f32], stats: &[EpochStats]) -> u64 {
    let mut series: Vec<Vec<u32>> = Vec::with_capacity(model.store.len() + 2);
    for id in 0..model.store.len() {
        series.push(
            model
                .store
                .value(id)
                .data
                .iter()
                .map(|v| v.to_bits())
                .collect(),
        );
    }
    series.push(imputed.iter().map(|v| v.to_bits()).collect());
    series.push(stats.iter().map(|s| s.mean_loss.to_bits()).collect());
    cem::hash_u32_series(&series)
}

/// One `BENCH_train.json` payload.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainBenchReport {
    pub epochs: usize,
    pub windows: usize,
    /// Training examples per epoch (window × queue pairs).
    pub examples: usize,
    /// Wall-clock of the scalar-reference, pool-disabled pass.
    pub reference_ns: u64,
    /// Wall-clock of the blocked-kernel, pooled-tape serial pass.
    pub blocked_ns: u64,
    /// Wall-clock of the blocked + rayon-parallel pass.
    pub parallel_ns: u64,
    /// `reference_ns / blocked_ns` — the single-thread kernel win.
    pub blocked_speedup: f64,
    /// `reference_ns / parallel_ns` — the full tuned-path win.
    pub parallel_speedup: f64,
    /// FNV fingerprint of the reference pass (params + imputed + losses).
    pub reference_hash: u64,
    /// Same fingerprint for the blocked pass.
    pub blocked_hash: u64,
    /// Same fingerprint for the parallel pass.
    pub parallel_hash: u64,
    /// All three fingerprints agree — the determinism contract.
    pub identical: bool,
    /// Epochs rolled back by the non-finite guard across all passes
    /// (must be 0 on a clean run).
    pub rollbacks: u64,
    /// GEMM FMAs of the blocked pass (work volume, mode-invariant).
    pub fmas: u64,
    /// Row shards dispatched during the parallel pass.
    pub parallel_shards: u64,
    /// Tape-buffer pool hit rate of the blocked pass.
    pub pool_hit_rate: f64,
}

impl TrainBenchReport {
    /// Deterministic JSON (fixed key order).
    pub fn to_json(&self) -> String {
        let mut v = serde_json::Value::Object(Vec::new());
        v["bench"] = serde_json::Value::String("train".into());
        v["epochs"] = serde_json::Value::U64(self.epochs as u64);
        v["windows"] = serde_json::Value::U64(self.windows as u64);
        v["examples"] = serde_json::Value::U64(self.examples as u64);
        v["reference_ns"] = serde_json::Value::U64(self.reference_ns);
        v["blocked_ns"] = serde_json::Value::U64(self.blocked_ns);
        v["parallel_ns"] = serde_json::Value::U64(self.parallel_ns);
        v["blocked_speedup"] = serde_json::Value::F64(self.blocked_speedup);
        v["parallel_speedup"] = serde_json::Value::F64(self.parallel_speedup);
        v["reference_hash"] = serde_json::Value::String(format!("{:016x}", self.reference_hash));
        v["blocked_hash"] = serde_json::Value::String(format!("{:016x}", self.blocked_hash));
        v["parallel_hash"] = serde_json::Value::String(format!("{:016x}", self.parallel_hash));
        v["identical"] = serde_json::Value::Bool(self.identical);
        v["rollbacks"] = serde_json::Value::U64(self.rollbacks);
        v["fmas"] = serde_json::Value::U64(self.fmas);
        v["parallel_shards"] = serde_json::Value::U64(self.parallel_shards);
        v["pool_hit_rate"] = serde_json::Value::F64(self.pool_hit_rate);
        v.to_string()
    }

    /// Write `BENCH_train.json` into `dir`; returns the path.
    pub fn save(&self, dir: &Path) -> std::io::Result<PathBuf> {
        let path = dir.join("BENCH_train.json");
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.to_json())?;
        Ok(path)
    }

    /// One-line human summary.
    pub fn summary(&self) -> String {
        format!(
            "ref={:.2}ms blocked={:.2}ms ({:.2}x) parallel={:.2}ms ({:.2}x) \
             identical={} rollbacks={} pool_hit_rate={:.1}%",
            self.reference_ns as f64 / 1e6,
            self.blocked_ns as f64 / 1e6,
            self.blocked_speedup,
            self.parallel_ns as f64 / 1e6,
            self.parallel_speedup,
            self.identical,
            self.rollbacks,
            self.pool_hit_rate * 100.0,
        )
    }
}

fn cfg(epochs: usize, seed: u64, parallel: bool) -> TrainConfig {
    TrainConfig {
        epochs,
        lr: 5e-3,
        batch_size: 8,
        loss: LossKind::Emd,
        kal: None,
        seed,
        clip_norm: 5.0,
        parallel,
        nan_loss_epoch: None,
    }
}

/// Run the three passes and build the report. Returns the **blocked**
/// pass's model (all passes are asserted identical anyway) plus the
/// report.
pub fn bench_train(ms: u64, seed: u64, epochs: usize) -> (TransformerImputer, TrainBenchReport) {
    let ws = train_windows(ms, seed);
    assert!(!ws.is_empty(), "no active windows at ms={ms} seed={seed}");
    let scales = train_scales();
    let probe = &ws[0];
    let examples: usize = ws.iter().map(|w| w.num_queues()).sum();

    // Pass 1 — reference: scalar GEMMs, pooling disabled, serial
    // batches. This is the historical substrate the speedups are
    // measured against.
    let t0 = Instant::now();
    let (m_ref, s_ref) = with_mode(KernelMode::Reference, || {
        train(&ws, scales, &cfg(epochs, seed, false))
    });
    let reference_ns = t0.elapsed().as_nanos() as u64;
    let q_ref = with_mode(KernelMode::Reference, || m_ref.impute_queue(probe, 0));

    // Pass 2 — blocked: tiled kernels + pooled tape, serial batches.
    let k0 = kernel::stats();
    let p0 = tape::stats();
    let t1 = Instant::now();
    let (m_blk, s_blk) = with_mode(KernelMode::Blocked, || {
        train(&ws, scales, &cfg(epochs, seed, false))
    });
    let blocked_ns = t1.elapsed().as_nanos() as u64;
    let q_blk = with_mode(KernelMode::Blocked, || m_blk.impute_queue(probe, 0));
    let kd = kernel::stats() - k0;
    let pd = tape::stats() - p0;

    // Pass 3 — blocked + parallel: rayon data-parallel batches, row
    // sharding armed for threshold-crossing GEMMs.
    let k1 = kernel::stats();
    let t2 = Instant::now();
    let (m_par, s_par) = with_mode(KernelMode::BlockedParallel, || {
        train(&ws, scales, &cfg(epochs, seed, true))
    });
    let parallel_ns = t2.elapsed().as_nanos() as u64;
    let q_par = with_mode(KernelMode::BlockedParallel, || m_par.impute_queue(probe, 0));
    let kp = kernel::stats() - k1;

    let reference_hash = fingerprint(&m_ref, &q_ref, &s_ref);
    let blocked_hash = fingerprint(&m_blk, &q_blk, &s_blk);
    let parallel_hash = fingerprint(&m_par, &q_par, &s_par);
    let rollbacks = [&s_ref, &s_blk, &s_par]
        .iter()
        .flat_map(|s| s.iter())
        .filter(|s| s.rolled_back)
        .count() as u64;
    let report = TrainBenchReport {
        epochs,
        windows: ws.len(),
        examples,
        reference_ns,
        blocked_ns,
        parallel_ns,
        blocked_speedup: reference_ns as f64 / blocked_ns.max(1) as f64,
        parallel_speedup: reference_ns as f64 / parallel_ns.max(1) as f64,
        reference_hash,
        blocked_hash,
        parallel_hash,
        identical: reference_hash == blocked_hash && reference_hash == parallel_hash,
        rollbacks,
        fmas: kd.fmas,
        parallel_shards: kp.parallel_shards,
        pool_hit_rate: pd.buf_hits as f64 / (pd.buf_hits + pd.buf_misses).max(1) as f64,
    };
    (m_blk, report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_train_passes_are_bitwise_identical() {
        let (model, report) = bench_train(120, 7, 2);
        assert!(report.identical, "kernel passes diverged: {report:?}");
        assert_eq!(report.rollbacks, 0, "clean run must not roll back");
        assert!(report.windows > 0 && report.examples >= report.windows);
        assert!(report.fmas > 0, "blocked pass did no GEMM work");
        // The model returned is the blocked pass's — its fingerprint is
        // the blocked hash.
        let q = model.impute_queue(&train_windows(120, 7)[0], 0);
        assert!(!q.is_empty());
        assert!(q.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn report_json_has_the_ci_asserted_fields() {
        let report = TrainBenchReport {
            epochs: 3,
            windows: 4,
            examples: 16,
            reference_ns: 4_000_000,
            blocked_ns: 1_000_000,
            parallel_ns: 800_000,
            blocked_speedup: 4.0,
            parallel_speedup: 5.0,
            reference_hash: 0xdead_beef,
            blocked_hash: 0xdead_beef,
            parallel_hash: 0xdead_beef,
            identical: true,
            rollbacks: 0,
            fmas: 123_456,
            parallel_shards: 7,
            pool_hit_rate: 0.97,
        };
        let j = report.to_json();
        assert!(j.contains("\"bench\":\"train\""), "{j}");
        assert!(j.contains("\"identical\":true"), "{j}");
        assert!(j.contains("\"rollbacks\":0"), "{j}");
        assert!(j.contains("\"blocked_speedup\":4"), "{j}");
        assert!(j.contains("\"parallel_speedup\":5"), "{j}");
        assert!(j.contains("\"reference_hash\":\"00000000deadbeef\""), "{j}");
        assert!(report.summary().contains("(4.00x)"), "{}", report.summary());
    }
}
