//! SMT substrate microbenchmarks: the SAT core on a structured-hard
//! instance, LIA branch & bound, and a boolean+theory mix — the building
//! blocks whose cost dominates both the packet model and the SMT CEM.

use criterion::{criterion_group, criterion_main, Criterion};
use fmml_smt::sat::{Lit, SatSolver, SolveResult};
use fmml_smt::{SatResult, Solver};
use std::hint::black_box;

/// Pigeonhole n into n−1 (resolution-hard).
#[allow(clippy::needless_range_loop)]
fn pigeonhole(n: usize) -> SatSolver {
    let mut s = SatSolver::new();
    let p: Vec<Vec<u32>> = (0..n)
        .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
        .collect();
    for pi in &p {
        let c: Vec<Lit> = pi.iter().map(|&v| Lit::pos(v)).collect();
        s.add_clause(&c);
    }
    for j in 0..n - 1 {
        for a in 0..n {
            for b in (a + 1)..n {
                s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
            }
        }
    }
    s
}

fn lia_knapsack(items: usize) -> Solver {
    // Feasibility with equality over a weighted sum: exercises simplex +
    // branch & bound.
    let mut s = Solver::new();
    let vars: Vec<_> = (0..items).map(|i| s.int_var(&format!("x{i}"))).collect();
    let zero = s.int(0);
    let three = s.int(3);
    for &v in &vars {
        let lo = s.ge(v, zero);
        s.assert(lo);
        let hi = s.le(v, three);
        s.assert(hi);
    }
    let weighted: Vec<_> = vars
        .iter()
        .enumerate()
        .map(|(i, &v)| s.mul_const(2 * i as i64 + 3, v))
        .collect();
    let total = s.add(&weighted);
    let target = s.int((items * items) as i64);
    let eq = s.eq(total, target);
    s.assert(eq);
    s
}

fn bench_smt(c: &mut Criterion) {
    let mut g = c.benchmark_group("sat_core");
    g.sample_size(10);
    g.bench_function("pigeonhole_6_unsat", |b| {
        b.iter(|| {
            let mut s = pigeonhole(6);
            assert_eq!(s.solve(), SolveResult::Unsat);
            black_box(s.conflicts())
        })
    });
    g.finish();

    let mut g = c.benchmark_group("lia");
    g.sample_size(10);
    g.bench_function("knapsack_equality_8", |b| {
        b.iter(|| {
            let mut s = lia_knapsack(8);
            black_box(s.check())
        })
    });
    g.bench_function("boolean_theory_mix", |b| {
        b.iter(|| {
            // x in one of 8 disjoint bands, forced into the last by bounds.
            let mut s = Solver::new();
            let x = s.int_var("x");
            let mut bands = Vec::new();
            for i in 0..8i64 {
                let lo = s.int(10 * i);
                let hi = s.int(10 * i + 4);
                let a = s.ge(x, lo);
                let b2 = s.le(x, hi);
                bands.push(s.and(&[a, b2]));
            }
            let any = s.or(&bands);
            s.assert(any);
            let floor = s.int(68);
            let c2 = s.ge(x, floor);
            s.assert(c2);
            assert_eq!(s.check(), SatResult::Sat);
            black_box(s.model_int(x))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_smt);
criterion_main!(benches);
