//! §4 timing claim: "The average time for CEM to correct a 50 ms
//! transformer output is 1.47 s" (with Z3). This bench measures both CEM
//! engines on a realistic 50-step interval and the fast engine on a full
//! 300 ms window — the paper-faithful SMT engine lands in the same
//! order of magnitude as the paper's Z3 number, the specialized exact
//! projection is orders of magnitude faster at the same optimum.

use criterion::{criterion_group, criterion_main, Criterion};
use fmml_bench::{cem_interval, paper_windows};
use fmml_fm::cem::{enforce, fast_engine, smt_engine, CemEngine};
use fmml_fm::WindowConstraints;
use fmml_smt::solver::Budget;
use std::hint::black_box;
use std::time::Duration;

fn bench_cem(c: &mut Criterion) {
    let interval = cem_interval(50);
    let mut g = c.benchmark_group("cem_50ms_interval");
    g.sample_size(20);

    g.bench_function("fast_engine", |b| {
        b.iter(|| fast_engine::solve(black_box(&interval)).expect("feasible"))
    });

    g.sample_size(10);
    g.measurement_time(Duration::from_secs(30));
    g.bench_function("smt_engine_paper_faithful", |b| {
        b.iter(|| smt_engine::solve(black_box(&interval), Budget::default()).expect("feasible"))
    });
    g.finish();

    // Full 300 ms window with the production engine.
    let ws = paper_windows(400, 7);
    let w = ws.iter().max_by_key(|w| w.peak_max()).unwrap();
    let wc = WindowConstraints::from_window(w);
    // A deliberately inconsistent prediction: everything must be repaired.
    let pred: Vec<Vec<f32>> = w
        .truth
        .iter()
        .map(|q| q.iter().map(|&v| v * 0.7 + 0.5).collect())
        .collect();
    let mut g = c.benchmark_group("cem_300ms_window");
    g.bench_function("fast_engine_full_window", |b| {
        b.iter(|| enforce(black_box(&wc), black_box(&pred), &CemEngine::Fast).expect("feasible"))
    });
    g.finish();
}

criterion_group!(benches, bench_cem);
criterion_main!(benches);
