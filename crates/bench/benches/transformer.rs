//! Model-side costs: transformer inference and one training step at the
//! paper's shape (300 steps × d_model 16) — the numbers behind §5's
//! "strict timing requirements" discussion of real-time imputation.

use criterion::{criterion_group, criterion_main, Criterion};
use fmml_bench::paper_windows;
use fmml_core::train::{train, TrainConfig};
use fmml_core::transformer_imputer::{encode_features, Scales, TransformerImputer};
use fmml_nn::{loss, Tape, Tensor};
use std::hint::black_box;

fn bench_transformer(c: &mut Criterion) {
    let scales = Scales {
        qlen: 520.0,
        count: 4150.0,
    };
    let ws = paper_windows(400, 21);
    let w = &ws[0];
    let model = TransformerImputer::new(5, scales);

    let mut g = c.benchmark_group("transformer_300x16");
    g.bench_function("inference_one_queue", |b| {
        b.iter(|| black_box(model.impute_queue(w, 0)))
    });
    g.bench_function("forward_backward_one_example", |b| {
        b.iter(|| {
            let mut tape = Tape::new(&model.store);
            let x = tape.constant(encode_features(w, 0, scales));
            let pred = model.model.forward_series(&mut tape, x);
            let tgt = tape.constant(Tensor::vector(
                w.truth[0].iter().map(|&v| v / scales.qlen).collect(),
            ));
            let l = loss::emd(&mut tape, pred, tgt);
            black_box(tape.backward(l))
        })
    });
    g.finish();

    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("one_epoch_paper_windows", |b| {
        let cfg = TrainConfig {
            epochs: 1,
            ..TrainConfig::default()
        };
        b.iter(|| black_box(train(&ws, scales, &cfg)))
    });
    g.finish();
}

criterion_group!(benches, bench_transformer);
criterion_main!(benches);
