//! Per-window imputation latency of every Table-1 method — the cost an
//! operator pays per 300 ms of telemetry, method by method (the
//! scalability half of Table 1's story).

use criterion::{criterion_group, criterion_main, Criterion};
use fmml_bench::paper_windows;
use fmml_core::imputer::Imputer;
use fmml_core::iterative::IterativeImputer;
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fm::cem::{enforce, CemEngine};
use fmml_fm::WindowConstraints;
use std::hint::black_box;

fn bench_imputers(c: &mut Criterion) {
    let ws = paper_windows(400, 31);
    let w = ws.iter().max_by_key(|w| w.peak_max()).unwrap();
    let scales = Scales {
        qlen: 520.0,
        count: 4150.0,
    };
    let transformer = TransformerImputer::new(9, scales);
    let iterative = IterativeImputer::default();

    let mut g = c.benchmark_group("impute_300ms_window");
    g.sample_size(20);
    g.bench_function("iterative_imputer", |b| {
        b.iter(|| black_box(iterative.impute(w)))
    });
    g.bench_function("transformer", |b| {
        b.iter(|| black_box(transformer.impute(w)))
    });
    g.bench_function("transformer_plus_cem_fast", |b| {
        b.iter(|| {
            let raw = transformer.impute(w);
            let wc = WindowConstraints::from_window(w);
            black_box(enforce(&wc, &raw, &CemEngine::Fast).expect("feasible"))
        })
    });
    g.finish();
}

criterion_group!(benches, bench_imputers);
criterion_main!(benches);
