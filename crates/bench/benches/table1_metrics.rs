//! Table 1 machinery: the cost of scoring a method across all nine
//! metrics (rows a–i), plus constraint checking in isolation. The full
//! end-to-end Table-1 regeneration (training included) is the `table1`
//! example; this bench covers the measurement side so regressions in the
//! metric code are caught independently of training time.

use criterion::{criterion_group, criterion_main, Criterion};
use fmml_bench::paper_windows;
use fmml_core::bursts::BurstConfig;
use fmml_core::imputer::Imputer;
use fmml_core::iterative::IterativeImputer;
use fmml_core::metrics::evaluate;
use fmml_fm::WindowConstraints;
use std::hint::black_box;

fn bench_metrics(c: &mut Criterion) {
    let ws = paper_windows(700, 17);
    let iterative = IterativeImputer::default();
    let imputed: Vec<Vec<Vec<f32>>> = ws.iter().map(|w| iterative.impute(w)).collect();
    let bcfg = BurstConfig::default();

    let mut g = c.benchmark_group("table1");
    g.bench_function("evaluate_all_nine_metrics", |b| {
        b.iter(|| black_box(evaluate(&ws, &imputed, &bcfg)))
    });
    g.bench_function("constraint_errors_only", |b| {
        b.iter(|| {
            let mut acc = 0.0;
            for (w, pred) in ws.iter().zip(&imputed) {
                let wc = WindowConstraints::from_window(w);
                acc += wc.c1_error(pred) + wc.c2_error(pred) + wc.c3_error(pred);
            }
            black_box(acc)
        })
    });
    g.finish();
}

criterion_group!(benches, bench_metrics);
criterion_main!(benches);
