//! Substrate quality: simulator throughput (simulated ms per wall-clock
//! second) and telemetry extraction cost. Not a paper table, but the data
//! generator every experiment depends on.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_telemetry::{windows_from_trace, CoarseTelemetry};
use std::hint::black_box;

fn bench_sim(c: &mut Criterion) {
    let mut g = c.benchmark_group("simulator");
    g.throughput(Throughput::Elements(100)); // simulated milliseconds
    g.bench_function("run_100ms_paper_switch", |b| {
        b.iter(|| {
            let cfg = SimConfig::paper_default();
            let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.5);
            black_box(Simulation::new(cfg, traffic, 3).run_ms(100))
        })
    });
    g.finish();

    let cfg = SimConfig::paper_default();
    let traffic = TrafficConfig::websearch_incast(cfg.num_ports, 0.5);
    let gt = Simulation::new(cfg, traffic, 3).run_ms(600);
    let mut g = c.benchmark_group("telemetry");
    g.bench_function("coarse_from_600ms_trace", |b| {
        b.iter(|| black_box(CoarseTelemetry::from_ground_truth(&gt, 50)))
    });
    g.bench_function("windows_from_600ms_trace", |b| {
        b.iter(|| black_box(windows_from_trace(&gt, 300, 50, 300)))
    });
    g.finish();
}

criterion_group!(benches, bench_sim);
criterion_main!(benches);
