//! §2.3: solve time of the full packet-level model as the horizon grows.
//!
//! The paper reports minutes for simple scenarios and non-termination
//! (>24 h) for realistic ones. Here each point doubles the modeled packet
//! steps; the largest sizes are capped by a per-solve budget so the bench
//! itself terminates (the *shape* — super-linear growth into a wall — is
//! the result).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fmml_fm::packet_model::{
    reference_execution, solve, Arrival, PacketModelConfig, PacketModelOutcome,
};
use fmml_smt::solver::Budget;
use std::hint::black_box;
use std::time::Duration;

fn scenario(steps: usize, ports: usize) -> (PacketModelConfig, Vec<Arrival>) {
    let cfg = PacketModelConfig {
        num_ports: ports,
        queues_per_port: 2,
        buffer: 16,
        time_steps: steps,
        interval_len: steps / 2,
        strict_priority: true,
    };
    let mut arrivals = Vec::new();
    for t in 0..steps / 2 {
        for i in 0..ports.min(2) {
            arrivals.push(Arrival {
                step: t,
                input_port: i,
                queue: (i * 2) % cfg.num_queues(),
            });
        }
    }
    (cfg, arrivals)
}

fn bench_packet_model(c: &mut Criterion) {
    let mut g = c.benchmark_group("fm_packet_model");
    g.sample_size(10);
    g.measurement_time(Duration::from_secs(20));
    for &steps in &[6usize, 8, 12, 16] {
        let (cfg, arrivals) = scenario(steps, 2);
        let tr = reference_execution(&cfg, &arrivals);
        let budget = Budget {
            timeout: Some(Duration::from_secs(5)),
            max_sat_conflicts: Some(u64::MAX / 2),
            max_bb_nodes: u64::MAX / 2,
        };
        g.bench_with_input(BenchmarkId::new("solve_steps", steps), &steps, |b, _| {
            b.iter(|| {
                let out = solve(black_box(&cfg), black_box(&tr.measurements), budget);
                // Budget exhaustion is an expected outcome at the wall.
                matches!(out, PacketModelOutcome::Unsat { .. })
                    .then(|| panic!("consistent measurements must not be unsat"));
                out
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_packet_model);
criterion_main!(benches);
