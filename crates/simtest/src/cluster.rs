//! Multi-node deterministic simulation: clients → cluster router → N
//! backend serve nodes, all in memory on one shared virtual clock.
//!
//! Topology per seed: one frontend [`SimNet`] carries every client ↔
//! router connection (with seed-derived delay faults, like the
//! single-node explorer), and each backend gets its *own* [`SimNet`]
//! for router ↔ backend links — so the driver can crash links,
//! partition, or remove exactly one shard at a schedule point while the
//! rest of the cluster keeps serving.
//!
//! The schedule extends the single-node op set with cluster faults:
//!
//! * **link flap** — [`SimNet::kill_all`] on one backend net: every
//!   router↔backend connection dies mid-flight (crash semantics, the
//!   undelivered suffix is lost) but re-dials succeed, so the router
//!   re-places the shard's sessions — possibly on the same node, as a
//!   fresh session warmed up by replay.
//! * **partition** — [`SimNet::partition_for`]: frames stall with no
//!   error until a virtual heal time (a stream transport retransmits
//!   below the frame layer, so nothing is lost — just late); the
//!   prober's liveness probe times out (EOF never comes — this is
//!   exactly what distinguishes a partition from a crash) and the ring
//!   drops the shard until it heals and is re-probed back in. If an
//!   in-flight interval outlives the router's `pending_timeout`, its
//!   session is re-placed before the stall heals.
//! * **leave / join** — membership changes through the router's own
//!   API; consistent hashing bounds the migration churn.
//!
//! The client-facing checker is byte-for-byte the fault-oblivious
//! [`ClientModel`](crate::checker::ClientModel) of the single-node
//! explorer: it knows nothing about shards, placement, or migration.
//! Exactly-once, replay completeness and warm-up arithmetic must hold
//! across every backend fault, and the reply fingerprint must reproduce
//! bitwise for a seed — replies are content-deterministic no matter
//! which shard computed them, because every backend runs the same
//! deterministic model and migration warm-up reconstructs the exact
//! sliding window.

use crate::explorer::{
    derive_profile, explorer_server_config, fixture, splitmix64, Client, SeedOutcome, World,
    FNV_OFFSET,
};
use fmml_cluster::{RouterConfig, RouterHandle};
use fmml_fault::ProcessFaultPlan;
use fmml_obs::Clock;
use fmml_serve::{
    spawn_with, FaultProfile, ServerHandle, SimConn, SimConnector, SimNet, WireCodec,
};
use std::sync::Arc;
use std::time::Duration;

/// Knobs for a multi-node simulation run (CLI: `fmml simtest
/// --cluster`).
#[derive(Debug, Clone)]
pub struct ClusterSimConfig {
    /// How many consecutive seeds to explore.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Concurrent client sessions per seed.
    pub clients: usize,
    /// Backend serve nodes behind the router.
    pub backends: usize,
    /// Schedule length (ops per seed).
    pub ops: usize,
    /// Wire codec clients ask for; the router and every backend prefer
    /// the same one, so a `Bin1` run exercises binary pass-through on
    /// both hops. Fingerprints are codec-independent (delay-only
    /// faults).
    pub wire: WireCodec,
}

impl Default for ClusterSimConfig {
    fn default() -> ClusterSimConfig {
        ClusterSimConfig {
            seeds: 50,
            start_seed: 1,
            clients: 3,
            backends: 3,
            ops: 14,
            wire: WireCodec::Json,
        }
    }
}

/// Outcome of one explored cluster seed: the single-node
/// [`SeedOutcome`] plus cluster-level counters.
#[derive(Debug, Clone)]
pub struct ClusterSeedOutcome {
    pub inner: SeedOutcome,
    /// Sessions re-placed onto another backend (warm-up migrations).
    pub migrations: u64,
    /// Client reconnects resumed from the router's replay log.
    pub resumes: u64,
}

/// Explore `cfg.seeds` consecutive cluster seeds, sequentially.
pub fn run(cfg: &ClusterSimConfig) -> Vec<ClusterSeedOutcome> {
    (cfg.start_seed..cfg.start_seed + cfg.seeds)
        .map(|seed| run_seed(seed, cfg))
        .collect()
}

struct Backend {
    name: String,
    net: SimNet,
    handle: Option<ServerHandle<SimConn>>,
    /// Currently registered with the router (join/leave ops toggle it).
    member: bool,
}

/// Explore one cluster seed.
pub fn run_seed(seed: u64, cfg: &ClusterSimConfig) -> ClusterSeedOutcome {
    let fx = fixture();
    let (clock, vc) = Clock::new_virtual();
    // Distinct salt from the single-node explorer: same seed numbers,
    // different schedules.
    let mut rng = seed ^ 0x0c1a_57e2_9b3d_4f10;

    let front = SimNet::new(seed, clock.clone());
    let mut backends: Vec<Backend> = (0..cfg.backends.max(1))
        .map(|k| {
            let net = SimNet::new(seed.wrapping_add(0xb000 + k as u64), clock.clone());
            let mut server_cfg = explorer_server_config(clock.clone(), ProcessFaultPlan::none());
            server_cfg.wire = cfg.wire;
            let handle = spawn_with(net.transport(), Arc::clone(&fx.model), server_cfg);
            Backend {
                name: format!("b{k}"),
                net,
                handle: Some(handle),
                member: true,
            }
        })
        .collect();

    let router: RouterHandle<SimConn, SimConnector> = fmml_cluster::spawn_with(
        front.transport(),
        RouterConfig {
            ring_seed: seed,
            vnodes: 16,
            replay_window: 4096,
            // Virtual cadence: one probe round per ~200 ms of virtual
            // time, which the driver's idle pump advances.
            probe_interval: Duration::from_millis(200),
            // Virtual patience (the router reads the injected clock for
            // every deadline): a healthy in-memory backend answers a
            // probe before any virtual time passes; only
            // partitions/flaps spend this, and they resolve as the
            // driver's idle pump advances virtual time.
            probe_timeout: Duration::from_millis(30),
            probe_failures: 2,
            dial_timeout: Duration::from_millis(300),
            // Virtual patience before a silently-swallowed frame
            // (partition blackhole) is repaired by re-placement — ~150
            // idle pump iterations at 1 ms of virtual time each.
            pending_timeout: Duration::from_millis(150),
            read_timeout: Duration::from_millis(5),
            parked_ttl: Duration::from_secs(3600),
            wire: cfg.wire,
            clock: clock.clone(),
            ..RouterConfig::default()
        },
    );
    for b in &backends {
        router.add_backend(&b.name, b.net.connector());
    }

    let profile = derive_profile(&mut rng);
    let mut world = World {
        net: front.clone(),
        vc: Some(Arc::clone(&vc)),
        clients: (0..cfg.clients).map(Client::new).collect(),
        violations: Vec::new(),
        // Router deadlines are virtual, but the router's prober and
        // link threads still need real CPU time between the driver's
        // virtual ticks to observe them: idle pump iterations sleep a
        // sliver of real time purely for thread scheduling.
        real_idle: Duration::from_micros(300),
        stall_limit: 1200,
        wire: cfg.wire,
    };
    for i in 0..cfg.clients {
        world.handshake(i);
    }
    world.net.set_profile(profile);

    let nb = backends.len();
    for _op in 0..cfg.ops {
        // Exactly three draws per op, unconditionally (schedule is a
        // pure function of the seed).
        let r = splitmix64(&mut rng) % 100;
        let i = (splitmix64(&mut rng) as usize) % cfg.clients.max(1);
        let aux = splitmix64(&mut rng);
        let k = (aux as usize) % nb;
        world.pump_once();
        if r < 30 {
            if world.clients[i].is_alive() || world.handshake(i) {
                world.burst(i, 1 + (aux % 3) as usize);
            }
        } else if r < 45 {
            world.settle();
        } else if r < 55 {
            if world.clients[i].is_alive() {
                world.kill(i);
            }
        } else if r < 65 {
            // Link flap: crash every router<->backend connection on one
            // shard. The backend process survives; its sessions migrate.
            backends[k].net.kill_all();
        } else if r < 75 {
            // Partition one shard for a stretch of virtual time.
            backends[k]
                .net
                .partition_for(Duration::from_millis(100 + aux % 400));
        } else if r < 85 {
            // Membership churn through the router's own API. Never
            // shrink to zero members: placement would stall by design.
            let members = backends.iter().filter(|b| b.member).count();
            if backends[k].member && members >= 2 {
                router.remove_backend(&backends[k].name);
                backends[k].member = false;
            } else if !backends[k].member {
                router.add_backend(&backends[k].name, backends[k].net.connector());
                backends[k].member = true;
            }
        } else if r < 93 {
            if world.clients[i].is_alive() {
                world.advance_small(aux);
            } else {
                world.handshake(i);
            }
        } else {
            if world.clients[i].is_alive() || world.handshake(i) {
                world.send_bad(i);
            }
        }
    }

    // Faultless epilogue: rejoin departed members, let partitions heal
    // (virtual time), drop frontend faults, then drain and check.
    for b in &mut backends {
        if !b.member {
            router.add_backend(&b.name, b.net.connector());
            b.member = true;
        }
    }
    vc.advance(Duration::from_millis(600));
    world.net.set_profile(FaultProfile::none());
    world.final_drain();
    if vc.valve_trips() > 0 {
        world.violations.push(format!(
            "virtual-clock valve tripped {}x (a sleeper waited >5s real time)",
            vc.valve_trips()
        ));
    }

    let (migrations, resumes, _replayed) = router.cluster_stats();
    let _ = router.shutdown();
    for b in &mut backends {
        if let Some(h) = b.handle.take() {
            let _ = h.shutdown();
        }
        b.net.close();
    }
    front.close();
    ClusterSeedOutcome {
        inner: world.into_outcome(seed),
        migrations,
        resumes,
    }
}

/// Fold a batch of outcomes into one run fingerprint (for the CLI's
/// double-run reproducibility gate).
pub fn fold_run_fingerprint(outcomes: &[ClusterSeedOutcome]) -> u64 {
    let mut h = FNV_OFFSET;
    for o in outcomes {
        h ^= o.inner.fingerprint;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> ClusterSimConfig {
        ClusterSimConfig {
            seeds: 1,
            start_seed: 1,
            clients: 2,
            backends: 2,
            ops: 10,
            wire: WireCodec::Json,
        }
    }

    /// A correct cluster survives backend kills, partitions and
    /// membership churn with zero violations, and the same seed
    /// reproduces the same fingerprint bitwise.
    #[test]
    fn cluster_seeds_are_violation_free_and_deterministic() {
        let cfg = quick_cfg();
        for seed in [21, 22] {
            let a = run_seed(seed, &cfg);
            assert!(
                a.inner.violations.is_empty(),
                "seed {seed} violations: {:?}",
                a.inner.violations
            );
            let b = run_seed(seed, &cfg);
            assert_eq!(
                a.inner.fingerprint, b.inner.fingerprint,
                "seed {seed} fingerprint not reproducible"
            );
            assert_eq!(a.inner.violations, b.inner.violations);
        }
    }

    /// The wire codec is a transport detail even across router hops:
    /// bin1 runs reproduce the JSON runs' fingerprints bitwise — the
    /// pass-through forwarder never perturbs reply content — and stay
    /// violation-free under the same kill/partition schedules.
    #[test]
    fn bin1_runs_reproduce_json_fingerprints() {
        let json_cfg = quick_cfg();
        let bin_cfg = ClusterSimConfig {
            wire: WireCodec::Bin1,
            ..quick_cfg()
        };
        for seed in [21, 22] {
            let j = run_seed(seed, &json_cfg);
            let b = run_seed(seed, &bin_cfg);
            assert!(
                b.inner.violations.is_empty(),
                "seed {seed} bin1 violations: {:?}",
                b.inner.violations
            );
            assert_eq!(
                j.inner.fingerprint, b.inner.fingerprint,
                "seed {seed} fingerprint depends on the wire codec"
            );
        }
    }
}
