//! # fmml-simtest — deterministic simulation testing for `fmml-serve`
//!
//! FoundationDB-style simulation testing for the session protocol: the
//! whole server (acceptor, readers, worker pool, supervisor, watchdog)
//! runs unmodified over the seeded in-memory transport
//! ([`fmml_serve::sim`]) and the injected virtual clock
//! ([`fmml_obs::VirtualClock`]), while a single-threaded driver executes
//! a seed-derived schedule of client operations (bursts, reconnects,
//! hard kills, parked-TTL expiries) interleaved with seeded transport
//! faults and worker panics. Every reply is checked against a **pure
//! reference state machine** of the wire protocol ([`checker`]): warm-up
//! arithmetic, exactly-once delivery, replay completeness after
//! resumption, expiry semantics, and end-of-run completeness.
//!
//! Two properties make a failing seed actionable:
//!
//! * **Reproducibility** — every nondeterministic choice flows from the
//!   seed: fault fates are content-keyed (invariant under benign thread
//!   races), connection ids are allocated in schedule order, and time is
//!   virtual. Re-running a printed `FMML_SIM_SEED` replays the same
//!   violations and the same reply fingerprint bitwise.
//! * **Self-validation** — [`explorer::SimtestConfig::inject_bug`]
//!   activates a deliberately wrong server behaviour
//!   ([`fmml_serve::ProtocolBug`]); the harness must catch it, proving
//!   the checker is live (a checker that never fires proves nothing).
//!
//! Entry points: [`explorer::run`] (a seed range) and
//! [`explorer::run_seed`] (one seed), surfaced on the CLI as
//! `fmml simtest`.

pub mod checker;
pub mod cluster;
pub mod explorer;

pub use checker::{ClientModel, ReplyKind, ResumeExpect};
pub use cluster::{ClusterSeedOutcome, ClusterSimConfig};
pub use explorer::{run, run_seed, SeedOutcome, SimtestConfig};
