//! Pure reference state machine of the `fmml-serve` wire protocol.
//!
//! [`ClientModel`] tracks what one client has sent and what the
//! protocol therefore *owes* it, independent of any transport or
//! timing: handshake verdicts (`Welcome.resumed` must match the token's
//! known state), warm-up arithmetic (the k-th accepted interval of an
//! imputer chain is `Ack`ed iff `k < window_intervals - 1`),
//! exactly-once delivery (a second reply for a seq must be identical to
//! the first — replays and dedup answers come from the replay log
//! bitwise), replay completeness (every pending seq at or below
//! `resume_seq` must be answered by the replay; every one above it is
//! the client's to re-send), and end-of-run completeness (no seq may be
//! left unresolved once the schedule drains faultlessly).
//!
//! The model is deliberately fault-oblivious: it never sees the fault
//! schedule, only the frames the client actually sent and received.
//! Faults may *delay* obligations (a dead connection suspends them
//! until resume) but never cancel them — which is exactly the property
//! the explorer's final faultless drain turns into a checkable one.
//!
//! Everything here is pure bookkeeping over [`Frame`] values; the
//! explorer ([`crate::explorer`]) owns all I/O and clocks.

use fmml_serve::Frame;
use std::collections::BTreeMap;

/// What the model knows about the resume token a reconnect presents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResumeExpect {
    /// No token (first connect): the server must answer a fresh session.
    Fresh,
    /// A live token: the server must resume (`resumed = Some(true)`).
    Valid,
    /// A token whose parked state aged past `parked_ttl`: the server
    /// must answer a fresh session and must NOT resurrect old state.
    Expired,
}

/// Reply kind the reference model predicts for a sent interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// Window still warming up: accepted and buffered.
    Ack,
    /// Window full: an imputed series must come back.
    Imputed,
    /// Malformed on purpose (wrong port / bad shape): typed reject.
    Reject,
}

impl ReplyKind {
    fn tag(self) -> &'static str {
        match self {
            ReplyKind::Ack => "Ack",
            ReplyKind::Imputed => "Imputed",
            ReplyKind::Reject => "Reject",
        }
    }
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv_str(mut h: u64, s: &str) -> u64 {
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Reference protocol state for one client.
pub struct ClientModel {
    id: usize,
    window_intervals: usize,
    /// Last allocated seq (seqs are 1-based and monotone across session
    /// lineages — a fresh session after expiry does NOT reset them).
    last_seq: u64,
    /// Accepted-interval ordinal within the current imputer chain;
    /// resets only when the chain is abandoned (fresh session).
    chain_good: u64,
    /// Sent but unresolved seqs, with the predicted reply kind.
    pending: BTreeMap<u64, ReplyKind>,
    /// Resolved seqs with the exact reply frame (for duplicate checks
    /// and the run fingerprint). Bounded: [`evict_acked`] folds entries
    /// at or below the acked watermark into `fp_acc` and drops them.
    ///
    /// [`evict_acked`]: ClientModel::evict_acked
    resolved: BTreeMap<u64, Frame>,
    /// Fixed-basis incremental fingerprint of evicted replies, folded
    /// in seq order. Starting from a constant (not the caller's run
    /// hash) makes the client fingerprint independent of *when*
    /// eviction happens: `fold_fingerprint` folds the retained tail
    /// into a copy of this accumulator and only then combines with the
    /// run hash.
    fp_acc: u64,
    /// Every seq at or below this has been evicted: late duplicate
    /// replies for them are benign (the content check already passed
    /// once; the bytes are no longer held to re-compare).
    evicted_floor: u64,
    /// High-water mark of `resume_seq` values seen: the server's ingest
    /// watermark never moves backwards within an imputer chain.
    watermark: u64,
    violations: Vec<String>,
}

impl ClientModel {
    pub fn new(id: usize, window_intervals: usize) -> ClientModel {
        ClientModel {
            id,
            window_intervals,
            last_seq: 0,
            chain_good: 0,
            pending: BTreeMap::new(),
            resolved: BTreeMap::new(),
            fp_acc: FNV_OFFSET,
            evicted_floor: 0,
            watermark: 0,
            violations: Vec::new(),
        }
    }

    pub fn id(&self) -> usize {
        self.id
    }

    /// Allocate the next seq for a well-formed interval and predict its
    /// reply kind from the warm-up arithmetic. Sound because ingestion
    /// order equals allocation order: the transport is a FIFO stream,
    /// losses are burst suffixes, and resumption re-sends pending seqs
    /// in order before anything new.
    pub fn alloc_good(&mut self) -> u64 {
        self.last_seq += 1;
        let kind = if (self.chain_good as usize) < self.window_intervals.saturating_sub(1) {
            ReplyKind::Ack
        } else {
            ReplyKind::Imputed
        };
        self.chain_good += 1;
        self.pending.insert(self.last_seq, kind);
        self.last_seq
    }

    /// Allocate the next seq for a deliberately malformed interval
    /// (e.g. an unannounced port): the protocol owes a `Reject`, and
    /// the sliding window must NOT advance.
    pub fn alloc_bad(&mut self) -> u64 {
        self.last_seq += 1;
        self.pending.insert(self.last_seq, ReplyKind::Reject);
        self.last_seq
    }

    /// The `last_acked` value to present on resume: everything below
    /// the oldest pending seq has been processed (mirrors the loadgen
    /// client).
    pub fn last_acked(&self) -> u64 {
        self.pending.keys().next().map_or(self.last_seq, |&m| m - 1)
    }

    pub fn pending_seqs(&self) -> Vec<u64> {
        self.pending.keys().copied().collect()
    }

    pub fn pending_is_empty(&self) -> bool {
        self.pending.is_empty()
    }

    pub fn resolved_len(&self) -> usize {
        self.resolved.len()
    }

    pub fn violation(&mut self, v: String) {
        self.violations.push(v);
    }

    pub fn violations(&self) -> &[String] {
        &self.violations
    }

    /// Feed one seq-carrying reply. Checks exactly-once (duplicates
    /// must be identical), predicted kind, and that the seq was ever
    /// sent.
    pub fn on_reply(&mut self, f: &Frame) {
        let (seq, actual) = match f {
            Frame::Ack { seq, .. } => (*seq, "Ack"),
            Frame::Imputed { seq, .. } => (*seq, "Imputed"),
            Frame::Busy { seq, .. } => (*seq, "Busy"),
            Frame::Reject { seq, .. } => (*seq, "Reject"),
            other => {
                self.violations.push(format!(
                    "unexpected {} frame in reply position",
                    other.tag()
                ));
                return;
            }
        };
        if seq <= self.evicted_floor {
            // A stale duplicate of an evicted reply (e.g. a replay
            // burst racing an ack): it already passed the content check
            // before eviction, so accept it silently.
            return;
        }
        if let Some(prev) = self.resolved.get(&seq) {
            // Replays and dedup answers come from the replay log: the
            // bytes must be identical to the first resolution.
            if prev != f {
                self.violations.push(format!(
                    "seq {seq}: conflicting duplicate reply ({} then {})",
                    prev.tag(),
                    f.tag()
                ));
            }
            return;
        }
        let Some(pred) = self.pending.remove(&seq) else {
            self.violations
                .push(format!("{actual} reply for never-sent seq {seq}"));
            return;
        };
        if actual == "Busy" {
            // The explorer configures an effectively unbounded queue.
            self.violations
                .push(format!("seq {seq}: Busy under unbounded admission queue"));
        } else if pred.tag() != actual {
            self.violations.push(format!(
                "seq {seq}: reference model predicted {}, server sent {actual}",
                pred.tag()
            ));
        }
        self.resolved.insert(seq, f.clone());
    }

    /// Feed the `Welcome` of a (re)connect. Returns `Some(resume_seq)`
    /// when the session resumed and the caller must re-send every
    /// pending seq above it; `None` when the session is fresh (the
    /// model has reset its chain).
    pub fn on_welcome(
        &mut self,
        expect: ResumeExpect,
        resumed: Option<bool>,
        resume_seq: Option<u64>,
    ) -> Option<u64> {
        match expect {
            ResumeExpect::Fresh => {
                if resumed != Some(false) {
                    self.violations.push(format!(
                        "tokenless Hello answered with resumed={resumed:?} (want Some(false))"
                    ));
                }
                if let Some(r) = resume_seq {
                    self.violations
                        .push(format!("fresh session carries resume_seq={r}"));
                }
                None
            }
            ResumeExpect::Valid => {
                if resumed == Some(true) {
                    let r = resume_seq.unwrap_or_else(|| {
                        self.violations
                            .push("resumed session without resume_seq".into());
                        0
                    });
                    if r < self.watermark {
                        self.violations.push(format!(
                            "resume_seq regressed: {r} < prior watermark {}",
                            self.watermark
                        ));
                    }
                    if r > self.last_seq {
                        self.violations.push(format!(
                            "resume_seq {r} beyond last sent seq {}",
                            self.last_seq
                        ));
                    }
                    self.watermark = self.watermark.max(r);
                    Some(r)
                } else {
                    // A live token answered fresh: every pending reply
                    // this session was owed is gone.
                    self.violations.push(format!(
                        "session lost: valid resume token answered fresh, pending {:?}",
                        self.pending_seqs()
                    ));
                    self.reset_chain();
                    None
                }
            }
            ResumeExpect::Expired => {
                if resumed == Some(true) {
                    self.violations
                        .push("expired resume token resurrected a session".into());
                    return Some(resume_seq.unwrap_or(0));
                }
                if !self.pending.is_empty() {
                    // The explorer only expires settled sessions; pending
                    // here means the harness itself lost track.
                    self.violations.push(format!(
                        "expired with pending obligations {:?}",
                        self.pending_seqs()
                    ));
                }
                self.reset_chain();
                None
            }
        }
    }

    fn reset_chain(&mut self) {
        self.pending.clear();
        self.chain_good = 0;
        self.watermark = 0;
    }

    /// End-of-run completeness: after the final faultless drain, every
    /// sent seq must have been resolved exactly once.
    pub fn final_check(&mut self) {
        if !self.pending.is_empty() {
            self.violations.push(format!(
                "run ended with unresolved seqs {:?} (replay incomplete?)",
                self.pending_seqs()
            ));
        }
    }

    /// Evict every resolved reply at or below the acked watermark
    /// (nothing below the oldest pending seq can ever be re-compared:
    /// the client will not re-send it and a conforming server will not
    /// re-answer it except from the replay log). Evicted lines fold
    /// into the fixed-basis accumulator in seq order, so the final
    /// fingerprint is identical whether or not — and how often —
    /// eviction ran. This bounds the checker's memory by the pending
    /// span instead of the run length.
    pub fn evict_acked(&mut self) {
        let floor = self.last_acked();
        while let Some((&seq, _)) = self.resolved.first_key_value() {
            if seq > floor {
                break;
            }
            let f = self.resolved.remove(&seq).expect("first key exists");
            self.fp_acc = fnv_str(self.fp_acc, &self.line(seq, &f));
            self.evicted_floor = self.evicted_floor.max(seq);
        }
    }

    fn line(&self, seq: u64, f: &Frame) -> String {
        format!("c{}|{}|{}", self.id, seq, normalize(f))
    }

    /// Fold this client's resolved replies into a run fingerprint.
    /// Timing-sensitive fields (`latency_us`, `trace_id`) are excluded;
    /// everything else — series bytes, degradation levels, warm-up
    /// counts, reject reasons — must replay bitwise for a given seed.
    /// Internally: the retained tail is folded into a copy of the
    /// eviction accumulator (fixed basis), and that digest is folded
    /// into `h` — eviction timing cannot change the result.
    pub fn fold_fingerprint(&self, h: u64) -> u64 {
        let mut acc = self.fp_acc;
        for (seq, f) in &self.resolved {
            acc = fnv_str(acc, &self.line(*seq, f));
        }
        fnv_str(h, &format!("c{}|{acc:016x}", self.id))
    }

    /// Write every *retained* fingerprinted line to `w` — debugging aid
    /// for diffing two runs of the same seed (`FMML_SIMTEST_DUMP=1`).
    /// Evicted lines are summarized by the accumulator digest.
    pub fn dump(&self, w: &mut dyn std::io::Write) {
        if self.evicted_floor > 0 {
            let _ = writeln!(
                w,
                "c{}|..{}|evicted:{:016x}",
                self.id, self.evicted_floor, self.fp_acc
            );
        }
        for (seq, f) in &self.resolved {
            let _ = writeln!(w, "{}", self.line(*seq, f));
        }
    }
}

/// Semantic view of a reply for fingerprinting: deterministic fields
/// only.
fn normalize(f: &Frame) -> String {
    match f {
        Frame::Ack { buffered, .. } => format!("Ack:{buffered}"),
        Frame::Imputed {
            port,
            series,
            level,
            enforced,
            ..
        } => format!("Imputed:{port}:{level}:{enforced}:{series:?}"),
        Frame::Busy { .. } => "Busy".into(),
        Frame::Reject { reason, .. } => format!("Reject:{reason}"),
        other => format!("{other:?}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ack(seq: u64, buffered: usize) -> Frame {
        Frame::Ack { seq, buffered }
    }

    fn imputed(seq: u64, series: Vec<Vec<u32>>) -> Frame {
        Frame::Imputed {
            seq,
            port: 1,
            series,
            level: "full".into(),
            enforced: true,
            latency_us: 7,
            trace_id: None,
        }
    }

    #[test]
    fn warmup_arithmetic_predicts_ack_then_imputed() {
        let mut m = ClientModel::new(0, 3);
        let s1 = m.alloc_good();
        let s2 = m.alloc_good();
        let s3 = m.alloc_good();
        m.on_reply(&ack(s1, 1));
        m.on_reply(&ack(s2, 2));
        m.on_reply(&imputed(s3, vec![vec![1]]));
        assert!(m.violations().is_empty(), "{:?}", m.violations());
        // A fourth interval must be Imputed, not Ack.
        let s4 = m.alloc_good();
        m.on_reply(&ack(s4, 1));
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].contains("predicted Imputed"));
    }

    #[test]
    fn identical_duplicates_pass_conflicting_ones_fail() {
        let mut m = ClientModel::new(0, 2);
        let s1 = m.alloc_good();
        let r = ack(s1, 1);
        m.on_reply(&r);
        m.on_reply(&r); // replayed bitwise: fine
        assert!(m.violations().is_empty());
        m.on_reply(&ack(s1, 9)); // same seq, different content
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].contains("conflicting duplicate"));
    }

    #[test]
    fn reply_for_unsent_seq_is_flagged() {
        let mut m = ClientModel::new(0, 2);
        m.on_reply(&ack(42, 1));
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].contains("never-sent"));
    }

    #[test]
    fn valid_token_answered_fresh_is_session_loss() {
        let mut m = ClientModel::new(0, 3);
        m.alloc_good();
        assert!(m
            .on_welcome(ResumeExpect::Valid, Some(false), None)
            .is_none());
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].contains("session lost"));
        // The chain reset: warm-up restarts.
        assert!(m.pending_is_empty());
    }

    #[test]
    fn expired_token_must_not_resume() {
        let mut m = ClientModel::new(0, 3);
        m.on_welcome(ResumeExpect::Expired, Some(true), Some(4));
        assert!(m.violations()[0].contains("resurrected"));
    }

    #[test]
    fn resume_seq_must_be_monotone() {
        let mut m = ClientModel::new(0, 3);
        let s1 = m.alloc_good();
        m.on_reply(&ack(s1, 1));
        assert_eq!(
            m.on_welcome(ResumeExpect::Valid, Some(true), Some(1)),
            Some(1)
        );
        m.alloc_good();
        m.on_welcome(ResumeExpect::Valid, Some(true), Some(0));
        assert!(m
            .violations()
            .iter()
            .any(|v| v.contains("resume_seq regressed")));
    }

    #[test]
    fn final_check_flags_replay_gaps() {
        // The ReplayOffByOne shape: pending seq 1 is at or below
        // resume_seq, so the replay owes it — if the replay skips it,
        // nothing ever resolves it and the run ends incomplete.
        let mut m = ClientModel::new(0, 2);
        let s1 = m.alloc_good();
        let s2 = m.alloc_good();
        let r = m
            .on_welcome(ResumeExpect::Valid, Some(true), Some(2))
            .unwrap();
        assert_eq!(r, 2);
        // Replay (buggy) only delivers seq 2.
        m.on_reply(&imputed(s2, vec![vec![2]]));
        m.final_check();
        assert!(
            m.violations().iter().any(|v| v.contains(&format!("{s1}"))),
            "{:?}",
            m.violations()
        );
    }

    /// Satellite regression: evicting below the acked watermark keeps
    /// the resolved map bounded by the pending span and leaves the run
    /// fingerprint bit-identical to the never-evicting model — and late
    /// stale duplicates of evicted seqs are benign.
    #[test]
    fn acked_eviction_bounds_memory_without_changing_the_fingerprint() {
        let mut bounded = ClientModel::new(3, 3);
        let mut unbounded = ClientModel::new(3, 3);
        let mut max_resolved = 0usize;
        for round in 0..200u64 {
            let s = bounded.alloc_good();
            assert_eq!(unbounded.alloc_good(), s);
            let f = if round < 2 {
                ack(s, (round + 1) as usize)
            } else {
                imputed(s, vec![vec![round as u32, 7]])
            };
            bounded.on_reply(&f);
            unbounded.on_reply(&f);
            bounded.evict_acked();
            max_resolved = max_resolved.max(bounded.resolved_len());
        }
        assert!(
            max_resolved <= 1,
            "lockstep run must retain at most the newest reply, kept {max_resolved}"
        );
        assert!(unbounded.resolved_len() >= 200);
        assert_eq!(
            bounded.fold_fingerprint(0xfeed),
            unbounded.fold_fingerprint(0xfeed),
            "eviction changed the fingerprint"
        );
        // A stale duplicate of an evicted seq — even with different
        // timing fields — is accepted silently.
        bounded.on_reply(&ack(1, 1));
        assert!(
            bounded.violations().is_empty(),
            "{:?}",
            bounded.violations()
        );
    }

    #[test]
    fn fingerprint_ignores_latency_but_not_series() {
        let mut a = ClientModel::new(0, 2);
        let mut b = ClientModel::new(0, 2);
        let s = a.alloc_good();
        b.alloc_good();
        let mut fa = imputed(s, vec![vec![3, 4]]);
        let fb = imputed(s, vec![vec![3, 4]]);
        if let Frame::Imputed { latency_us, .. } = &mut fa {
            *latency_us = 999_999;
        }
        a.on_reply(&fa);
        b.on_reply(&fb);
        assert_eq!(a.fold_fingerprint(7), b.fold_fingerprint(7));

        let mut c = ClientModel::new(0, 2);
        c.alloc_good();
        c.on_reply(&imputed(s, vec![vec![5, 6]]));
        assert_ne!(a.fold_fingerprint(7), c.fold_fingerprint(7));
    }
}
