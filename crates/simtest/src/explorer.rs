//! Seeded schedule explorer: drives client-op interleavings against a
//! real server over the simulated transport and checks every reply with
//! [`ClientModel`].
//!
//! ## Determinism model
//!
//! The driver is single-threaded; the server is fully concurrent. The
//! bridge between them is a set of invariants that make the *observable
//! outcome* (violations + reply fingerprint) a pure function of the
//! seed, even though thread interleavings differ run to run:
//!
//! * **Duplex deaths happen at schedule points.** Every connection
//!   death is a driver `Kill` op. Profile-injected disconnects are
//!   excluded entirely (see [`derive_profile`]): a disconnect fate is
//!   keyed on racy inputs (dial count, a resume `Hello`'s `last_acked`),
//!   so whether it fires — and with it which clients are alive at later
//!   schedule points, and which seqs ever get allocated — would differ
//!   run to run. Reply-loss recovery is still fully exercised: `Kill`
//!   ops race in-flight replies, and whatever was lost converges back
//!   via the resume replay.
//! * **Only delay faults in explorer profiles.** Drop, duplication and
//!   disconnect exist in [`fmml_serve::sim`] (unit-tested there) but
//!   are excluded here by design: the protocol rides a TCP-like stream
//!   that never drops or duplicates *within* a connection, so a dropped
//!   frame on a live connection is unobservable to a correct client (it
//!   would wait forever), a duplicated `Interval` races the reader's
//!   dedup check against worker commit, and disconnect fates flip on
//!   racy content (above). Loss is modelled the way TCP loses data: the
//!   undelivered suffix of a killed connection. A delay fate is equally
//!   race-keyed but only moves *when* a frame arrives, never what is
//!   observed.
//! * **Racy sets converge.** Which in-flight replies beat a kill is a
//!   real race, but every outcome funnels into the same end state: a
//!   reply lost with the connection is replayed on resume (bitwise,
//!   from the replay log), a reply that survived is deduplicated by the
//!   checker's Frame-equality rule. The final faultless drain settles
//!   every client, so the resolved map — and the fingerprint folded
//!   over it — is seed-deterministic.
//!
//! The fingerprint excludes timing fields (`latency_us`, `trace_id`)
//! and folds everything else: series bytes, degradation levels, warm-up
//! counts, reject reasons, plus the violation count.

use crate::checker::{ClientModel, ResumeExpect};
use fmml_core::streaming::IntervalUpdate;
use fmml_core::transformer_imputer::{Scales, TransformerImputer};
use fmml_fault::ProcessFaultPlan;
use fmml_fm::cem::CemEngine;
use fmml_netsim::traffic::TrafficConfig;
use fmml_netsim::{SimConfig, Simulation};
use fmml_obs::{Clock, VirtualClock};
use fmml_serve::protocol::{encode_frame_with, write_frame, FrameReader, WireCodec, MAX_FRAME_LEN};
use fmml_serve::{
    spawn_with, Conn, Connector, FaultCounts, FaultProfile, Frame, ProtocolBug, ServerConfig,
    ServerHandle, SimConn, SimNet,
};
use fmml_telemetry::windows_from_trace;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

const INTERVAL_LEN: usize = 10;
const WINDOW_INTERVALS: usize = 3;
/// Parked-session TTL in the explorer's server config: far beyond any
/// schedule's organic time advance, so sessions expire *only* when the
/// `Expire` op advances the clock past it on purpose.
const PARKED_TTL: Duration = Duration::from_secs(3600);
/// Consecutive progress-free pump iterations (each advancing virtual
/// time 1 ms) before a wait is declared stalled.
const STALL_LIMIT: usize = 600;
/// Reconnect attempts before the harness gives up on a client (each
/// attempt dials a fresh connection with fresh fault fates).
const RESUME_ATTEMPTS: usize = 6;

/// Knobs for a simulation run (CLI: `fmml simtest`).
#[derive(Debug, Clone)]
pub struct SimtestConfig {
    /// How many consecutive seeds to explore.
    pub seeds: u64,
    /// First seed.
    pub start_seed: u64,
    /// Concurrent client sessions per seed.
    pub clients: usize,
    /// Schedule length (client ops per seed).
    pub ops: usize,
    /// Activate a deliberate server bug; the harness must catch it.
    pub inject_bug: Option<ProtocolBug>,
    /// Wire codec the driver's clients ask for. With [`WireCodec::Json`]
    /// the run is byte-identical to a pre-v2 client (no advertisement);
    /// with [`WireCodec::Bin1`] clients advertise and the server picks.
    /// Delay-only fault profiles never change observable reply content,
    /// so a seed's fingerprint is codec-independent — which the CI wire
    /// sweep asserts by running both.
    pub wire: WireCodec,
}

impl Default for SimtestConfig {
    fn default() -> SimtestConfig {
        SimtestConfig {
            seeds: 100,
            start_seed: 1,
            clients: 3,
            ops: 16,
            inject_bug: None,
            wire: WireCodec::Json,
        }
    }
}

/// Outcome of one explored seed.
#[derive(Debug, Clone)]
pub struct SeedOutcome {
    pub seed: u64,
    /// FNV fold over every client's resolved replies (semantic fields
    /// only) plus the violation count. Identical across runs of the
    /// same seed.
    pub fingerprint: u64,
    /// Protocol violations found by the reference model (empty on a
    /// correct server).
    pub violations: Vec<String>,
    /// Ground-truth injected-fault totals, for reports.
    pub faults: FaultCounts,
}

/// Explore `cfg.seeds` consecutive seeds, sequentially.
pub fn run(cfg: &SimtestConfig) -> Vec<SeedOutcome> {
    (cfg.start_seed..cfg.start_seed + cfg.seeds)
        .map(|seed| run_seed(seed, cfg))
        .collect()
}

pub(crate) fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

pub(crate) const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
pub(crate) const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Shared fixture: one deterministic imputer and a pool of real
/// telemetry interval updates (same geometry as the loopback suite).
/// Built once — `windows_from_trace` over a seeded simulation is pure,
/// and the imputer is stateless at inference time.
pub(crate) struct Fixture {
    pub(crate) model: Arc<TransformerImputer>,
    pub(crate) updates: Vec<IntervalUpdate>,
    pub(crate) port: usize,
    pub(crate) queues: usize,
}

pub(crate) fn fixture() -> &'static Fixture {
    static FX: OnceLock<Fixture> = OnceLock::new();
    FX.get_or_init(|| {
        let cfg = SimConfig::small();
        let model = Arc::new(TransformerImputer::new(
            3,
            Scales {
                qlen: cfg.buffer_packets as f32,
                count: 830.0,
            },
        ));
        let gt = Simulation::new(
            cfg.clone(),
            TrafficConfig::websearch_incast(cfg.num_ports, 0.6),
            19,
        )
        .run_ms(360);
        let ws: Vec<_> = windows_from_trace(
            &gt,
            INTERVAL_LEN * WINDOW_INTERVALS,
            INTERVAL_LEN,
            INTERVAL_LEN * WINDOW_INTERVALS,
        )
        .into_iter()
        .filter(|w| w.has_activity())
        .collect();
        let port = ws[0].port;
        let queues = ws[0].num_queues();
        let updates: Vec<IntervalUpdate> = ws
            .iter()
            .filter(|w| w.port == port)
            .flat_map(|w| (0..w.intervals()).map(move |k| IntervalUpdate::from_window(w, k)))
            .collect();
        assert!(!updates.is_empty(), "fixture produced no interval updates");
        Fixture {
            model,
            updates,
            port,
            queues,
        }
    })
}

/// Fields of the last `Welcome` a client saw, in wire order:
/// `(resumed, resume_seq, resume_token, codec)`.
type WelcomeInfo = (Option<bool>, Option<u64>, Option<String>, Option<String>);

/// Driver-side state of one simulated client.
pub(crate) struct Client {
    model: ClientModel,
    tx: Option<SimConn>,
    rx: Option<FrameReader<SimConn>>,
    /// The connection is known dead (read error / EOF / failed write).
    dead: bool,
    token: Option<String>,
    /// The token's parked state was aged past the TTL by an `Expire`
    /// op: the next handshake must come back fresh.
    expired_token: bool,
    /// Exact wire bytes of every sent `Interval`, keyed by seq — resent
    /// verbatim on resume for seqs above the server's watermark.
    sent_wire: BTreeMap<u64, Vec<u8>>,
    supply_idx: usize,
    /// Codec the server's `Welcome` picked for this lineage; every
    /// frame the client sends after the handshake is encoded with it.
    codec: WireCodec,
    welcome: Option<WelcomeInfo>,
    byeack: Option<(u64, u64)>,
    bye_sent: bool,
}

impl Client {
    pub(crate) fn new(id: usize) -> Client {
        Client {
            model: ClientModel::new(id, WINDOW_INTERVALS),
            tx: None,
            rx: None,
            dead: false,
            token: None,
            expired_token: false,
            sent_wire: BTreeMap::new(),
            supply_idx: 0,
            codec: WireCodec::Json,
            welcome: None,
            byeack: None,
            bye_sent: false,
        }
    }

    pub(crate) fn is_alive(&self) -> bool {
        self.tx.is_some() && !self.dead
    }

    /// Token that should still resolve to a parked session server-side.
    fn has_live_token(&self) -> bool {
        self.token.is_some() && !self.expired_token
    }

    fn dispatch(&mut self, f: Frame) {
        match f {
            Frame::Welcome {
                resumed,
                resume_seq,
                resume_token,
                codec,
                ..
            } => self.welcome = Some((resumed, resume_seq, resume_token, codec)),
            Frame::Ack { .. }
            | Frame::Imputed { .. }
            | Frame::Busy { .. }
            | Frame::Reject { .. } => {
                self.model.on_reply(&f);
                // Bound both checker and re-send memory by the pending
                // span: nothing at or below the acked watermark is ever
                // re-sent or re-compared.
                self.model.evict_acked();
                let floor = self.model.last_acked();
                self.sent_wire.retain(|&s, _| s > floor);
            }
            Frame::ByeAck {
                answered,
                remaining,
            } => self.byeack = Some((answered, remaining)),
            Frame::Error { code, message } => self
                .model
                .violation(format!("server Error [{code}]: {message}")),
            Frame::StatsReply { .. } | Frame::MetricsReply { .. } => {}
            other => self.model.violation(format!(
                "client received server-bound frame {}",
                other.tag()
            )),
        }
    }

    fn drop_conn(&mut self) {
        if let Some(tx) = &self.tx {
            tx.shutdown_both();
        }
        self.tx = None;
        self.rx = None;
        self.dead = true;
    }
}

pub(crate) struct World {
    pub(crate) net: SimNet,
    /// `None` in the (real-clock) scripted bug scenario.
    pub(crate) vc: Option<Arc<VirtualClock>>,
    pub(crate) clients: Vec<Client>,
    pub(crate) violations: Vec<String>,
    /// Real time slept per idle pump iteration. Zero for the
    /// single-node explorer (everything it waits on runs on virtual
    /// time or its own threads); nonzero for the cluster explorer,
    /// whose router heals placements on *real*-time retry/probe
    /// budgets — idle iterations must let real time pass or a healthy
    /// migration gets declared a stall.
    pub(crate) real_idle: Duration,
    /// Consecutive progress-free pump iterations before a stall.
    pub(crate) stall_limit: usize,
    /// Codec the drivers advertise in their `Hello`s.
    pub(crate) wire: WireCodec,
}

impl World {
    /// Drain every readable frame from every live client. Returns
    /// whether anything arrived. Also the aliveness probe: a killed
    /// duplex surfaces as EOF here, so by the next schedule point the
    /// driver's view of which connections are alive is deterministic.
    pub(crate) fn pump_once(&mut self) -> bool {
        let mut progress = false;
        for c in &mut self.clients {
            if !c.is_alive() {
                continue;
            }
            while let Some(rx) = c.rx.as_mut() {
                let polled = rx.poll_frame();
                match polled {
                    Ok(Some(f)) => {
                        progress = true;
                        c.dispatch(f);
                    }
                    Ok(None) => break,
                    Err(_) => {
                        c.dead = true;
                        break;
                    }
                }
            }
        }
        progress
    }

    /// Pump until `pred` holds, advancing virtual time 1 ms per idle
    /// iteration (releasing delayed frames, firing batch waits and
    /// restart backoffs). `false` = stalled: `STALL_LIMIT` consecutive
    /// iterations with nothing readable and the predicate still false.
    pub(crate) fn pump_until<F: Fn(&World) -> bool>(&mut self, pred: F) -> bool {
        let mut idle = 0usize;
        loop {
            if pred(self) {
                return true;
            }
            if self.pump_once() {
                idle = 0;
                continue;
            }
            idle += 1;
            if idle > self.stall_limit {
                return false;
            }
            match &self.vc {
                Some(vc) => vc.advance(Duration::from_millis(1)),
                None => std::thread::sleep(Duration::from_micros(500)),
            }
            if !self.real_idle.is_zero() {
                std::thread::sleep(self.real_idle);
            }
        }
    }

    /// Like [`World::pump_until`], but a stall is only declared once
    /// `real_min` wall time has also elapsed. For waits whose other
    /// side runs on a real-time budget: a resume handshake is answered
    /// only after the server's `resume_claim_wait` poll gives up, so
    /// the client must outwait that budget or a slow park looks like a
    /// dead connection.
    fn pump_until_patient<F: Fn(&World) -> bool>(&mut self, pred: F, real_min: Duration) -> bool {
        let t0 = Instant::now();
        let mut idle = 0usize;
        loop {
            if pred(self) {
                return true;
            }
            if self.pump_once() {
                idle = 0;
                continue;
            }
            idle += 1;
            if idle > self.stall_limit && t0.elapsed() > real_min {
                return false;
            }
            match &self.vc {
                Some(vc) => vc.advance(Duration::from_millis(1)),
                None => std::thread::sleep(Duration::from_micros(500)),
            }
            if !self.real_idle.is_zero() {
                std::thread::sleep(self.real_idle);
            }
        }
    }

    /// Pump until every live client has no pending obligations (a dead
    /// client's obligations wait for its resume).
    pub(crate) fn settle(&mut self) -> bool {
        self.pump_until(|w| {
            w.clients
                .iter()
                .all(|c| !c.is_alive() || c.model.pending_is_empty())
        })
    }

    /// (Re)connect client `i`, with retries — each attempt is a fresh
    /// connection with fresh fault fates, so a Hello eaten by a
    /// mid-write disconnect just costs an attempt.
    pub(crate) fn handshake(&mut self, i: usize) -> bool {
        for _ in 0..RESUME_ATTEMPTS {
            if self.try_handshake(i) {
                return true;
            }
        }
        self.violations.push(format!(
            "client {i}: handshake failed after {RESUME_ATTEMPTS} attempts"
        ));
        false
    }

    fn try_handshake(&mut self, i: usize) -> bool {
        let fx = fixture();
        let conn = match self.net.connector().connect() {
            Ok(c) => c,
            Err(_) => return false,
        };
        // Fast poll granularity: the driver advances time itself.
        let _ = conn.set_read_timeout(Some(Duration::from_micros(100)));
        let read_half = match conn.try_clone() {
            Ok(c) => c,
            Err(_) => return false,
        };
        let (token, expect) = {
            let c = &self.clients[i];
            match (&c.token, c.expired_token) {
                (Some(t), false) => (Some(t.clone()), ResumeExpect::Valid),
                (Some(t), true) => (Some(t.clone()), ResumeExpect::Expired),
                (None, _) => (None, ResumeExpect::Fresh),
            }
        };
        let last_acked = token.as_ref().map(|_| self.clients[i].model.last_acked());
        let hello = Frame::Hello {
            tenant: format!("c{i}"),
            ports: vec![fx.port],
            queues: fx.queues,
            interval_len: INTERVAL_LEN,
            window_intervals: WINDOW_INTERVALS,
            resume_token: token,
            last_acked,
            codecs: (self.wire == WireCodec::Bin1).then(WireCodec::advertise),
        };
        let mut tx = conn;
        if write_frame(&mut tx, &hello).is_err() {
            return false;
        }
        {
            let c = &mut self.clients[i];
            c.tx = Some(tx);
            c.rx = Some(FrameReader::new(read_half));
            c.dead = false;
            c.welcome = None;
        }
        self.pump_until_patient(
            |w| w.clients[i].welcome.is_some() || w.clients[i].dead,
            Duration::from_millis(400),
        );
        let welcome = self.clients[i].welcome.take();
        let Some((resumed, resume_seq, new_token, codec)) = welcome else {
            // Died or stalled mid-handshake. A resumed session was
            // re-parked server-side under the same token, so retrying
            // is safe.
            self.clients[i].drop_conn();
            return false;
        };
        let c = &mut self.clients[i];
        // Speak whatever the Welcome picked (a resumed lineage restates
        // its birth codec; a fresh one reflects the negotiation).
        c.codec = codec
            .as_deref()
            .and_then(WireCodec::parse)
            .unwrap_or_default();
        match c.model.on_welcome(expect, resumed, resume_seq) {
            Some(r) => {
                // Replay covers seqs <= r; everything pending above it
                // is the client's to re-send, verbatim, in seq order.
                let resend: Vec<Vec<u8>> = c
                    .model
                    .pending_seqs()
                    .into_iter()
                    .filter(|s| *s > r)
                    .filter_map(|s| c.sent_wire.get(&s).cloned())
                    .collect();
                for bytes in resend {
                    let Some(tx) = c.tx.as_mut() else { break };
                    if tx.write_all(&bytes).is_err() {
                        c.dead = true;
                        break;
                    }
                }
            }
            None => {
                // Fresh lineage (first connect, or expiry): nothing
                // from the old lineage can ever be re-sent.
                c.sent_wire.clear();
            }
        }
        match new_token {
            Some(t) => c.token = Some(t),
            None => c.model.violation("Welcome carried no resume token".into()),
        }
        c.expired_token = false;
        true
    }

    /// Send `n` well-formed intervals on client `i`'s live connection.
    pub(crate) fn burst(&mut self, i: usize, n: usize) {
        let fx = fixture();
        for _ in 0..n {
            let c = &mut self.clients[i];
            if !c.is_alive() {
                break;
            }
            let seq = c.model.alloc_good();
            let update = fx.updates[c.supply_idx % fx.updates.len()].clone();
            c.supply_idx += 1;
            let bytes = encode_frame_with(
                &Frame::Interval {
                    seq,
                    update,
                    trace_id: None,
                },
                c.codec,
                MAX_FRAME_LEN,
            )
            .expect("encode interval");
            c.sent_wire.insert(seq, bytes.clone());
            let Some(tx) = c.tx.as_mut() else { break };
            if tx.write_all(&bytes).is_err() {
                c.dead = true;
                break;
            }
        }
    }

    /// Send one interval for a port the session never announced: the
    /// protocol owes a typed `Reject` and must not advance the window.
    pub(crate) fn send_bad(&mut self, i: usize) {
        let fx = fixture();
        let c = &mut self.clients[i];
        if !c.is_alive() {
            return;
        }
        let seq = c.model.alloc_bad();
        let mut update = fx.updates[c.supply_idx % fx.updates.len()].clone();
        c.supply_idx += 1;
        update.port = fx.port + 1000;
        let bytes = encode_frame_with(
            &Frame::Interval {
                seq,
                update,
                trace_id: None,
            },
            c.codec,
            MAX_FRAME_LEN,
        )
        .expect("encode interval");
        c.sent_wire.insert(seq, bytes.clone());
        let Some(tx) = c.tx.as_mut() else { return };
        if tx.write_all(&bytes).is_err() {
            c.dead = true;
        }
    }

    /// Hard-kill client `i`'s connection (both directions, undelivered
    /// data lost) — the crash the resume protocol exists for.
    pub(crate) fn kill(&mut self, i: usize) {
        self.clients[i].drop_conn();
    }

    pub(crate) fn advance_small(&mut self, aux: u64) {
        if let Some(vc) = &self.vc {
            vc.advance(Duration::from_millis(1 + aux % 20));
        }
        self.pump_once();
    }

    /// Age every parked session past the TTL. Only *clean* sessions may
    /// be parked when the clock jumps: expiry deletes the replay log,
    /// so expiring a session that is still owed replies would turn a
    /// harness choice into a fake protocol violation. Hence: resume
    /// every dead client first, settle, then park one clean target.
    fn expire(&mut self, handle: &ServerHandle<SimConn>, target: usize) {
        for i in 0..self.clients.len() {
            if !self.clients[i].is_alive() && self.clients[i].has_live_token() {
                let _ = self.handshake(i);
            }
        }
        self.settle();
        let has_parked = self
            .clients
            .iter()
            .any(|c| !c.is_alive() && c.has_live_token());
        if !has_parked {
            if !(self.clients[target].is_alive() && self.clients[target].has_live_token()) {
                return;
            }
            self.kill(target);
        }
        let expected: Vec<String> = self
            .clients
            .iter()
            .filter(|c| !c.is_alive() && c.has_live_token())
            .filter_map(|c| c.token.clone())
            .collect();
        if expected.is_empty() {
            return;
        }
        // The park happens on the server's reader thread when it sees
        // the EOF — real time, so wait for it in real time (bounded).
        // Wait for the *specific* tokens: `parked_count` alone can be
        // satisfied by a stale entry from an earlier expiry, and jumping
        // the clock before the fresh park lands would leave that park
        // with a post-jump timestamp — an accidental resurrection.
        let deadline = Instant::now() + Duration::from_secs(2);
        while !expected.iter().all(|t| handle.parked_contains(t)) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(1));
        }
        let Some(vc) = &self.vc else { return };
        vc.advance(PARKED_TTL + Duration::from_secs(2));
        for c in &mut self.clients {
            if !c.is_alive() && c.token.is_some() {
                c.expired_token = true;
            }
        }
    }

    /// Faultless end-of-run drain: resume every dead client, settle,
    /// and force kill+resume cycles for anything stuck (a stuck seq
    /// that survives replay cycles is exactly what the replay-bug
    /// detector looks for). Then `Bye` every live session and run the
    /// completeness checks.
    pub(crate) fn final_drain(&mut self) {
        self.net.set_profile(FaultProfile::none());
        for i in 0..self.clients.len() {
            for _cycle in 0..3 {
                if !self.clients[i].is_alive() {
                    let c = &self.clients[i];
                    if c.token.is_none() || (c.expired_token && c.model.pending_is_empty()) {
                        break; // nothing owed; stays down
                    }
                    if !self.handshake(i) {
                        break; // violation already recorded
                    }
                }
                self.pump_until(|w| {
                    !w.clients[i].is_alive() || w.clients[i].model.pending_is_empty()
                });
                let c = &self.clients[i];
                if c.is_alive() && c.model.pending_is_empty() {
                    break;
                }
                if c.is_alive() {
                    // Stuck: force a re-park + resume so the replay
                    // path gets another chance (or proves broken).
                    self.kill(i);
                }
            }
        }
        for c in &mut self.clients {
            if !c.is_alive() {
                continue;
            }
            c.byeack = None;
            let bytes = encode_frame_with(&Frame::Bye, c.codec, MAX_FRAME_LEN).expect("encode bye");
            let Some(tx) = c.tx.as_mut() else { continue };
            if tx.write_all(&bytes).is_err() {
                c.dead = true;
                continue;
            }
            c.bye_sent = true;
        }
        self.pump_until(|w| {
            w.clients
                .iter()
                .all(|c| !c.bye_sent || c.byeack.is_some() || !c.is_alive())
        });
        for c in &mut self.clients {
            if !c.bye_sent {
                continue;
            }
            match c.byeack {
                Some((_answered, remaining)) => {
                    if remaining != 0 {
                        c.model.violation(format!(
                            "ByeAck reports remaining={remaining} after full settle"
                        ));
                    }
                }
                None => c
                    .model
                    .violation("Bye sent on the faultless drain but no ByeAck".into()),
            }
        }
        for c in &mut self.clients {
            c.model.final_check();
        }
    }

    pub(crate) fn into_outcome(self, seed: u64) -> SeedOutcome {
        let faults = self.net.fault_counts();
        let mut violations = self.violations;
        for c in &self.clients {
            for v in c.model.violations() {
                violations.push(format!("client {}: {v}", c.model.id()));
            }
        }
        let mut fp = FNV_OFFSET;
        for c in &self.clients {
            fp = c.model.fold_fingerprint(fp);
            if std::env::var_os("FMML_SIMTEST_DUMP").is_some() {
                c.model.dump(&mut std::io::stderr().lock());
            }
        }
        fp ^= violations.len() as u64;
        fp = fp.wrapping_mul(FNV_PRIME);
        SeedOutcome {
            seed,
            fingerprint: fp,
            violations,
            faults,
        }
    }
}

/// Seed-derived transport fault profile: virtual-time delays only (see
/// the module docs for why the other fault kinds are excluded here).
///
/// Notably, even client→server *disconnect* fates are excluded: a fate
/// is keyed on (conn id, frame bytes, occurrence), and both the dial
/// count and a resume `Hello`'s `last_acked` field depend on how many
/// replies happened to land before the schedule point — real-time
/// races. A flipped disconnect fate changes which clients are alive at
/// later schedule points and therefore which seqs ever get allocated:
/// two runs of the same seed would both be protocol-clean yet resolve
/// different sets. Connection deaths must come only from the driver's
/// own `kill` ops, which happen at schedule points. Delay fates are
/// also race-keyed, but a delay only moves *when* a frame arrives, and
/// every observable reply converges regardless of timing.
pub(crate) fn derive_profile(rng: &mut u64) -> FaultProfile {
    let delay_choices = [0u32, 500, 1500, 3000];
    FaultProfile {
        drop_per_10k: 0,
        dup_per_10k: 0,
        reorder_per_10k: 0,
        delay_per_10k: delay_choices[(splitmix64(rng) % 4) as usize],
        max_delay: Duration::from_millis(1 + splitmix64(rng) % 15),
        disconnect_per_10k: 0,
        disconnect_c2s_only: true,
        // Partition fates are race-keyed like disconnects (see above);
        // partitions come only from the driver's own schedule ops.
        partition_per_10k: 0,
        partition_heal: Duration::ZERO,
    }
}

pub(crate) fn explorer_server_config(
    clock: Clock,
    process_faults: ProcessFaultPlan,
) -> ServerConfig {
    ServerConfig {
        workers: 1,
        jobs: 1,
        engine: CemEngine::Fast,
        // Generous virtual deadline: the ladder never degrades on time
        // pressure, keeping reply levels seed-deterministic.
        deadline: Duration::from_secs(10),
        ladder_deadline: false,
        max_batch: 4,
        batch_wait: Duration::from_millis(1),
        // Effectively unbounded admission: any `Busy` is a violation.
        queue_depth: 4096,
        read_timeout: Duration::from_millis(5),
        // Panicking workers restart fast and forever (panic plans fire
        // repeatedly); determinism is unaffected because replies are
        // content-deterministic regardless of batching.
        max_restarts: 1000,
        restart_backoff: Duration::from_millis(2),
        restart_backoff_cap: Duration::from_millis(20),
        // No forced replay-log evictions and no parked-capacity
        // evictions at explorer scale.
        replay_window: 4096,
        max_parked: 16,
        parked_ttl: PARKED_TTL,
        // The server's patience for a park to land before a resume is
        // answered fresh. Park landing needs the old reader thread to
        // be scheduled — tens of ms under CPU contention — and a miss
        // here surfaces as a spurious "session lost". The condvar wakes
        // the claim the moment the park lands, so this budget is only
        // fully spent on expired tokens; the driver's handshake wait
        // (`pump_until_patient`, 400 ms) must outlast it.
        resume_claim_wait: Duration::from_millis(150),
        // The breaker guards the SMT rung, unused under `Fast` — and it
        // would drag in process-global clock state.
        breaker: None,
        process_faults,
        clock,
        injected_bug: None,
        ..ServerConfig::default()
    }
}

/// Explore one seed. With `inject_bug` set this instead runs the
/// scripted replay-gap scenario (see [`run_bug_scenario`]), which is
/// deterministic down to the violation text.
pub fn run_seed(seed: u64, cfg: &SimtestConfig) -> SeedOutcome {
    if let Some(bug) = cfg.inject_bug {
        return run_bug_scenario(seed, bug);
    }
    let fx = fixture();
    let (clock, vc) = Clock::new_virtual();
    let net = SimNet::new(seed, clock.clone());
    let mut rng = seed ^ 0x6c07_9768_25e6_cd21;

    let profile = derive_profile(&mut rng);
    let mut pf = ProcessFaultPlan::none();
    pf.worker_panic_every = [0u64, 0, 3, 5][(splitmix64(&mut rng) % 4) as usize];

    let mut server_cfg = explorer_server_config(clock, pf);
    server_cfg.wire = cfg.wire;
    let handle = spawn_with(net.transport(), Arc::clone(&fx.model), server_cfg);
    let mut world = World {
        net: net.clone(),
        vc: Some(Arc::clone(&vc)),
        clients: (0..cfg.clients).map(Client::new).collect(),
        violations: Vec::new(),
        real_idle: Duration::ZERO,
        stall_limit: STALL_LIMIT,
        wire: cfg.wire,
    };
    // Initial handshakes run before the fault profile is armed: every
    // session lineage starts from a clean Welcome.
    for i in 0..cfg.clients {
        world.handshake(i);
    }
    world.net.set_profile(profile);

    for _ in 0..cfg.ops {
        // Exactly three draws per op, unconditionally: the random
        // stream never depends on world state, so the schedule is a
        // pure function of the seed.
        let r = splitmix64(&mut rng) % 100;
        let i = (splitmix64(&mut rng) as usize) % cfg.clients.max(1);
        let aux = splitmix64(&mut rng);
        // Surface any duplex deaths before branching on aliveness.
        world.pump_once();
        if r < 35 {
            if world.clients[i].is_alive() || world.handshake(i) {
                world.burst(i, 1 + (aux % 3) as usize);
            }
        } else if r < 55 {
            world.settle();
        } else if r < 70 {
            if world.clients[i].is_alive() {
                world.kill(i);
            }
        } else if r < 85 {
            if world.clients[i].is_alive() {
                world.advance_small(aux);
            } else {
                world.handshake(i);
            }
        } else if r < 92 {
            if world.clients[i].is_alive() || world.handshake(i) {
                world.send_bad(i);
            }
        } else if r < 97 {
            world.advance_small(aux);
        } else {
            world.expire(&handle, i);
        }
    }

    world.final_drain();
    if vc.valve_trips() > 0 {
        world.violations.push(format!(
            "virtual-clock valve tripped {}x (a sleeper waited >5s real time)",
            vc.valve_trips()
        ));
    }
    let _ = handle.shutdown();
    net.close();
    world.into_outcome(seed)
}

/// Scripted detector scenario for an injected protocol bug, built so
/// the caught violation is identical on every run (no races, no
/// faults, real clock):
///
/// 1. settle a warm session (seqs 1–3 resolved),
/// 2. send two more intervals and wait — via server-side counters, not
///    the wire — until both replies are *recorded*,
/// 3. hard-kill the connection before reading them: the client now
///    presents `last_acked = 3` and both seqs sit at or below the
///    server's watermark, squarely in replay territory,
/// 4. resume. A correct server replays 4 and 5; `ReplayOffByOne`
///    silently skips 4, which no drain cycle can ever recover (the
///    client must not re-send a seq the watermark says was ingested) —
///    the completeness check reports it.
fn run_bug_scenario(seed: u64, bug: ProtocolBug) -> SeedOutcome {
    let fx = fixture();
    let net = SimNet::new(seed, Clock::System);
    let mut server_cfg = explorer_server_config(Clock::System, ProcessFaultPlan::none());
    server_cfg.injected_bug = Some(bug);
    // Real clock here: TTL and backoffs must be real-time sane.
    server_cfg.parked_ttl = Duration::from_secs(30);
    let handle = spawn_with(net.transport(), Arc::clone(&fx.model), server_cfg);
    let mut world = World {
        net: net.clone(),
        vc: None,
        clients: vec![Client::new(0)],
        violations: Vec::new(),
        real_idle: Duration::ZERO,
        stall_limit: STALL_LIMIT,
        wire: WireCodec::Json,
    };
    world.handshake(0);
    world.burst(0, 3);
    world.settle();
    let base = stats_replies(&handle);
    world.burst(0, 2);
    let deadline = Instant::now() + Duration::from_secs(5);
    while stats_replies(&handle) < base + 2 && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    world.kill(0);
    world.final_drain();
    let _ = handle.shutdown();
    net.close();
    world.into_outcome(seed)
}

fn stats_replies(handle: &ServerHandle<SimConn>) -> u64 {
    match handle.stats() {
        Frame::StatsReply { replies, .. } => replies,
        _ => 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> SimtestConfig {
        SimtestConfig {
            seeds: 1,
            start_seed: 1,
            clients: 3,
            ops: 12,
            inject_bug: None,
            wire: WireCodec::Json,
        }
    }

    /// A correct server survives fault schedules with zero violations,
    /// and the same seed reproduces the same fingerprint bitwise.
    #[test]
    fn clean_seeds_are_violation_free_and_deterministic() {
        let cfg = quick_cfg();
        for seed in [11, 12, 13] {
            let a = run_seed(seed, &cfg);
            assert!(
                a.violations.is_empty(),
                "seed {seed} violations: {:?}",
                a.violations
            );
            let b = run_seed(seed, &cfg);
            assert_eq!(
                a.fingerprint, b.fingerprint,
                "seed {seed} fingerprint not reproducible"
            );
            assert_eq!(a.violations, b.violations);
        }
    }

    /// The wire codec is a transport detail: the same seed lands on the
    /// same reply fingerprint whether sessions negotiate bin1 or stay
    /// on JSON, and bin1 runs stay violation-free.
    #[test]
    fn bin1_seeds_reproduce_json_fingerprints() {
        let json_cfg = quick_cfg();
        let bin_cfg = SimtestConfig {
            wire: WireCodec::Bin1,
            ..quick_cfg()
        };
        for seed in [11, 12] {
            let j = run_seed(seed, &json_cfg);
            let b = run_seed(seed, &bin_cfg);
            assert!(
                b.violations.is_empty(),
                "seed {seed} bin1 violations: {:?}",
                b.violations
            );
            assert_eq!(
                j.fingerprint, b.fingerprint,
                "seed {seed} fingerprint depends on the wire codec"
            );
        }
    }

    /// The harness must catch a deliberately broken replay — and catch
    /// it identically on a re-run of the same seed.
    #[test]
    fn injected_replay_bug_is_caught_and_reproduced() {
        let cfg = SimtestConfig {
            inject_bug: Some(ProtocolBug::ReplayOffByOne),
            ..quick_cfg()
        };
        let a = run_seed(7, &cfg);
        assert!(
            !a.violations.is_empty(),
            "injected ReplayOffByOne was not caught"
        );
        assert!(
            a.violations.iter().any(|v| v.contains("unresolved")),
            "expected a completeness violation, got {:?}",
            a.violations
        );
        let b = run_seed(7, &cfg);
        assert_eq!(a.fingerprint, b.fingerprint);
        assert_eq!(a.violations, b.violations);
    }
}
