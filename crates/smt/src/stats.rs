//! Public search statistics.
//!
//! The SAT core tallies its own work; [`crate::Solver::stats`] merges in
//! the theory side (simplex pivots, lazy-loop iterations). The struct is
//! plain data so callers — the CEM engine, benches, the CLI's metrics
//! bridge — can diff snapshots taken before and after a `check` without
//! holding references into the solver.

/// Cumulative counters of solver work since construction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Branching decisions made by the SAT core.
    pub decisions: u64,
    /// Literals enqueued by unit propagation.
    pub propagations: u64,
    /// Conflicts analyzed (first-UIP).
    pub conflicts: u64,
    /// Luby restarts taken.
    pub restarts: u64,
    /// Clauses learned from conflicts (including learned units).
    pub learned_clauses: u64,
    /// Simplex pivots in the LIA theory solver.
    pub simplex_pivots: u64,
    /// Lazy CDCL(T) refinement iterations across all `check` calls.
    pub iterations: u64,
}

impl SolverStats {
    pub const fn new() -> SolverStats {
        SolverStats {
            decisions: 0,
            propagations: 0,
            conflicts: 0,
            restarts: 0,
            learned_clauses: 0,
            simplex_pivots: 0,
            iterations: 0,
        }
    }

    /// Component-wise difference (`self` minus an earlier snapshot).
    /// Saturates at zero so a reset-free caller can never underflow.
    pub fn delta_since(&self, earlier: &SolverStats) -> SolverStats {
        SolverStats {
            decisions: self.decisions.saturating_sub(earlier.decisions),
            propagations: self.propagations.saturating_sub(earlier.propagations),
            conflicts: self.conflicts.saturating_sub(earlier.conflicts),
            restarts: self.restarts.saturating_sub(earlier.restarts),
            learned_clauses: self.learned_clauses.saturating_sub(earlier.learned_clauses),
            simplex_pivots: self.simplex_pivots.saturating_sub(earlier.simplex_pivots),
            iterations: self.iterations.saturating_sub(earlier.iterations),
        }
    }
}
