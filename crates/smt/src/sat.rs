//! A CDCL SAT solver: two-watched-literal propagation, VSIDS decisions,
//! first-UIP clause learning, phase saving, Luby restarts, and a conflict
//! budget.
//!
//! The solver is used incrementally by the lazy SMT loop: clauses (theory
//! lemmas, objective bounds) may be added between `solve()` calls; the
//! solver backtracks to the root level on every entry.

use std::fmt;

use crate::stats::SolverStats;

/// A propositional variable, numbered from 0.
pub type Var = u32;

/// A literal: variable + sign, packed as `var << 1 | negated`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(u32);

impl Lit {
    pub fn pos(v: Var) -> Lit {
        Lit(v << 1)
    }

    pub fn neg(v: Var) -> Lit {
        Lit((v << 1) | 1)
    }

    pub fn new(v: Var, negated: bool) -> Lit {
        Lit((v << 1) | negated as u32)
    }

    pub fn var(self) -> Var {
        self.0 >> 1
    }

    pub fn is_neg(self) -> bool {
        self.0 & 1 == 1
    }

    #[must_use]
    pub fn negate(self) -> Lit {
        Lit(self.0 ^ 1)
    }

    fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}{}", if self.is_neg() { "-" } else { "" }, self.var())
    }
}

/// Three-valued assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// Result of a SAT search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveResult {
    Sat,
    Unsat,
    /// Conflict budget exhausted.
    Unknown,
}

type ClauseRef = u32;

struct Clause {
    lits: Vec<Lit>,
    /// Learnt clauses could be garbage-collected under memory pressure;
    /// retained unconditionally at current problem sizes.
    #[allow(dead_code)]
    learnt: bool,
}

/// The CDCL solver.
pub struct SatSolver {
    clauses: Vec<Clause>,
    /// `watches[lit.index()]`: clauses watching `lit`.
    watches: Vec<Vec<ClauseRef>>,
    assign: Vec<LBool>,
    /// Saved phase for decision polarity.
    phase: Vec<bool>,
    level: Vec<u32>,
    reason: Vec<Option<ClauseRef>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    /// VSIDS activity.
    activity: Vec<f64>,
    var_inc: f64,
    /// Root-level inconsistency discovered during clause addition.
    unsat: bool,
    /// Conflicts allowed per `solve` call (None = unbounded).
    budget: Option<u64>,
    stats: SolverStats,
    // Scratch for conflict analysis.
    seen: Vec<bool>,
}

const VAR_DECAY: f64 = 0.95;
const RESCALE_LIMIT: f64 = 1e100;

impl Default for SatSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl SatSolver {
    pub fn new() -> SatSolver {
        SatSolver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            phase: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            unsat: false,
            budget: None,
            stats: SolverStats::new(),
            seen: Vec::new(),
        }
    }

    /// Allocate a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = self.assign.len() as Var;
        self.assign.push(LBool::Undef);
        self.phase.push(false);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Total conflicts across all `solve` calls (for reporting).
    pub fn conflicts(&self) -> u64 {
        self.stats.conflicts
    }

    /// Cumulative search statistics (SAT-core fields only; the theory
    /// fields are filled in by [`crate::Solver::stats`]).
    pub fn stats(&self) -> &SolverStats {
        &self.stats
    }

    /// Limit the number of conflicts per `solve` call.
    pub fn set_conflict_budget(&mut self, budget: Option<u64>) {
        self.budget = budget;
    }

    fn value_lit(&self, l: Lit) -> LBool {
        match self.assign[l.var() as usize] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if l.is_neg() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
            LBool::False => {
                if l.is_neg() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
        }
    }

    /// The model value of a variable after `solve` returned `Sat`.
    /// Unassigned variables (don't-cares) read as `false`.
    pub fn model_value(&self, v: Var) -> bool {
        matches!(self.assign[v as usize], LBool::True)
    }

    /// Add a clause; returns `false` if the solver became trivially unsat.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        if self.unsat {
            return false;
        }
        self.backtrack_to(0);
        // Simplify: drop duplicates and false literals, detect tautologies
        // and satisfied clauses at the root level.
        let mut c: Vec<Lit> = Vec::with_capacity(lits.len());
        let mut sorted = lits.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        for (i, &l) in sorted.iter().enumerate() {
            if i + 1 < sorted.len() && sorted[i + 1] == l.negate() {
                return true; // tautology
            }
            match self.value_lit(l) {
                LBool::True => return true, // already satisfied at root
                LBool::False => {}          // drop falsified literal
                LBool::Undef => c.push(l),
            }
        }
        match c.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.enqueue(c[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                    false
                } else {
                    true
                }
            }
            _ => {
                self.attach_clause(c, false);
                true
            }
        }
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool) -> ClauseRef {
        debug_assert!(lits.len() >= 2);
        let cr = self.clauses.len() as ClauseRef;
        self.watches[lits[0].negate().index()].push(cr);
        self.watches[lits[1].negate().index()].push(cr);
        self.clauses.push(Clause { lits, learnt });
        cr
    }

    fn enqueue(&mut self, l: Lit, reason: Option<ClauseRef>) {
        debug_assert_eq!(self.value_lit(l), LBool::Undef);
        let v = l.var() as usize;
        self.assign[v] = if l.is_neg() {
            LBool::False
        } else {
            LBool::True
        };
        self.phase[v] = !l.is_neg();
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.trail.push(l);
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Unit propagation; returns the conflicting clause if any.
    fn propagate(&mut self) -> Option<ClauseRef> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            // Clauses watching p (i.e. containing ¬p as watched literal
            // candidate) — we store watchers under the literal that, when
            // *assigned true*, might falsify the watched literal.
            let mut i = 0;
            let mut watchers = std::mem::take(&mut self.watches[p.index()]);
            'next_clause: while i < watchers.len() {
                let cr = watchers[i];
                let false_lit = p.negate();
                // Normalize: watched literals are lits[0], lits[1].
                {
                    let c = &mut self.clauses[cr as usize];
                    if c.lits[0] == false_lit {
                        c.lits.swap(0, 1);
                    }
                    debug_assert_eq!(c.lits[1], false_lit);
                }
                let first = self.clauses[cr as usize].lits[0];
                if self.value_lit(first) == LBool::True {
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cr as usize].lits.len();
                for k in 2..len {
                    let lk = self.clauses[cr as usize].lits[k];
                    if self.value_lit(lk) != LBool::False {
                        self.clauses[cr as usize].lits.swap(1, k);
                        self.watches[lk.negate().index()].push(cr);
                        watchers.swap_remove(i);
                        continue 'next_clause;
                    }
                }
                // Unit or conflicting.
                if self.value_lit(first) == LBool::False {
                    self.watches[p.index()] = watchers;
                    // Re-add remaining watchers we had taken out.
                    return Some(cr);
                }
                self.stats.propagations += 1;
                self.enqueue(first, Some(cr));
                i += 1;
            }
            self.watches[p.index()] = watchers;
        }
        None
    }

    fn backtrack_to(&mut self, level: u32) {
        if self.decision_level() <= level {
            return;
        }
        let lim = self.trail_lim[level as usize];
        for &l in &self.trail[lim..] {
            let v = l.var() as usize;
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(level as usize);
        self.qhead = self.trail.len();
    }

    fn bump_var(&mut self, v: Var) {
        self.activity[v as usize] += self.var_inc;
        if self.activity[v as usize] > RESCALE_LIMIT {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= VAR_DECAY;
    }

    /// First-UIP conflict analysis; returns (learnt clause, backjump level).
    /// The asserting literal is placed first.
    fn analyze(&mut self, confl: ClauseRef) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = Vec::new();
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut index = self.trail.len();
        let mut cr = confl;
        let cur_level = self.decision_level();

        loop {
            {
                let start = usize::from(p.is_some());
                let lits = self.clauses[cr as usize].lits.clone();
                for &q in &lits[start..] {
                    let v = q.var();
                    if !self.seen[v as usize] && self.level[v as usize] > 0 {
                        self.seen[v as usize] = true;
                        self.bump_var(v);
                        if self.level[v as usize] >= cur_level {
                            counter += 1;
                        } else {
                            learnt.push(q);
                        }
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var() as usize] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var() as usize] = false;
            counter -= 1;
            if counter == 0 {
                p = Some(lit);
                break;
            }
            cr = self.reason[lit.var() as usize].expect("non-decision must have a reason");
            p = Some(lit);
        }
        let uip = p
            .expect("conflict at decision level > 0 has a UIP")
            .negate();
        learnt.insert(0, uip);
        for &l in &learnt {
            self.seen[l.var() as usize] = false;
        }
        // Backjump level: max level among the non-asserting literals.
        let bj = learnt[1..]
            .iter()
            .map(|l| self.level[l.var() as usize])
            .max()
            .unwrap_or(0);
        (learnt, bj)
    }

    fn pick_branch_var(&self) -> Option<Var> {
        // Linear VSIDS scan; adequate at the scale of our encodings.
        let mut best: Option<(Var, f64)> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef {
                let a = self.activity[v];
                if best.is_none_or(|(_, ba)| a > ba) {
                    best = Some((v as Var, a));
                }
            }
        }
        best.map(|(v, _)| v)
    }

    /// Luby sequence for restart intervals (0-indexed).
    fn luby(mut i: u64) -> u64 {
        loop {
            let mut k = 1u32;
            while (1u64 << k) - 1 < i + 1 {
                k += 1;
            }
            if (1u64 << k) - 1 == i + 1 {
                return 1 << (k - 1);
            }
            // Recurse into the flat part: luby(i) = luby(i - 2^(k-1) + 1).
            i -= (1 << (k - 1)) - 1;
        }
    }

    /// Run the CDCL search.
    pub fn solve(&mut self) -> SolveResult {
        if self.unsat {
            return SolveResult::Unsat;
        }
        self.backtrack_to(0);
        if self.propagate().is_some() {
            self.unsat = true;
            return SolveResult::Unsat;
        }
        let mut conflicts_this_call = 0u64;
        let mut restart_idx = 0u64;
        let mut restart_limit = 64 * Self::luby(restart_idx);

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts_this_call += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return SolveResult::Unsat;
                }
                if let Some(b) = self.budget {
                    if conflicts_this_call > b {
                        self.backtrack_to(0);
                        return SolveResult::Unknown;
                    }
                }
                let (learnt, bj) = self.analyze(confl);
                self.backtrack_to(bj);
                self.stats.learned_clauses += 1;
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], None);
                } else {
                    let cr = self.attach_clause(learnt.clone(), true);
                    self.enqueue(learnt[0], Some(cr));
                }
                self.decay_activities();
                if conflicts_this_call >= restart_limit {
                    restart_idx += 1;
                    restart_limit = conflicts_this_call + 64 * Self::luby(restart_idx);
                    self.stats.restarts += 1;
                    self.backtrack_to(0);
                }
            } else {
                match self.pick_branch_var() {
                    None => return SolveResult::Sat,
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let phase = self.phase[v as usize];
                        self.enqueue(Lit::new(v, !phase), None);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lits(xs: &[i32]) -> Vec<Lit> {
        xs.iter()
            .map(|&x| {
                let v = (x.abs() - 1) as Var;
                Lit::new(v, x < 0)
            })
            .collect()
    }

    fn solver_with_vars(n: usize) -> SatSolver {
        let mut s = SatSolver::new();
        for _ in 0..n {
            s.new_var();
        }
        s
    }

    #[test]
    fn lit_packing() {
        let l = Lit::pos(3);
        assert_eq!(l.var(), 3);
        assert!(!l.is_neg());
        assert_eq!(l.negate().var(), 3);
        assert!(l.negate().is_neg());
        assert_eq!(l.negate().negate(), l);
    }

    #[test]
    fn trivial_sat() {
        let mut s = solver_with_vars(2);
        s.add_clause(&lits(&[1, 2]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(0) || s.model_value(1));
    }

    #[test]
    fn trivial_unsat() {
        let mut s = solver_with_vars(1);
        s.add_clause(&lits(&[1]));
        s.add_clause(&lits(&[-1]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = solver_with_vars(1);
        assert!(!s.add_clause(&[]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn unit_propagation_chain() {
        // 1, 1->2, 2->3, 3->4 forces all true.
        let mut s = solver_with_vars(4);
        s.add_clause(&lits(&[1]));
        s.add_clause(&lits(&[-1, 2]));
        s.add_clause(&lits(&[-2, 3]));
        s.add_clause(&lits(&[-3, 4]));
        assert_eq!(s.solve(), SolveResult::Sat);
        for v in 0..4 {
            assert!(s.model_value(v));
        }
    }

    #[test]
    fn conflict_requires_learning() {
        // Pigeonhole 2-into-1 style contradiction.
        let mut s = solver_with_vars(3);
        s.add_clause(&lits(&[1, 2]));
        s.add_clause(&lits(&[1, -2]));
        s.add_clause(&lits(&[-1, 3]));
        s.add_clause(&lits(&[-1, -3]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautologies_and_duplicates_are_handled() {
        let mut s = solver_with_vars(2);
        assert!(s.add_clause(&lits(&[1, -1])));
        assert!(s.add_clause(&lits(&[2, 2])));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(1));
    }

    #[test]
    fn incremental_clause_addition() {
        let mut s = solver_with_vars(2);
        s.add_clause(&lits(&[1, 2]));
        assert_eq!(s.solve(), SolveResult::Sat);
        // Force the opposite of the current model, then the remaining one.
        s.add_clause(&lits(&[-1]));
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model_value(1));
        s.add_clause(&lits(&[-2]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn pigeonhole_3_into_2_is_unsat() {
        // p[i][j]: pigeon i in hole j; 3 pigeons, 2 holes.
        let mut s = SatSolver::new();
        let p: Vec<Vec<Var>> = (0..3)
            .map(|_| (0..2).map(|_| s.new_var()).collect())
            .collect();
        for i in 0..3 {
            s.add_clause(&[Lit::pos(p[i][0]), Lit::pos(p[i][1])]);
        }
        for j in 0..2 {
            for a in 0..3 {
                for b in (a + 1)..3 {
                    s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn budget_returns_unknown_on_hard_instance() {
        // Pigeonhole 7-into-6: exponential for resolution; tiny budget
        // must give Unknown.
        let n = 7;
        let mut s = SatSolver::new();
        let p: Vec<Vec<Var>> = (0..n)
            .map(|_| (0..n - 1).map(|_| s.new_var()).collect())
            .collect();
        for pi in p.iter() {
            let c: Vec<Lit> = pi.iter().map(|&v| Lit::pos(v)).collect();
            s.add_clause(&c);
        }
        for j in 0..n - 1 {
            for a in 0..n {
                for b in (a + 1)..n {
                    s.add_clause(&[Lit::neg(p[a][j]), Lit::neg(p[b][j])]);
                }
            }
        }
        s.set_conflict_budget(Some(50));
        assert_eq!(s.solve(), SolveResult::Unknown);
        // With a generous budget it is provably unsat.
        s.set_conflict_budget(Some(2_000_000));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn random_3sat_satisfiable_instances_solve() {
        // Deterministic LCG; planted solution guarantees satisfiability.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..10 {
            let nvars = 30u32;
            let planted: Vec<bool> = (0..nvars).map(|_| next() % 2 == 0).collect();
            let mut s = solver_with_vars(nvars as usize);
            for _ in 0..120 {
                let mut clause = Vec::new();
                // Ensure at least one literal agrees with the planted model.
                for k in 0..3 {
                    let v = next() % nvars;
                    let neg = if k == 0 {
                        !planted[v as usize]
                    } else {
                        next() % 2 == 0
                    };
                    clause.push(Lit::new(v, neg));
                }
                s.add_clause(&clause);
            }
            assert_eq!(s.solve(), SolveResult::Sat);
        }
    }

    #[test]
    fn luby_sequence_prefix() {
        let seq: Vec<u64> = (0..15).map(SatSolver::luby).collect();
        assert_eq!(seq, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }
}
