//! Linear integer arithmetic on top of the simplex: atom management and
//! branch & bound for integrality.

use crate::rational::Rat;
use crate::simplex::{Simplex, SpxResult, SpxVar, Tag};
use std::time::Instant;

/// Index of a registered atom (`Σ aᵢxᵢ ≤ rhs`).
pub type AtomId = usize;

/// Tag used for internal branch-and-bound bounds; never part of a valid
/// global conflict explanation.
const TAG_BB: Tag = usize::MAX;

struct AtomInfo {
    slack: SpxVar,
    rhs: i64,
}

/// Outcome of a theory check.
#[derive(Debug, Clone, PartialEq)]
pub enum LiaResult {
    /// Integer model found; values are in the order of the queried vars.
    Sat(Vec<i64>),
    /// Indices into the asserted-assignment slice that are jointly
    /// infeasible.
    Conflict(Vec<usize>),
    /// Budget exhausted.
    Unknown,
}

/// Search budget for a theory check.
#[derive(Debug, Clone, Copy)]
pub struct LiaBudget {
    pub deadline: Option<Instant>,
    pub max_bb_nodes: u64,
}

impl Default for LiaBudget {
    fn default() -> Self {
        LiaBudget {
            deadline: None,
            max_bb_nodes: 200_000,
        }
    }
}

/// The LIA theory solver: persistent rows, per-check bounds.
pub struct LiaSolver {
    spx: Simplex,
    atoms: Vec<AtomInfo>,
    /// Open branch-and-bound scopes (mirrors simplex push/pop).
    depth: usize,
}

impl Default for LiaSolver {
    fn default() -> Self {
        Self::new()
    }
}

impl LiaSolver {
    pub fn new() -> LiaSolver {
        LiaSolver {
            spx: Simplex::new(),
            atoms: Vec::new(),
            depth: 0,
        }
    }

    /// Allocate a problem integer variable.
    pub fn new_int_var(&mut self) -> SpxVar {
        self.spx.new_var()
    }

    /// Register the atom `Σ coeff·var ≤ rhs`; idempotent registration is
    /// the caller's concern (the term layer hash-conses atoms).
    pub fn add_atom(&mut self, terms: &[(SpxVar, i64)], rhs: i64) -> AtomId {
        let def: Vec<(SpxVar, Rat)> = terms.iter().map(|&(v, c)| (v, Rat::int(c))).collect();
        let slack = self.spx.add_row(&def);
        self.atoms.push(AtomInfo { slack, rhs });
        self.atoms.len() - 1
    }

    pub fn num_atoms(&self) -> usize {
        self.atoms.len()
    }

    /// Total simplex pivots so far (diagnostics).
    pub fn pivots(&self) -> u64 {
        self.spx.pivots
    }

    /// Check a full atom assignment for integer feasibility.
    ///
    /// `assignment[i] = (atom, polarity)`; conflicts are reported as
    /// indices `i` into this slice. `int_vars` are the variables whose
    /// integer values the model must report (all problem variables).
    pub fn check(
        &mut self,
        assignment: &[(AtomId, bool)],
        int_vars: &[SpxVar],
        budget: LiaBudget,
    ) -> LiaResult {
        self.spx.reset_bounds();
        // Assert bounds; tag = index into `assignment`.
        for (i, &(aid, pol)) in assignment.iter().enumerate() {
            let a = &self.atoms[aid];
            let r = if pol {
                self.spx.assert_upper(a.slack, Rat::int(a.rhs), i)
            } else {
                self.spx.assert_lower(a.slack, Rat::int(a.rhs + 1), i)
            };
            if let SpxResult::Infeasible(tags) = r {
                return LiaResult::Conflict(clean_tags(tags));
            }
        }
        match self.spx.check() {
            SpxResult::Infeasible(tags) => return LiaResult::Conflict(clean_tags(tags)),
            SpxResult::Feasible => {}
        }
        // Rationally feasible: enforce integrality by branch & bound.
        let mut nodes = budget.max_bb_nodes;
        match self.branch(int_vars, budget.deadline, &mut nodes) {
            Some(true) => {
                let model = int_vars
                    .iter()
                    .map(|&v| {
                        let val = self.spx.value(v);
                        debug_assert!(val.is_integer());
                        val.to_int()
                    })
                    .collect();
                self.unwind();
                LiaResult::Sat(model)
            }
            Some(false) => {
                self.unwind();
                // Integer-infeasible though rationally feasible: fall back
                // to the whole assignment as the explanation (sound but
                // not minimal).
                LiaResult::Conflict((0..assignment.len()).collect())
            }
            None => {
                self.unwind();
                LiaResult::Unknown
            }
        }
    }

    /// Depth-first branch & bound. Returns `Some(true)` with the found
    /// model still asserted (caller snapshots then [`Self::unwind`]s),
    /// `Some(false)` if the subtree has no integer point, `None` on budget
    /// exhaustion.
    fn branch(
        &mut self,
        int_vars: &[SpxVar],
        deadline: Option<Instant>,
        nodes: &mut u64,
    ) -> Option<bool> {
        if *nodes == 0 || deadline.is_some_and(|d| Instant::now() >= d) {
            return None;
        }
        *nodes -= 1;
        if let SpxResult::Infeasible(_) = self.spx.check() {
            return Some(false);
        }
        // First fractional variable.
        let frac = int_vars
            .iter()
            .copied()
            .find(|&v| !self.spx.value(v).is_integer());
        let Some(v) = frac else {
            return Some(true);
        };
        let val = self.spx.value(v);
        let fl = val.floor();

        // Left: v ≤ ⌊val⌋.
        self.push();
        if !matches!(
            self.spx.assert_upper(v, Rat::int(fl), TAG_BB),
            SpxResult::Infeasible(_)
        ) {
            match self.branch(int_vars, deadline, nodes) {
                Some(true) => return Some(true), // keep scopes for model read
                Some(false) => {}
                None => {
                    self.pop();
                    return None;
                }
            }
        }
        self.pop();

        // Right: v ≥ ⌊val⌋ + 1.
        self.push();
        if !matches!(
            self.spx.assert_lower(v, Rat::int(fl + 1), TAG_BB),
            SpxResult::Infeasible(_)
        ) {
            match self.branch(int_vars, deadline, nodes) {
                Some(true) => return Some(true),
                Some(false) => {}
                None => {
                    self.pop();
                    return None;
                }
            }
        }
        self.pop();
        Some(false)
    }

    fn push(&mut self) {
        self.spx.push();
        self.depth += 1;
    }

    fn pop(&mut self) {
        self.spx.pop();
        self.depth -= 1;
    }

    /// Pop any branch-and-bound scopes left open by a successful search.
    fn unwind(&mut self) {
        while self.depth > 0 {
            self.pop();
        }
    }
}

fn clean_tags(tags: Vec<Tag>) -> Vec<usize> {
    let mut t: Vec<usize> = tags.into_iter().filter(|&t| t != TAG_BB).collect();
    t.sort_unstable();
    t.dedup();
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    fn budget() -> LiaBudget {
        LiaBudget::default()
    }

    #[test]
    fn simple_integer_model() {
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let y = lia.new_int_var();
        // x + y <= 5 (a0), -x <= -2 i.e. x>=2 (a1), -y <= -2 (a2)
        let a0 = lia.add_atom(&[(x, 1), (y, 1)], 5);
        let a1 = lia.add_atom(&[(x, -1)], -2);
        let a2 = lia.add_atom(&[(y, -1)], -2);
        match lia.check(&[(a0, true), (a1, true), (a2, true)], &[x, y], budget()) {
            LiaResult::Sat(m) => {
                assert!(m[0] + m[1] <= 5 && m[0] >= 2 && m[1] >= 2);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn rational_but_not_integer_feasible() {
        // 2x = 1: rationally x=1/2, no integer solution.
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let le = lia.add_atom(&[(x, 2)], 1); // 2x <= 1
        let ge = lia.add_atom(&[(x, -2)], -1); // 2x >= 1
        match lia.check(&[(le, true), (ge, true)], &[x], budget()) {
            LiaResult::Conflict(c) => assert_eq!(c, vec![0, 1]),
            r => panic!("expected conflict, got {r:?}"),
        }
    }

    #[test]
    fn negated_atom_flips_to_strict_bound() {
        // ¬(x <= 3) means x >= 4.
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let a = lia.add_atom(&[(x, 1)], 3);
        let b = lia.add_atom(&[(x, 1)], 10);
        match lia.check(&[(a, false), (b, true)], &[x], budget()) {
            LiaResult::Sat(m) => assert!(m[0] >= 4 && m[0] <= 10),
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn conflict_explanation_is_small() {
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let y = lia.new_int_var();
        let z = lia.new_int_var();
        let a0 = lia.add_atom(&[(x, 1), (y, 1)], 3); // x+y <= 3
        let a1 = lia.add_atom(&[(x, -1)], -2); // x >= 2
        let a2 = lia.add_atom(&[(y, -1)], -2); // y >= 2
        let a3 = lia.add_atom(&[(z, 1)], 100); // irrelevant
        match lia.check(
            &[(a0, true), (a1, true), (a2, true), (a3, true)],
            &[x, y, z],
            budget(),
        ) {
            LiaResult::Conflict(c) => {
                assert!(!c.contains(&3), "irrelevant atom in explanation: {c:?}");
                assert!(c.len() <= 3);
            }
            r => panic!("expected conflict, got {r:?}"),
        }
    }

    #[test]
    fn branch_and_bound_finds_nontrivial_point() {
        // 3x + 5y = 7, x,y >= 0 -> (x,y) = (4,-1)? no; over nonneg: x=4,y=-1
        // invalid; actual solution: x= -1 invalid... 3*4+5*(-1)=7. With
        // x,y>=0: 3x+5y=7 has no solution; expect conflict.
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let y = lia.new_int_var();
        let le = lia.add_atom(&[(x, 3), (y, 5)], 7);
        let ge = lia.add_atom(&[(x, -3), (y, -5)], -7);
        let xpos = lia.add_atom(&[(x, -1)], 0);
        let ypos = lia.add_atom(&[(y, -1)], 0);
        match lia.check(
            &[(le, true), (ge, true), (xpos, true), (ypos, true)],
            &[x, y],
            budget(),
        ) {
            LiaResult::Conflict(_) => {}
            r => panic!("expected conflict, got {r:?}"),
        }
        // Relax to 3x + 5y = 11: x=2, y=1.
        let le2 = lia.add_atom(&[(x, 3), (y, 5)], 11);
        let ge2 = lia.add_atom(&[(x, -3), (y, -5)], -11);
        match lia.check(
            &[(le2, true), (ge2, true), (xpos, true), (ypos, true)],
            &[x, y],
            budget(),
        ) {
            LiaResult::Sat(m) => {
                assert_eq!(3 * m[0] + 5 * m[1], 11);
                assert!(m[0] >= 0 && m[1] >= 0);
            }
            r => panic!("expected sat, got {r:?}"),
        }
    }

    #[test]
    fn node_budget_gives_unknown() {
        // A system needing branching with a zero node budget.
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let le = lia.add_atom(&[(x, 2)], 5); // 2x <= 5
        let ge = lia.add_atom(&[(x, -2)], -5); // 2x >= 5 -> x = 5/2
        let b = LiaBudget {
            deadline: None,
            max_bb_nodes: 0,
        };
        assert_eq!(
            lia.check(&[(le, true), (ge, true)], &[x], b),
            LiaResult::Unknown
        );
    }

    #[test]
    fn repeated_checks_reuse_rows() {
        let mut lia = LiaSolver::new();
        let x = lia.new_int_var();
        let a = lia.add_atom(&[(x, 1)], 4);
        for rhs_pol in [true, false] {
            match lia.check(&[(a, rhs_pol)], &[x], budget()) {
                LiaResult::Sat(m) => {
                    if rhs_pol {
                        assert!(m[0] <= 4);
                    } else {
                        assert!(m[0] >= 5);
                    }
                }
                r => panic!("expected sat, got {r:?}"),
            }
        }
    }
}
