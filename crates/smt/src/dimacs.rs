//! DIMACS CNF front-end for the SAT core.
//!
//! Lets the CDCL solver be exercised (and regression-tested) against the
//! standard benchmark format, independent of the SMT layer.

use crate::sat::{Lit, SatSolver, SolveResult};

/// Errors from DIMACS parsing.
#[derive(Debug, Clone, PartialEq)]
pub enum DimacsError {
    Malformed {
        line: usize,
        reason: String,
    },
    /// A literal references a variable above the declared count.
    VariableOutOfRange {
        line: usize,
        var: i64,
    },
}

impl std::fmt::Display for DimacsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DimacsError::Malformed { line, reason } => write!(f, "line {line}: {reason}"),
            DimacsError::VariableOutOfRange { line, var } => {
                write!(f, "line {line}: variable {var} out of declared range")
            }
        }
    }
}

impl std::error::Error for DimacsError {}

/// Parse DIMACS CNF into the declared variable count plus the clause
/// list, without touching a solver. [`parse`] and [`format`] are both
/// built on this representation, which makes the pair round-trippable.
pub fn parse_clauses(text: &str) -> Result<(usize, Vec<Vec<Lit>>), DimacsError> {
    let mut declared_vars = 0usize;
    let mut seen_header = false;
    let mut clauses: Vec<Vec<Lit>> = Vec::new();
    let mut clause: Vec<Lit> = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('c') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || fields[0] != "cnf" {
                return Err(DimacsError::Malformed {
                    line: line_no,
                    reason: format!("bad problem line {line:?}"),
                });
            }
            declared_vars = fields[1].parse().map_err(|_| DimacsError::Malformed {
                line: line_no,
                reason: format!("bad variable count {:?}", fields[1]),
            })?;
            seen_header = true;
            continue;
        }
        if !seen_header {
            return Err(DimacsError::Malformed {
                line: line_no,
                reason: "clause before problem line".into(),
            });
        }
        for tok in line.split_whitespace() {
            let v: i64 = tok.parse().map_err(|_| DimacsError::Malformed {
                line: line_no,
                reason: format!("bad literal {tok:?}"),
            })?;
            if v == 0 {
                clauses.push(std::mem::take(&mut clause));
            } else {
                let var = v.unsigned_abs() - 1;
                if var >= declared_vars as u64 {
                    return Err(DimacsError::VariableOutOfRange {
                        line: line_no,
                        var: v,
                    });
                }
                clause.push(Lit::new(var as u32, v < 0));
            }
        }
    }
    if !clause.is_empty() {
        clauses.push(clause);
    }
    Ok((declared_vars, clauses))
}

/// Render a CNF in DIMACS format (the writer half of the round-trip;
/// `parse_clauses(&format(n, &cs))` returns `(n, cs)` verbatim).
pub fn format(num_vars: usize, clauses: &[Vec<Lit>]) -> String {
    let mut s = format!("p cnf {num_vars} {}\n", clauses.len());
    for clause in clauses {
        for lit in clause {
            let v = lit.var() as i64 + 1;
            if lit.is_neg() {
                s.push('-');
            }
            s.push_str(&v.to_string());
            s.push(' ');
        }
        s.push_str("0\n");
    }
    s
}

/// Parse DIMACS CNF into a fresh solver. Returns the solver and the
/// number of declared variables.
pub fn parse(text: &str) -> Result<(SatSolver, usize), DimacsError> {
    let (declared_vars, clauses) = parse_clauses(text)?;
    let mut solver = SatSolver::new();
    for _ in 0..declared_vars {
        solver.new_var();
    }
    for clause in &clauses {
        solver.add_clause(clause);
    }
    Ok((solver, declared_vars))
}

/// Parse, solve, and pretty-print the result in the competition format
/// (`SATISFIABLE` + model line, or `UNSATISFIABLE`).
pub fn solve_dimacs(text: &str) -> Result<String, DimacsError> {
    let (mut solver, nvars) = parse(text)?;
    Ok(match solver.solve() {
        SolveResult::Sat => {
            let mut s = String::from("s SATISFIABLE\nv ");
            for v in 0..nvars {
                if solver.model_value(v as u32) {
                    s.push_str(&format!("{} ", v + 1));
                } else {
                    s.push_str(&format!("-{} ", v + 1));
                }
            }
            s.push('0');
            s
        }
        SolveResult::Unsat => "s UNSATISFIABLE".into(),
        SolveResult::Unknown => "s UNKNOWN".into(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_and_solves_satisfiable_instance() {
        let cnf = "\
c a comment
p cnf 3 2
1 -3 0
2 3 -1 0
";
        let out = solve_dimacs(cnf).unwrap();
        assert!(out.starts_with("s SATISFIABLE"));
        assert!(out.contains('v'));
    }

    #[test]
    fn detects_unsat_instance() {
        let cnf = "p cnf 1 2\n1 0\n-1 0\n";
        assert_eq!(solve_dimacs(cnf).unwrap(), "s UNSATISFIABLE");
    }

    #[test]
    fn model_satisfies_all_clauses() {
        // A slightly bigger instance; verify the reported model.
        let cnf = "p cnf 5 6\n1 2 0\n-1 3 0\n-2 4 0\n-3 -4 5 0\n-5 1 0\n2 -4 0\n";
        let (mut s, n) = parse(cnf).unwrap();
        assert_eq!(n, 5);
        assert_eq!(s.solve(), SolveResult::Sat);
        let model: Vec<bool> = (0..5).map(|v| s.model_value(v)).collect();
        let clause_ok = |lits: &[i32]| {
            lits.iter().any(|&l| {
                let val = model[(l.abs() - 1) as usize];
                if l > 0 {
                    val
                } else {
                    !val
                }
            })
        };
        for c in [
            vec![1, 2],
            vec![-1, 3],
            vec![-2, 4],
            vec![-3, -4, 5],
            vec![-5, 1],
            vec![2, -4],
        ] {
            assert!(clause_ok(&c), "clause {c:?} unsatisfied by model {model:?}");
        }
    }

    #[test]
    fn multiline_clauses_and_trailing_clause() {
        let cnf = "p cnf 2 2\n1\n2 0\n-1 -2 0";
        let (mut s, _) = parse(cnf).unwrap();
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn format_parse_round_trip_is_verbatim() {
        let clauses = vec![
            vec![Lit::new(0, false), Lit::new(2, true)],
            vec![Lit::new(1, false), Lit::new(2, false), Lit::new(0, true)],
            vec![],
        ];
        let text = format(3, &clauses);
        assert_eq!(text, "p cnf 3 3\n1 -3 0\n2 3 -1 0\n0\n");
        let (n, back) = parse_clauses(&text).unwrap();
        assert_eq!(n, 3);
        assert_eq!(back, clauses);
        // Idempotent: formatting the parse of a formatted CNF is a fixed
        // point.
        assert_eq!(format(n, &back), text);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            parse("1 2 0\n"),
            Err(DimacsError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse("p cnf 2 1\n1 5 0\n"),
            Err(DimacsError::VariableOutOfRange { line: 2, var: 5 })
        ));
        assert!(matches!(
            parse("p cnf x 1\n"),
            Err(DimacsError::Malformed { line: 1, .. })
        ));
        assert!(matches!(
            parse("p dnf 1 1\n"),
            Err(DimacsError::Malformed { line: 1, .. })
        ));
    }
}
