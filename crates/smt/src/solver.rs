//! The user-facing SMT solver: lowering, the lazy CDCL(T) loop, models,
//! and linear optimization.

use crate::cnf::Encoder;
use crate::lia::{AtomId, LiaBudget, LiaResult, LiaSolver};
use crate::sat::SolveResult;
use crate::simplex::SpxVar;
use crate::stats::SolverStats;
use crate::term::{LinExpr, Sort, TermId, TermKind, TermManager};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Result of a satisfiability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    Sat,
    Unsat,
    /// Budget (time, SAT conflicts, or branch-and-bound nodes) exhausted.
    Unknown,
}

/// Result of an optimization call.
#[derive(Debug, Clone)]
pub enum OptResult {
    /// Proven optimal.
    Optimal {
        value: i64,
        model: Model,
    },
    /// Best model found before the budget ran out.
    Best {
        value: i64,
        model: Model,
    },
    Unsat,
    Unknown,
}

/// A satisfying assignment: integer values for int variables, booleans for
/// bool variables. Any term can be evaluated against it.
#[derive(Debug, Clone, Default)]
pub struct Model {
    ints: HashMap<TermId, i64>,
    bools: HashMap<TermId, bool>,
}

impl Model {
    /// Evaluate an int-sorted term.
    pub fn eval_int(&self, tm: &TermManager, t: TermId) -> i64 {
        match tm.kind(t) {
            TermKind::IntVar(_) => *self.ints.get(&t).unwrap_or(&0),
            TermKind::Linear(e) => self.eval_linexpr(tm, e),
            TermKind::Ite(c, a, b) => {
                if self.eval_bool(tm, *c) {
                    self.eval_int(tm, *a)
                } else {
                    self.eval_int(tm, *b)
                }
            }
            k => panic!("not an int term: {k:?}"),
        }
    }

    fn eval_linexpr(&self, tm: &TermManager, e: &LinExpr) -> i64 {
        e.terms
            .iter()
            .fold(e.constant, |acc, &(v, c)| acc + c * self.eval_int(tm, v))
    }

    /// Evaluate a bool-sorted term.
    pub fn eval_bool(&self, tm: &TermManager, t: TermId) -> bool {
        match tm.kind(t) {
            TermKind::True => true,
            TermKind::False => false,
            TermKind::BoolVar(_) => *self.bools.get(&t).unwrap_or(&false),
            TermKind::Not(x) => !self.eval_bool(tm, *x),
            TermKind::And(xs) => xs.iter().all(|&x| self.eval_bool(tm, x)),
            TermKind::Or(xs) => xs.iter().any(|&x| self.eval_bool(tm, x)),
            TermKind::Le(e) => self.eval_linexpr(tm, e) <= 0,
            k => panic!("not a bool term: {k:?}"),
        }
    }
}

/// Resource limits for `check` / `minimize`.
#[derive(Debug, Clone, Copy)]
pub struct Budget {
    /// Wall-clock limit for one `check` (and for a whole `minimize`).
    pub timeout: Option<Duration>,
    /// SAT conflicts per `check`.
    pub max_sat_conflicts: Option<u64>,
    /// Branch-and-bound nodes per theory check.
    pub max_bb_nodes: u64,
}

impl Default for Budget {
    fn default() -> Self {
        Budget {
            timeout: None,
            max_sat_conflicts: Some(2_000_000),
            max_bb_nodes: 200_000,
        }
    }
}

impl Budget {
    /// A deliberately small budget, used as the first rung of retry
    /// ladders: callers start here and [`escalate`](Budget::escalate) on
    /// `Unknown` instead of paying the full default budget up front.
    pub fn tight() -> Budget {
        Budget {
            timeout: None,
            max_sat_conflicts: Some(50_000),
            max_bb_nodes: 10_000,
        }
    }

    /// Multiply every limit by `factor` (saturating). The backoff
    /// primitive of the CEM degradation ladder: a check that came back
    /// `Unknown` is retried once with `budget.escalate(k)` before the
    /// caller falls back to a cheaper engine.
    pub fn escalate(self, factor: u32) -> Budget {
        let factor = factor.max(1);
        let f = factor as u64;
        Budget {
            timeout: self.timeout.map(|t| t.saturating_mul(factor)),
            max_sat_conflicts: self.max_sat_conflicts.map(|c| c.saturating_mul(f)),
            max_bb_nodes: self.max_bb_nodes.saturating_mul(f),
        }
    }
}

/// The SMT solver facade. See the crate docs for the architecture.
pub struct Solver {
    tm: TermManager,
    enc: Encoder,
    lia: LiaSolver,
    /// IntVar term -> simplex variable.
    spx_of: HashMap<TermId, SpxVar>,
    /// Registration order of int vars (model extraction).
    int_vars: Vec<TermId>,
    /// Atom term -> LIA atom.
    lia_atom_of: HashMap<TermId, AtomId>,
    /// Ite node -> fresh IntVar term standing in for it.
    ite_var_of: HashMap<TermId, TermId>,
    budget: Budget,
    model: Option<Model>,
    /// Number of lazy refinement iterations in the last check.
    pub last_iterations: u64,
    /// Lazy refinement iterations accumulated over all checks.
    total_iterations: u64,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    pub fn new() -> Solver {
        Solver {
            tm: TermManager::new(),
            enc: Encoder::new(),
            lia: LiaSolver::new(),
            spx_of: HashMap::new(),
            int_vars: Vec::new(),
            lia_atom_of: HashMap::new(),
            ite_var_of: HashMap::new(),
            budget: Budget::default(),
            model: None,
            last_iterations: 0,
            total_iterations: 0,
        }
    }

    pub fn set_budget(&mut self, budget: Budget) {
        self.budget = budget;
    }

    /// Cumulative solver work since construction: SAT-core counters plus
    /// the theory side (simplex pivots, lazy-loop iterations). Callers
    /// diff snapshots via [`SolverStats::delta_since`].
    pub fn stats(&self) -> SolverStats {
        let mut s = *self.enc.sat.stats();
        s.simplex_pivots = self.lia.pivots();
        s.iterations = self.total_iterations;
        s
    }

    /// Access the term manager for direct term construction.
    pub fn tm(&mut self) -> &mut TermManager {
        &mut self.tm
    }

    // ---- convenience term builders (delegate to the term manager) ----

    pub fn int_var(&mut self, name: &str) -> TermId {
        let t = self.tm.int_var(name);
        self.register_int_var(t);
        t
    }

    pub fn bool_var(&mut self, name: &str) -> TermId {
        self.tm.bool_var(name)
    }

    pub fn int(&mut self, c: i64) -> TermId {
        self.tm.int(c)
    }

    pub fn add(&mut self, ts: &[TermId]) -> TermId {
        self.tm.add(ts)
    }

    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.sub(a, b)
    }

    pub fn mul_const(&mut self, k: i64, t: TermId) -> TermId {
        self.tm.mul_const(k, t)
    }

    pub fn neg(&mut self, t: TermId) -> TermId {
        self.tm.neg(t)
    }

    pub fn ite(&mut self, c: TermId, a: TermId, b: TermId) -> TermId {
        self.tm.ite(c, a, b)
    }

    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.le(a, b)
    }

    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.lt(a, b)
    }

    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.ge(a, b)
    }

    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.gt(a, b)
    }

    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.eq(a, b)
    }

    pub fn not(&mut self, t: TermId) -> TermId {
        self.tm.not(t)
    }

    pub fn and(&mut self, ts: &[TermId]) -> TermId {
        self.tm.and(ts)
    }

    pub fn or(&mut self, ts: &[TermId]) -> TermId {
        self.tm.or(ts)
    }

    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.implies(a, b)
    }

    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        self.tm.iff(a, b)
    }

    fn register_int_var(&mut self, t: TermId) {
        if !self.spx_of.contains_key(&t) {
            let v = self.lia.new_int_var();
            self.spx_of.insert(t, v);
            self.int_vars.push(t);
        }
    }

    // ---- assertion pipeline ----

    /// Assert a boolean term.
    pub fn assert(&mut self, t: TermId) {
        debug_assert_eq!(self.tm.sort(t), Sort::Bool);
        let lowered = self.lower_bool(t);
        self.enc.assert_formula(&self.tm, lowered);
        self.register_new_atoms();
    }

    /// Rewrite a bool term so that no atom references an `ite` node:
    /// each distinct `ite` is replaced by a fresh int variable constrained
    /// by definitional implications.
    fn lower_bool(&mut self, t: TermId) -> TermId {
        match self.tm.kind(t).clone() {
            TermKind::True | TermKind::False | TermKind::BoolVar(_) => t,
            TermKind::Not(x) => {
                let lx = self.lower_bool(x);
                self.tm.not(lx)
            }
            TermKind::And(xs) => {
                let ls: Vec<TermId> = xs.iter().map(|&x| self.lower_bool(x)).collect();
                self.tm.and(&ls)
            }
            TermKind::Or(xs) => {
                let ls: Vec<TermId> = xs.iter().map(|&x| self.lower_bool(x)).collect();
                self.tm.or(&ls)
            }
            TermKind::Le(e) => {
                let le = self.lower_linexpr(&e);
                self.tm.le_zero(le)
            }
            k => panic!("not a bool term: {k:?}"),
        }
    }

    fn lower_linexpr(&mut self, e: &LinExpr) -> LinExpr {
        let mut acc = LinExpr::constant(e.constant);
        for &(base, coeff) in &e.terms {
            let b = self.lower_int_base(base);
            acc = acc.add_scaled(&LinExpr::var(b), coeff);
        }
        acc
    }

    /// Lower a base term (IntVar or Ite) to an IntVar term.
    fn lower_int_base(&mut self, t: TermId) -> TermId {
        match self.tm.kind(t).clone() {
            TermKind::IntVar(_) => {
                self.register_int_var(t);
                t
            }
            TermKind::Ite(c, a, b) => {
                if let Some(&v) = self.ite_var_of.get(&t) {
                    return v;
                }
                let name = format!("$ite{}", self.ite_var_of.len());
                let v = self.tm.int_var(&name);
                self.register_int_var(v);
                self.ite_var_of.insert(t, v);
                // Definitions: c -> v = a, !c -> v = b.
                let lc = self.lower_bool(c);
                let eq_a = self.tm.eq(v, a);
                let eq_b = self.tm.eq(v, b);
                let then_def = self.tm.implies(lc, eq_a);
                let nlc = self.tm.not(lc);
                let else_def = self.tm.implies(nlc, eq_b);
                let both = self.tm.and(&[then_def, else_def]);
                let lowered = self.lower_bool(both);
                self.enc.assert_formula(&self.tm, lowered);
                v
            }
            k => panic!("not an int base term: {k:?}"),
        }
    }

    /// Make sure every atom the encoder registered exists on the LIA side.
    fn register_new_atoms(&mut self) {
        // Cloning the registry avoids borrowing issues; it is small.
        let atoms: Vec<(TermId, crate::sat::Var)> = self.enc.atoms().to_vec();
        for (term, _) in atoms {
            if self.lia_atom_of.contains_key(&term) {
                continue;
            }
            let TermKind::Le(e) = self.tm.kind(term).clone() else {
                unreachable!("registered atom is not Le");
            };
            let terms: Vec<(SpxVar, i64)> = e
                .terms
                .iter()
                .map(|&(v, c)| {
                    debug_assert!(
                        matches!(self.tm.kind(v), TermKind::IntVar(_)),
                        "atom not lowered"
                    );
                    self.register_int_var(v);
                    (self.spx_of[&v], c)
                })
                .collect();
            let aid = self.lia.add_atom(&terms, -e.constant);
            self.lia_atom_of.insert(term, aid);
        }
    }

    // ---- solving ----

    /// Decide satisfiability of the asserted formulas.
    pub fn check(&mut self) -> SatResult {
        let deadline = self.budget.timeout.map(|d| Instant::now() + d);
        self.check_with_deadline(deadline)
    }

    fn check_with_deadline(&mut self, deadline: Option<Instant>) -> SatResult {
        self.model = None;
        self.last_iterations = 0;
        self.enc
            .sat
            .set_conflict_budget(self.budget.max_sat_conflicts);
        loop {
            self.last_iterations += 1;
            self.total_iterations += 1;
            if deadline.is_some_and(|d| Instant::now() >= d) {
                return SatResult::Unknown;
            }
            match self.enc.sat.solve() {
                SolveResult::Unsat => return SatResult::Unsat,
                SolveResult::Unknown => return SatResult::Unknown,
                SolveResult::Sat => {}
            }
            // Read atom polarities off the SAT model.
            let atoms = self.enc.atoms().to_vec();
            let assignment: Vec<(AtomId, bool)> = atoms
                .iter()
                .map(|&(term, var)| (self.lia_atom_of[&term], self.enc.sat.model_value(var)))
                .collect();
            let int_spx: Vec<SpxVar> = self.int_vars.iter().map(|t| self.spx_of[t]).collect();
            let lia_budget = LiaBudget {
                deadline,
                max_bb_nodes: self.budget.max_bb_nodes,
            };
            match self.lia.check(&assignment, &int_spx, lia_budget) {
                LiaResult::Sat(values) => {
                    let mut model = Model::default();
                    for (t, v) in self.int_vars.iter().zip(values) {
                        model.ints.insert(*t, v);
                    }
                    for (term, var) in &atoms {
                        // Atoms are derived; bools come from BoolVar terms.
                        let _ = (term, var);
                    }
                    // Record bool vars by scanning the lit table lazily:
                    // re-encode on demand is not possible here, so we rely
                    // on eval via stored bools; BoolVars get their SAT value.
                    self.capture_bool_vars(&mut model);
                    self.model = Some(model);
                    return SatResult::Sat;
                }
                LiaResult::Conflict(indices) => {
                    let clause: Vec<crate::sat::Lit> = indices
                        .iter()
                        .map(|&i| {
                            let (term, _) = atoms
                                .iter()
                                .find(|&&(t, _)| self.lia_atom_of[&t] == assignment[i].0)
                                .expect("atom present");
                            let var = atoms.iter().find(|&&(t, _)| t == *term).unwrap().1;
                            let asserted_true = assignment[i].1;
                            crate::sat::Lit::new(var, asserted_true)
                        })
                        .collect();
                    if !self.enc.sat.add_clause(&clause) {
                        return SatResult::Unsat;
                    }
                }
                LiaResult::Unknown => return SatResult::Unknown,
            }
        }
    }

    fn capture_bool_vars(&mut self, model: &mut Model) {
        // Every BoolVar term that has been encoded has a SAT literal; we
        // re-derive it through the encoder (memoized, so no new vars).
        let n = self.tm.num_terms();
        for t in 0..n as TermId {
            if let TermKind::BoolVar(_) = self.tm.kind(t) {
                let lit = self.enc.lit(&self.tm, t);
                let val = self.enc.sat.model_value(lit.var()) ^ lit.is_neg();
                model.bools.insert(t, val);
            }
        }
    }

    /// The model of the last `Sat` check.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    /// Model value of an int term (panics without a model).
    pub fn model_int(&self, t: TermId) -> i64 {
        self.model
            .as_ref()
            .expect("no model available")
            .eval_int(&self.tm, t)
    }

    /// Maximize an integer objective (dual of [`Solver::minimize`]):
    /// stops early if `hi` is reached.
    pub fn maximize(&mut self, obj: TermId, hi: i64) -> OptResult {
        let neg = self.neg(obj);
        match self.minimize(neg, hi.checked_neg().unwrap_or(i64::MIN + 1)) {
            OptResult::Optimal { value, model } => OptResult::Optimal {
                value: -value,
                model,
            },
            OptResult::Best { value, model } => OptResult::Best {
                value: -value,
                model,
            },
            r => r,
        }
    }

    /// [`Solver::minimize`] with a known feasible upper bound: asserts
    /// `obj ≤ hint` up front so the search starts from the hint instead
    /// of the first model found (warm start; the hint must be achievable
    /// or the result degrades to `Unsat`).
    pub fn minimize_with_hint(&mut self, obj: TermId, lo: i64, hint: i64) -> OptResult {
        let bound = self.int(hint);
        let c = self.le(obj, bound);
        self.assert(c);
        self.minimize(obj, lo)
    }

    /// Minimize an integer objective by iterative strengthening
    /// (`obj ≤ best − 1` after every improving model), stopping early if
    /// `lo` is reached. The solver is consumed in the sense that the
    /// objective bounds stay asserted.
    pub fn minimize(&mut self, obj: TermId, lo: i64) -> OptResult {
        let deadline = self.budget.timeout.map(|d| Instant::now() + d);
        let mut best: Option<(i64, Model)> = None;
        loop {
            match self.check_with_deadline(deadline) {
                SatResult::Sat => {
                    let m = self.model.clone().expect("sat implies model");
                    let v = m.eval_int(&self.tm, obj);
                    debug_assert!(
                        best.as_ref().is_none_or(|(bv, _)| v < *bv),
                        "objective must strictly improve"
                    );
                    best = Some((v, m));
                    if v <= lo {
                        let (value, model) = best.unwrap();
                        return OptResult::Optimal { value, model };
                    }
                    let bound = self.int(v - 1);
                    let c = self.le(obj, bound);
                    self.assert(c);
                }
                SatResult::Unsat => {
                    return match best {
                        Some((value, model)) => OptResult::Optimal { value, model },
                        None => OptResult::Unsat,
                    };
                }
                SatResult::Unknown => {
                    return match best {
                        Some((value, model)) => OptResult::Best { value, model },
                        None => OptResult::Unknown,
                    };
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn doc_example_unsat() {
        let mut s = Solver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let sum = s.add(&[x, y]);
        let seven = s.int(7);
        let eq = s.eq(sum, seven);
        s.assert(eq);
        let three = s.int(3);
        let c1 = s.le(x, three);
        let c2 = s.le(y, three);
        s.assert(c1);
        s.assert(c2);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn sat_with_model() {
        let mut s = Solver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let sum = s.add(&[x, y]);
        let seven = s.int(7);
        let eq = s.eq(sum, seven);
        s.assert(eq);
        let zero = s.int(0);
        let c1 = s.ge(x, zero);
        let c2 = s.ge(y, zero);
        s.assert(c1);
        s.assert(c2);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.model_int(x) + s.model_int(y), 7);
        assert!(s.model_int(x) >= 0 && s.model_int(y) >= 0);
    }

    #[test]
    fn boolean_and_theory_interaction() {
        // p -> x >= 5; !p -> x <= -5; x = 2 forces contradiction.
        let mut s = Solver::new();
        let p = s.bool_var("p");
        let x = s.int_var("x");
        let five = s.int(5);
        let mfive = s.int(-5);
        let ge5 = s.ge(x, five);
        let le_m5 = s.le(x, mfive);
        let i1 = s.implies(p, ge5);
        let np = s.not(p);
        let i2 = s.implies(np, le_m5);
        s.assert(i1);
        s.assert(i2);
        let two = s.int(2);
        let eq2 = s.eq(x, two);
        s.assert(eq2);
        assert_eq!(s.check(), SatResult::Unsat);
    }

    #[test]
    fn disjunction_picks_a_branch() {
        let mut s = Solver::new();
        let x = s.int_var("x");
        let ten = s.int(10);
        let twenty = s.int(20);
        let a = s.eq(x, ten);
        let b = s.eq(x, twenty);
        let d = s.or(&[a, b]);
        s.assert(d);
        let fifteen = s.int(15);
        let gt15 = s.gt(x, fifteen);
        s.assert(gt15);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.model_int(x), 20);
    }

    #[test]
    fn ite_terms_work() {
        // y = ite(x > 0, x, -x)  (absolute value); x = -4 -> y = 4.
        let mut s = Solver::new();
        let x = s.int_var("x");
        let y = s.int_var("y");
        let zero = s.int(0);
        let cond = s.gt(x, zero);
        let negx = s.neg(x);
        let abs = s.ite(cond, x, negx);
        let eq = s.eq(y, abs);
        s.assert(eq);
        let m4 = s.int(-4);
        let xeq = s.eq(x, m4);
        s.assert(xeq);
        assert_eq!(s.check(), SatResult::Sat);
        assert_eq!(s.model_int(y), 4);
    }

    #[test]
    fn nested_ite_counting() {
        // count = ite(a>0,1,0) + ite(b>0,1,0); a=3, b=0 -> count=1.
        let mut s = Solver::new();
        let a = s.int_var("a");
        let b = s.int_var("b");
        let zero = s.int(0);
        let one = s.int(1);
        let ca = s.gt(a, zero);
        let cb = s.gt(b, zero);
        let ia = s.ite(ca, one, zero);
        let ib = s.ite(cb, one, zero);
        let count = s.add(&[ia, ib]);
        let three = s.int(3);
        let a3 = s.eq(a, three);
        let b0 = s.eq(b, zero);
        s.assert(a3);
        s.assert(b0);
        assert_eq!(s.check(), SatResult::Sat);
        let m = s.model().unwrap();
        // Evaluate the original ite-bearing term against the model.
        assert_eq!(m.eval_int(&s.tm, count), 1);
    }

    #[test]
    fn minimize_simple_objective() {
        // min x subject to x >= 3 ∨ x >= 10, x <= 100.
        let mut s = Solver::new();
        let x = s.int_var("x");
        let three = s.int(3);
        let ten = s.int(10);
        let hundred = s.int(100);
        let a = s.ge(x, three);
        let b = s.ge(x, ten);
        let d = s.or(&[a, b]);
        s.assert(d);
        let ub = s.le(x, hundred);
        s.assert(ub);
        let lb = s.ge(x, three); // x >= 3 globally
        s.assert(lb);
        match s.minimize(x, i64::MIN) {
            OptResult::Optimal { value, .. } => assert_eq!(value, 3),
            r => panic!("expected optimal, got {r:?}"),
        }
    }

    #[test]
    fn minimize_l1_distance() {
        // min |x - 7| encoded as d >= x-7, d >= 7-x, minimize d with x even.
        let mut s = Solver::new();
        let x = s.int_var("x");
        let d = s.int_var("d");
        let two = s.int(2);
        let half = s.int_var("half");
        let twice = s.mul_const(2, half);
        let even = s.eq(x, twice);
        s.assert(even);
        let seven = s.int(7);
        let diff = s.sub(x, seven);
        let c1 = s.ge(d, diff);
        let ndiff = s.neg(diff);
        let c2 = s.ge(d, ndiff);
        s.assert(c1);
        s.assert(c2);
        let zero = s.int(0);
        let lo = s.ge(x, zero);
        let hundred = s.int(100);
        let hi = s.le(x, hundred);
        s.assert(lo);
        s.assert(hi);
        let _ = two;
        match s.minimize(d, 0) {
            OptResult::Optimal { value, model } => {
                assert_eq!(value, 1, "nearest even number to 7 is at distance 1");
                let xv = model.eval_int(&s.tm, x);
                assert!(xv == 6 || xv == 8);
            }
            r => panic!("expected optimal, got {r:?}"),
        }
    }

    #[test]
    fn maximize_simple_objective() {
        // max x subject to 2 <= x <= 9, x odd (x = 2k+1).
        let mut s = Solver::new();
        let x = s.int_var("x");
        let k = s.int_var("k");
        let two = s.int(2);
        let nine = s.int(9);
        let lo = s.ge(x, two);
        let hi = s.le(x, nine);
        s.assert(lo);
        s.assert(hi);
        let twok = s.mul_const(2, k);
        let one = s.int(1);
        let odd_val = s.add(&[twok, one]);
        let odd = s.eq(x, odd_val);
        s.assert(odd);
        match s.maximize(x, i64::MAX) {
            OptResult::Optimal { value, .. } => assert_eq!(value, 9),
            r => panic!("expected optimal, got {r:?}"),
        }
    }

    #[test]
    fn minimize_with_hint_matches_cold_minimize() {
        let build = |s: &mut Solver| -> TermId {
            let x = s.int_var("x");
            let five = s.int(5);
            let hundred = s.int(100);
            let lo = s.ge(x, five);
            let hi = s.le(x, hundred);
            s.assert(lo);
            s.assert(hi);
            x
        };
        let mut cold = Solver::new();
        let xc = build(&mut cold);
        let OptResult::Optimal { value: vc, .. } = cold.minimize(xc, i64::MIN) else {
            panic!("cold unsat");
        };
        let mut warm = Solver::new();
        let xw = build(&mut warm);
        let OptResult::Optimal { value: vw, .. } = warm.minimize_with_hint(xw, i64::MIN, 7) else {
            panic!("warm unsat");
        };
        assert_eq!(vc, vw);
        assert_eq!(vc, 5);
    }

    #[test]
    fn unsat_minimize() {
        let mut s = Solver::new();
        let x = s.int_var("x");
        let one = s.int(1);
        let zero = s.int(0);
        let a = s.ge(x, one);
        let b = s.le(x, zero);
        s.assert(a);
        s.assert(b);
        match s.minimize(x, i64::MIN) {
            OptResult::Unsat => {}
            r => panic!("expected unsat, got {r:?}"),
        }
    }

    #[test]
    fn timeout_budget_gives_unknown() {
        use std::time::Duration;
        // A pigeonhole-flavoured integer problem that needs real search.
        let mut s = Solver::new();
        let n = 9;
        let vars: Vec<TermId> = (0..n).map(|i| s.int_var(&format!("v{i}"))).collect();
        let zero = s.int(0);
        let bound = s.int(n as i64 - 2);
        for &v in &vars {
            let a = s.ge(v, zero);
            let b = s.le(v, bound);
            s.assert(a);
            s.assert(b);
        }
        // All distinct: |vi - vj| >= 1 via disjunctions.
        for i in 0..n {
            for j in (i + 1)..n {
                let lt = s.lt(vars[i], vars[j]);
                let gt = s.gt(vars[i], vars[j]);
                let d = s.or(&[lt, gt]);
                s.assert(d);
            }
        }
        s.set_budget(Budget {
            timeout: Some(Duration::from_millis(50)),
            max_sat_conflicts: Some(10_000_000),
            max_bb_nodes: 1_000_000_000,
        });
        // n values in n-1 slots, all distinct: unsat, but the lazy loop
        // with full models will churn; we only require graceful Unknown or
        // a proven Unsat — never a wrong Sat.
        let r = s.check();
        assert_ne!(r, SatResult::Sat);
    }

    #[test]
    fn budget_escalation_scales_every_limit_and_saturates() {
        let b = Budget {
            timeout: Some(Duration::from_secs(2)),
            max_sat_conflicts: Some(1_000),
            max_bb_nodes: 500,
        };
        let e = b.escalate(4);
        assert_eq!(e.timeout, Some(Duration::from_secs(8)));
        assert_eq!(e.max_sat_conflicts, Some(4_000));
        assert_eq!(e.max_bb_nodes, 2_000);
        // factor 0 is treated as 1; u64 limits saturate instead of wrapping.
        let same = b.escalate(0);
        assert_eq!(same.max_bb_nodes, 500);
        let huge = Budget {
            timeout: None,
            max_sat_conflicts: Some(u64::MAX / 2),
            max_bb_nodes: u64::MAX / 2,
        }
        .escalate(1_000);
        assert_eq!(huge.max_bb_nodes, u64::MAX);
        assert_eq!(huge.max_sat_conflicts, Some(u64::MAX));
        // tight() really is tighter than the default on every axis.
        let (t, d) = (Budget::tight(), Budget::default());
        assert!(t.max_bb_nodes < d.max_bb_nodes);
        assert!(t.max_sat_conflicts.unwrap() < d.max_sat_conflicts.unwrap());
    }
}
