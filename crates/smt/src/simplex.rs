//! Bounded-variable simplex with Farkas-style conflict explanations.
//!
//! The classic "simplex for DPLL(T)" architecture (de Moura & Bjørner):
//! every linear constraint `Σ aᵢxᵢ ⋈ c` is materialized once as a *slack
//! variable* `s = Σ aᵢxᵢ` (a tableau row); asserting the constraint then
//! just places a bound on `s`. The solver maintains an assignment β that
//! always satisfies the tableau equations and all *nonbasic* bounds;
//! `check` pivots (Bland's rule, guaranteeing termination) until basic
//! bounds hold too, or reports a conflict as the set of bound *tags* that
//! form an infeasible row — a minimal explanation the SAT solver turns
//! into a blocking clause.
//!
//! Bounds support push/pop (a trail), which the integer layer uses for
//! branch & bound.

use crate::rational::Rat;

/// Index of a simplex variable (problem vars and slack vars alike).
pub type SpxVar = usize;

/// Opaque tag identifying which asserted atom produced a bound; conflicts
/// are reported as sets of tags.
pub type Tag = usize;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Bound {
    value: Rat,
    tag: Tag,
}

/// A tableau row: `basic = Σ coeff · nonbasic`.
#[derive(Debug, Clone)]
struct Row {
    basic: SpxVar,
    /// Sparse (var, coeff) pairs over *nonbasic* variables, coeff ≠ 0.
    coeffs: Vec<(SpxVar, Rat)>,
}

impl Row {
    fn coeff(&self, v: SpxVar) -> Rat {
        self.coeffs
            .iter()
            .find(|&&(u, _)| u == v)
            .map(|&(_, c)| c)
            .unwrap_or(Rat::ZERO)
    }
}

/// Result of a feasibility check.
#[derive(Debug, Clone, PartialEq)]
pub enum SpxResult {
    Feasible,
    /// Tags of the bounds forming an infeasible combination.
    Infeasible(Vec<Tag>),
}

#[derive(Debug, Clone, Copy)]
enum TrailOp {
    Lower(SpxVar, Option<(Rat, Tag)>),
    Upper(SpxVar, Option<(Rat, Tag)>),
}

/// The simplex tableau and assignment.
pub struct Simplex {
    num_vars: usize,
    rows: Vec<Row>,
    /// `row_of[v]`: index into `rows` if `v` is basic.
    row_of: Vec<Option<usize>>,
    values: Vec<Rat>,
    lower: Vec<Option<Bound>>,
    upper: Vec<Option<Bound>>,
    trail: Vec<TrailOp>,
    trail_lim: Vec<usize>,
    /// Total pivots performed (for diagnostics / benches).
    pub pivots: u64,
}

impl Default for Simplex {
    fn default() -> Self {
        Self::new()
    }
}

impl Simplex {
    pub fn new() -> Simplex {
        Simplex {
            num_vars: 0,
            rows: Vec::new(),
            row_of: Vec::new(),
            values: Vec::new(),
            lower: Vec::new(),
            upper: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            pivots: 0,
        }
    }

    /// Allocate a fresh (nonbasic) variable with value 0 and no bounds.
    pub fn new_var(&mut self) -> SpxVar {
        let v = self.num_vars;
        self.num_vars += 1;
        self.row_of.push(None);
        self.values.push(Rat::ZERO);
        self.lower.push(None);
        self.upper.push(None);
        v
    }

    pub fn value(&self, v: SpxVar) -> Rat {
        self.values[v]
    }

    /// Introduce a slack variable `s = Σ coeff·var` as a new basic row.
    /// Definition terms may themselves be basic; they are substituted.
    pub fn add_row(&mut self, def: &[(SpxVar, Rat)]) -> SpxVar {
        let s = self.new_var();
        // Expand definition over nonbasic variables.
        let mut expanded: Vec<(SpxVar, Rat)> = Vec::new();
        for &(v, c) in def {
            if c.is_zero() {
                continue;
            }
            match self.row_of[v] {
                None => add_term(&mut expanded, v, c),
                Some(ri) => {
                    let coeffs = self.rows[ri].coeffs.clone();
                    for (u, cu) in coeffs {
                        add_term(&mut expanded, u, c * cu);
                    }
                }
            }
        }
        // Value consistent with current assignment.
        let val = expanded
            .iter()
            .fold(Rat::ZERO, |acc, &(v, c)| acc + c * self.values[v]);
        self.values[s] = val;
        self.row_of[s] = Some(self.rows.len());
        self.rows.push(Row {
            basic: s,
            coeffs: expanded,
        });
        s
    }

    /// Open a backtracking scope for bounds.
    pub fn push(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    /// Undo all bound changes since the matching [`Simplex::push`].
    pub fn pop(&mut self) {
        let lim = self.trail_lim.pop().expect("pop without push");
        while self.trail.len() > lim {
            match self.trail.pop().unwrap() {
                TrailOp::Lower(v, old) => {
                    self.lower[v] = old.map(|(value, tag)| Bound { value, tag })
                }
                TrailOp::Upper(v, old) => {
                    self.upper[v] = old.map(|(value, tag)| Bound { value, tag })
                }
            }
        }
    }

    /// Clear every bound (keeps rows and the current assignment).
    pub fn reset_bounds(&mut self) {
        assert!(self.trail_lim.is_empty(), "reset inside a push scope");
        self.trail.clear();
        for v in 0..self.num_vars {
            self.lower[v] = None;
            self.upper[v] = None;
        }
    }

    /// Assert `v ≥ value` (tagged). Returns an immediate conflict if it
    /// crosses the upper bound of `v`.
    pub fn assert_lower(&mut self, v: SpxVar, value: Rat, tag: Tag) -> SpxResult {
        if let Some(ub) = self.upper[v] {
            if value > ub.value {
                return SpxResult::Infeasible(vec![tag, ub.tag]);
            }
        }
        match self.lower[v] {
            Some(lb) if lb.value >= value => return SpxResult::Feasible,
            old => {
                self.trail
                    .push(TrailOp::Lower(v, old.map(|b| (b.value, b.tag))));
                self.lower[v] = Some(Bound { value, tag });
            }
        }
        if self.row_of[v].is_none() && self.values[v] < value {
            self.update_nonbasic(v, value);
        }
        SpxResult::Feasible
    }

    /// Assert `v ≤ value` (tagged).
    pub fn assert_upper(&mut self, v: SpxVar, value: Rat, tag: Tag) -> SpxResult {
        if let Some(lb) = self.lower[v] {
            if value < lb.value {
                return SpxResult::Infeasible(vec![tag, lb.tag]);
            }
        }
        match self.upper[v] {
            Some(ub) if ub.value <= value => return SpxResult::Feasible,
            old => {
                self.trail
                    .push(TrailOp::Upper(v, old.map(|b| (b.value, b.tag))));
                self.upper[v] = Some(Bound { value, tag });
            }
        }
        if self.row_of[v].is_none() && self.values[v] > value {
            self.update_nonbasic(v, value);
        }
        SpxResult::Feasible
    }

    /// Set a nonbasic variable's value, updating dependent basic variables.
    fn update_nonbasic(&mut self, v: SpxVar, value: Rat) {
        debug_assert!(self.row_of[v].is_none());
        let delta = value - self.values[v];
        if delta.is_zero() {
            return;
        }
        self.values[v] = value;
        for row in &self.rows {
            let c = row.coeff(v);
            if !c.is_zero() {
                self.values[row.basic] += c * delta;
            }
        }
    }

    /// Repair the assignment until all bounds hold (Bland's rule).
    pub fn check(&mut self) -> SpxResult {
        loop {
            // Smallest-index basic variable violating a bound.
            let mut violated: Option<(SpxVar, Rat, bool)> = None; // (var, target, need_increase)
            for row in &self.rows {
                let b = row.basic;
                if let Some(lb) = self.lower[b] {
                    if self.values[b] < lb.value {
                        if violated.is_none_or(|(v, _, _)| b < v) {
                            violated = Some((b, lb.value, true));
                        }
                        continue;
                    }
                }
                if let Some(ub) = self.upper[b] {
                    if self.values[b] > ub.value && violated.is_none_or(|(v, _, _)| b < v) {
                        violated = Some((b, ub.value, false));
                    }
                }
            }
            let Some((xi, target, need_increase)) = violated else {
                return SpxResult::Feasible;
            };
            let ri = self.row_of[xi].expect("violated var is basic");
            // Find a pivot column (smallest var id — Bland).
            let mut pivot: Option<SpxVar> = None;
            for &(xj, c) in &self.rows[ri].coeffs {
                let can_move = if need_increase {
                    // xi must grow: xj can grow if c>0 and below upper,
                    // or shrink if c<0 and above lower.
                    (c.is_positive() && self.can_increase(xj))
                        || (c.is_negative() && self.can_decrease(xj))
                } else {
                    (c.is_positive() && self.can_decrease(xj))
                        || (c.is_negative() && self.can_increase(xj))
                };
                if can_move && pivot.is_none_or(|p| xj < p) {
                    pivot = Some(xj);
                }
            }
            match pivot {
                Some(xj) => {
                    self.pivot_and_update(ri, xi, xj, target);
                }
                None => {
                    // Farkas explanation: the violated bound plus the
                    // limiting bound of every column in the row.
                    let mut tags = Vec::new();
                    let bound = if need_increase {
                        self.lower[xi]
                    } else {
                        self.upper[xi]
                    };
                    tags.push(bound.expect("violated bound exists").tag);
                    for &(xj, c) in &self.rows[ri].coeffs {
                        let limiting = if need_increase {
                            if c.is_positive() {
                                self.upper[xj]
                            } else {
                                self.lower[xj]
                            }
                        } else if c.is_positive() {
                            self.lower[xj]
                        } else {
                            self.upper[xj]
                        };
                        tags.push(limiting.expect("column is limited").tag);
                    }
                    tags.sort_unstable();
                    tags.dedup();
                    return SpxResult::Infeasible(tags);
                }
            }
        }
    }

    fn can_increase(&self, v: SpxVar) -> bool {
        self.upper[v].is_none_or(|ub| self.values[v] < ub.value)
    }

    fn can_decrease(&self, v: SpxVar) -> bool {
        self.lower[v].is_none_or(|lb| self.values[v] > lb.value)
    }

    /// Pivot basic `xi` (row `ri`) with nonbasic `xj`, then set `xi`'s
    /// value to `target`.
    fn pivot_and_update(&mut self, ri: usize, xi: SpxVar, xj: SpxVar, target: Rat) {
        self.pivots += 1;
        let aij = self.rows[ri].coeff(xj);
        debug_assert!(!aij.is_zero());
        // θ moves xj so that xi hits target.
        let theta = (target - self.values[xi]) / aij;
        self.values[xi] = target;
        self.values[xj] += theta;
        // Update all other basic values (they depend on xj).
        for (k, row) in self.rows.iter().enumerate() {
            if k != ri {
                let c = row.coeff(xj);
                if !c.is_zero() {
                    self.values[row.basic] += c * theta;
                }
            }
        }
        // Rewrite row ri: xj = (xi - Σ_{k≠j} a_k x_k) / aij.
        let old = std::mem::replace(
            &mut self.rows[ri],
            Row {
                basic: xj,
                coeffs: Vec::new(),
            },
        );
        let inv = aij.recip();
        let mut new_coeffs: Vec<(SpxVar, Rat)> = vec![(xi, inv)];
        for &(v, c) in &old.coeffs {
            if v != xj {
                add_term(&mut new_coeffs, v, -c * inv);
            }
        }
        self.rows[ri].coeffs = new_coeffs;
        self.row_of[xi] = None;
        self.row_of[xj] = Some(ri);
        // Substitute xj in every other row.
        let sub = self.rows[ri].coeffs.clone();
        for k in 0..self.rows.len() {
            if k == ri {
                continue;
            }
            let c = self.rows[k].coeff(xj);
            if c.is_zero() {
                continue;
            }
            self.rows[k].coeffs.retain(|&(v, _)| v != xj);
            let existing = std::mem::take(&mut self.rows[k].coeffs);
            let mut merged = existing;
            for &(v, cv) in &sub {
                add_term(&mut merged, v, c * cv);
            }
            self.rows[k].coeffs = merged;
        }
    }

    /// Debug invariant: every row equation holds under the assignment.
    #[cfg(test)]
    fn assert_invariants(&self) {
        for row in &self.rows {
            let sum = row
                .coeffs
                .iter()
                .fold(Rat::ZERO, |acc, &(v, c)| acc + c * self.values[v]);
            assert_eq!(sum, self.values[row.basic], "row equation broken");
            for &(v, _) in &row.coeffs {
                assert!(self.row_of[v].is_none(), "row references a basic var");
            }
        }
        // Nonbasic variables respect their bounds.
        for v in 0..self.num_vars {
            if self.row_of[v].is_none() {
                if let Some(lb) = self.lower[v] {
                    assert!(self.values[v] >= lb.value, "nonbasic below lower bound");
                }
                if let Some(ub) = self.upper[v] {
                    assert!(self.values[v] <= ub.value, "nonbasic above upper bound");
                }
            }
        }
    }
}

fn add_term(terms: &mut Vec<(SpxVar, Rat)>, v: SpxVar, c: Rat) {
    if c.is_zero() {
        return;
    }
    if let Some(t) = terms.iter_mut().find(|t| t.0 == v) {
        t.1 += c;
        if t.1.is_zero() {
            terms.retain(|&(u, _)| u != v);
        }
    } else {
        terms.push((v, c));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rat {
        Rat::int(n)
    }

    #[test]
    fn feasible_simple_system() {
        // x + y <= 10, x >= 3, y >= 4.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let sxy = s.add_row(&[(x, Rat::ONE), (y, Rat::ONE)]);
        assert_eq!(s.assert_upper(sxy, r(10), 0), SpxResult::Feasible);
        assert_eq!(s.assert_lower(x, r(3), 1), SpxResult::Feasible);
        assert_eq!(s.assert_lower(y, r(4), 2), SpxResult::Feasible);
        assert_eq!(s.check(), SpxResult::Feasible);
        s.assert_invariants();
        assert!(s.value(x) >= r(3));
        assert!(s.value(y) >= r(4));
        assert!(s.value(x) + s.value(y) <= r(10));
    }

    #[test]
    fn infeasible_with_minimal_explanation() {
        // x + y >= 8, x <= 3, y <= 3: conflict must cite exactly these.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var(); // irrelevant var with bounds
        let sxy = s.add_row(&[(x, Rat::ONE), (y, Rat::ONE)]);
        s.assert_lower(sxy, r(8), 10);
        s.assert_upper(x, r(3), 11);
        s.assert_upper(y, r(3), 12);
        s.assert_lower(z, r(0), 13);
        match s.check() {
            SpxResult::Infeasible(mut tags) => {
                tags.sort_unstable();
                assert_eq!(tags, vec![10, 11, 12], "explanation must not include var z");
            }
            r => panic!("expected infeasible, got {r:?}"),
        }
    }

    #[test]
    fn direct_bound_clash() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, r(5), 1);
        match s.assert_upper(x, r(4), 2) {
            SpxResult::Infeasible(tags) => {
                assert!(tags.contains(&1) && tags.contains(&2));
            }
            r => panic!("expected conflict, got {r:?}"),
        }
    }

    #[test]
    fn chained_rows_with_substitution() {
        // s1 = x + y; s2 = s1 + z (defined over a basic var, needs
        // substitution). s2 = 6, x = 1, y = 2 => z = 3.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let z = s.new_var();
        let s1 = s.add_row(&[(x, Rat::ONE), (y, Rat::ONE)]);
        let s2 = s.add_row(&[(s1, Rat::ONE), (z, Rat::ONE)]);
        s.assert_lower(s2, r(6), 0);
        s.assert_upper(s2, r(6), 1);
        s.assert_lower(x, r(1), 2);
        s.assert_upper(x, r(1), 3);
        s.assert_lower(y, r(2), 4);
        s.assert_upper(y, r(2), 5);
        assert_eq!(s.check(), SpxResult::Feasible);
        s.assert_invariants();
        assert_eq!(s.value(z), r(3));
        assert_eq!(s.value(s1), r(3));
    }

    #[test]
    fn push_pop_restores_feasibility() {
        let mut s = Simplex::new();
        let x = s.new_var();
        s.assert_lower(x, r(0), 0);
        s.assert_upper(x, r(10), 1);
        assert_eq!(s.check(), SpxResult::Feasible);
        s.push();
        s.assert_lower(x, r(20), 2); // direct clash
        match s.assert_lower(x, r(20), 2) {
            SpxResult::Infeasible(_) => {}
            _ => {
                // the first assert may have succeeded in recording before
                // detecting; a check must fail then
            }
        }
        s.pop();
        assert_eq!(s.check(), SpxResult::Feasible);
        assert!(s.value(x) <= r(10) && s.value(x) >= r(0));
    }

    #[test]
    fn negative_coefficients_pivot_correctly() {
        // s = x - y; s >= 2, x <= 1 => y <= -1; also y >= 0 infeasible.
        let mut s = Simplex::new();
        let x = s.new_var();
        let y = s.new_var();
        let d = s.add_row(&[(x, Rat::ONE), (y, -Rat::ONE)]);
        s.assert_lower(d, r(2), 0);
        s.assert_upper(x, r(1), 1);
        s.assert_lower(y, r(0), 2);
        match s.check() {
            SpxResult::Infeasible(mut tags) => {
                tags.sort_unstable();
                assert_eq!(tags, vec![0, 1, 2]);
            }
            r => panic!("expected infeasible, got {r:?}"),
        }
    }

    #[test]
    fn rational_solution_values() {
        // 2x = 5 -> x = 5/2 (rationally feasible).
        let mut s = Simplex::new();
        let x = s.new_var();
        let tw = s.add_row(&[(x, r(2))]);
        s.assert_lower(tw, r(5), 0);
        s.assert_upper(tw, r(5), 1);
        assert_eq!(s.check(), SpxResult::Feasible);
        assert_eq!(s.value(x), Rat::new(5, 2));
    }

    #[test]
    fn many_random_feasible_systems() {
        // Random interval systems around a planted point stay feasible and
        // invariants hold after checking.
        let mut state = 42u64;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            ((state >> 33) % 21) as i64 - 10
        };
        for _ in 0..20 {
            let mut s = Simplex::new();
            let vars: Vec<SpxVar> = (0..6).map(|_| s.new_var()).collect();
            let planted: Vec<i64> = (0..6).map(|_| next()).collect();
            let mut tag = 0;
            for _ in 0..8 {
                let c1 = next();
                let c2 = next();
                let (i, j) = (
                    (next().unsigned_abs() as usize) % 6,
                    (next().unsigned_abs() as usize) % 6,
                );
                let row = s.add_row(&[(vars[i], r(c1)), (vars[j], r(c2))]);
                let val = c1 * planted[i] + c2 * planted[j];
                s.assert_upper(row, r(val + next().abs()), tag);
                tag += 1;
                s.assert_lower(row, r(val - next().abs()), tag);
                tag += 1;
            }
            assert_eq!(s.check(), SpxResult::Feasible);
            s.assert_invariants();
        }
    }
}
