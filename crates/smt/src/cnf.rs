//! Tseitin conversion from the term DAG to CNF over a [`SatSolver`].
//!
//! Boolean structure becomes auxiliary variables and definitional clauses;
//! theory atoms (`Le` nodes) and boolean variables become plain SAT
//! variables, with atoms recorded in a registry the lazy-SMT loop reads
//! back after each SAT model.

use crate::sat::{Lit, SatSolver, Var};
use crate::term::{TermId, TermKind, TermManager};
use std::collections::HashMap;

/// CNF encoder with an atom registry.
pub struct Encoder {
    pub sat: SatSolver,
    lit_of: HashMap<TermId, Lit>,
    /// Registration order of theory atoms: (atom term, SAT var).
    atoms: Vec<(TermId, Var)>,
    /// A SAT variable forced true (lazily created for `True`/`False`).
    const_true: Option<Var>,
}

impl Default for Encoder {
    fn default() -> Self {
        Self::new()
    }
}

impl Encoder {
    pub fn new() -> Encoder {
        Encoder {
            sat: SatSolver::new(),
            lit_of: HashMap::new(),
            atoms: Vec::new(),
            const_true: None,
        }
    }

    /// Theory atoms seen so far, in registration order.
    pub fn atoms(&self) -> &[(TermId, Var)] {
        &self.atoms
    }

    fn true_lit(&mut self) -> Lit {
        let v = match self.const_true {
            Some(v) => v,
            None => {
                let v = self.sat.new_var();
                self.sat.add_clause(&[Lit::pos(v)]);
                self.const_true = Some(v);
                v
            }
        };
        Lit::pos(v)
    }

    /// The literal representing a bool-sorted term (Tseitin, memoized).
    pub fn lit(&mut self, tm: &TermManager, t: TermId) -> Lit {
        if let Some(&l) = self.lit_of.get(&t) {
            return l;
        }
        let l = match tm.kind(t) {
            TermKind::True => self.true_lit(),
            TermKind::False => self.true_lit().negate(),
            TermKind::BoolVar(_) => Lit::pos(self.sat.new_var()),
            TermKind::Le(_) => {
                let v = self.sat.new_var();
                self.atoms.push((t, v));
                Lit::pos(v)
            }
            TermKind::Not(inner) => {
                let inner = *inner;
                self.lit(tm, inner).negate()
            }
            TermKind::And(xs) => {
                let xs = xs.clone();
                let lits: Vec<Lit> = xs.iter().map(|&x| self.lit(tm, x)).collect();
                let v = Lit::pos(self.sat.new_var());
                // v -> xi
                for &lx in &lits {
                    self.sat.add_clause(&[v.negate(), lx]);
                }
                // (x1 & ... & xn) -> v
                let mut big: Vec<Lit> = lits.iter().map(|l| l.negate()).collect();
                big.push(v);
                self.sat.add_clause(&big);
                v
            }
            TermKind::Or(xs) => {
                let xs = xs.clone();
                let lits: Vec<Lit> = xs.iter().map(|&x| self.lit(tm, x)).collect();
                let v = Lit::pos(self.sat.new_var());
                // xi -> v
                for &lx in &lits {
                    self.sat.add_clause(&[lx.negate(), v]);
                }
                // v -> (x1 | ... | xn)
                let mut big: Vec<Lit> = lits.clone();
                big.insert(0, v.negate());
                self.sat.add_clause(&big);
                v
            }
            k => panic!("not a boolean term: {k:?}"),
        };
        self.lit_of.insert(t, l);
        l
    }

    /// Assert a bool-sorted term as a top-level constraint.
    ///
    /// Top-level conjunctions are split (no auxiliary variable), top-level
    /// disjunctions become a single clause.
    pub fn assert_formula(&mut self, tm: &TermManager, t: TermId) {
        match tm.kind(t) {
            TermKind::True => {}
            TermKind::False => {
                self.sat.add_clause(&[]);
            }
            TermKind::And(xs) => {
                for &x in &xs.clone() {
                    self.assert_formula(tm, x);
                }
            }
            TermKind::Or(xs) => {
                let xs = xs.clone();
                let clause: Vec<Lit> = xs.iter().map(|&x| self.lit(tm, x)).collect();
                self.sat.add_clause(&clause);
            }
            _ => {
                let l = self.lit(tm, t);
                self.sat.add_clause(&[l]);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sat::SolveResult;
    use crate::term::TermManager;

    #[test]
    fn pure_boolean_sat() {
        let mut tm = TermManager::new();
        let mut enc = Encoder::new();
        let p = tm.bool_var("p");
        let q = tm.bool_var("q");
        let np = tm.not(p);
        let f1 = tm.or(&[p, q]);
        let f2 = tm.or(&[np, q]);
        enc.assert_formula(&tm, f1);
        enc.assert_formula(&tm, f2);
        assert_eq!(enc.sat.solve(), SolveResult::Sat);
        let lq = enc.lit(&tm, q);
        assert!(enc.sat.model_value(lq.var()), "q must be true");
    }

    #[test]
    fn pure_boolean_unsat() {
        let mut tm = TermManager::new();
        let mut enc = Encoder::new();
        let p = tm.bool_var("p");
        let q = tm.bool_var("q");
        // (p <-> q) & (p <-> !q) is unsat.
        let nq = tm.not(q);
        let f1 = tm.iff(p, q);
        let f2 = tm.iff(p, nq);
        enc.assert_formula(&tm, f1);
        enc.assert_formula(&tm, f2);
        assert_eq!(enc.sat.solve(), SolveResult::Unsat);
    }

    #[test]
    fn atoms_are_registered_once() {
        let mut tm = TermManager::new();
        let mut enc = Encoder::new();
        let x = tm.int_var("x");
        let c = tm.int(3);
        let a = tm.le(x, c);
        let na = tm.not(a);
        let f = tm.or(&[a, na]); // simplifies to true, but force paths:
        assert_eq!(f, tm.true_());
        enc.assert_formula(&tm, a);
        let _ = enc.lit(&tm, na);
        assert_eq!(enc.atoms().len(), 1, "hash-consed atom registered once");
    }

    #[test]
    fn nested_structure_encodes_correctly() {
        let mut tm = TermManager::new();
        let mut enc = Encoder::new();
        let p = tm.bool_var("p");
        let q = tm.bool_var("q");
        let r = tm.bool_var("r");
        // (p & (q | r)) with p forced and q,r forced false -> unsat.
        let qr = tm.or(&[q, r]);
        let f = tm.and(&[p, qr]);
        enc.assert_formula(&tm, f);
        let nq = tm.not(q);
        let nr = tm.not(r);
        enc.assert_formula(&tm, nq);
        enc.assert_formula(&tm, nr);
        assert_eq!(enc.sat.solve(), SolveResult::Unsat);
    }

    #[test]
    fn true_false_constants() {
        let tm = TermManager::new();
        let mut enc = Encoder::new();
        let t = tm.true_();
        enc.assert_formula(&tm, t); // no-op
        assert_eq!(enc.sat.solve(), SolveResult::Sat);
        let f = tm.false_();
        enc.assert_formula(&tm, f);
        assert_eq!(enc.sat.solve(), SolveResult::Unsat);
    }
}
