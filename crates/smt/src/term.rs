//! Hash-consed term representation with light normalization.
//!
//! Integer-sorted terms are kept in a canonical **linear form**
//! ([`LinExpr`]): a sorted coefficient list over *base terms* (integer
//! variables and `ite` nodes) plus a constant. All comparison atoms are
//! normalized to `expr ≤ 0`; `≥`, `<`, `>` and `=` are desugared at
//! construction, so the downstream pipeline only ever sees one atom shape.

use std::collections::HashMap;

/// Index of a term in its [`TermManager`].
pub type TermId = u32;

/// Sorts of the two-sorted QF_LIA language.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sort {
    Bool,
    Int,
}

/// A linear integer expression: `Σ coeff·base + constant`.
///
/// Base terms are [`TermKind::IntVar`] or [`TermKind::Ite`] term ids, kept
/// sorted by id with no zero coefficients and no duplicates.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct LinExpr {
    pub terms: Vec<(TermId, i64)>,
    pub constant: i64,
}

impl LinExpr {
    pub fn constant(c: i64) -> LinExpr {
        LinExpr {
            terms: Vec::new(),
            constant: c,
        }
    }

    pub fn var(v: TermId) -> LinExpr {
        LinExpr {
            terms: vec![(v, 1)],
            constant: 0,
        }
    }

    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// `self + k·other`.
    pub fn add_scaled(&self, other: &LinExpr, k: i64) -> LinExpr {
        if k == 0 {
            return self.clone();
        }
        let mut terms = Vec::with_capacity(self.terms.len() + other.terms.len());
        let (mut i, mut j) = (0, 0);
        while i < self.terms.len() || j < other.terms.len() {
            let take_left = j >= other.terms.len()
                || (i < self.terms.len() && self.terms[i].0 <= other.terms[j].0);
            let take_right = i >= self.terms.len()
                || (j < other.terms.len() && other.terms[j].0 <= self.terms[i].0);
            if take_left && take_right {
                let c = self.terms[i].1 + k * other.terms[j].1;
                if c != 0 {
                    terms.push((self.terms[i].0, c));
                }
                i += 1;
                j += 1;
            } else if take_left {
                terms.push(self.terms[i]);
                i += 1;
            } else {
                terms.push((other.terms[j].0, k * other.terms[j].1));
                j += 1;
            }
        }
        LinExpr {
            terms,
            constant: self.constant + k * other.constant,
        }
    }

    pub fn scale(&self, k: i64) -> LinExpr {
        if k == 0 {
            return LinExpr::constant(0);
        }
        LinExpr {
            terms: self.terms.iter().map(|&(v, c)| (v, c * k)).collect(),
            constant: self.constant * k,
        }
    }
}

/// The node kinds of the term graph.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TermKind {
    // --- Bool sort ---
    True,
    False,
    BoolVar(u32),
    Not(TermId),
    And(Vec<TermId>),
    Or(Vec<TermId>),
    /// Atom: `expr ≤ 0`.
    Le(LinExpr),
    // --- Int sort ---
    IntVar(u32),
    /// Canonical linear combination (non-trivial: not a bare var/const).
    Linear(LinExpr),
    /// Integer-valued if-then-else: `ite(cond, then, else)`.
    Ite(TermId, TermId, TermId),
}

/// Hash-consing term factory; every formula in a [`crate::Solver`] lives in
/// one of these.
pub struct TermManager {
    kinds: Vec<TermKind>,
    dedup: HashMap<TermKind, TermId>,
    var_names: Vec<String>,
    true_id: TermId,
    false_id: TermId,
}

impl Default for TermManager {
    fn default() -> Self {
        Self::new()
    }
}

impl TermManager {
    pub fn new() -> TermManager {
        let mut tm = TermManager {
            kinds: Vec::new(),
            dedup: HashMap::new(),
            var_names: Vec::new(),
            true_id: 0,
            false_id: 0,
        };
        tm.true_id = tm.intern(TermKind::True);
        tm.false_id = tm.intern(TermKind::False);
        tm
    }

    fn intern(&mut self, kind: TermKind) -> TermId {
        if let Some(&id) = self.dedup.get(&kind) {
            return id;
        }
        let id = self.kinds.len() as TermId;
        self.kinds.push(kind.clone());
        self.dedup.insert(kind, id);
        id
    }

    pub fn kind(&self, t: TermId) -> &TermKind {
        &self.kinds[t as usize]
    }

    pub fn num_terms(&self) -> usize {
        self.kinds.len()
    }

    pub fn sort(&self, t: TermId) -> Sort {
        match self.kind(t) {
            TermKind::True
            | TermKind::False
            | TermKind::BoolVar(_)
            | TermKind::Not(_)
            | TermKind::And(_)
            | TermKind::Or(_)
            | TermKind::Le(_) => Sort::Bool,
            TermKind::IntVar(_) | TermKind::Linear(_) | TermKind::Ite(..) => Sort::Int,
        }
    }

    pub fn var_name(&self, index: u32) -> &str {
        &self.var_names[index as usize]
    }

    // ---- leaves ----

    pub fn true_(&self) -> TermId {
        self.true_id
    }

    pub fn false_(&self) -> TermId {
        self.false_id
    }

    pub fn bool_var(&mut self, name: &str) -> TermId {
        let idx = self.var_names.len() as u32;
        self.var_names.push(name.to_string());
        self.intern(TermKind::BoolVar(idx))
    }

    pub fn int_var(&mut self, name: &str) -> TermId {
        let idx = self.var_names.len() as u32;
        self.var_names.push(name.to_string());
        self.intern(TermKind::IntVar(idx))
    }

    pub fn int(&mut self, c: i64) -> TermId {
        self.intern(TermKind::Linear(LinExpr::constant(c)))
    }

    // ---- int structure ----

    /// The linear view of any int-sorted term.
    pub fn as_linear(&self, t: TermId) -> LinExpr {
        match self.kind(t) {
            TermKind::IntVar(_) | TermKind::Ite(..) => LinExpr::var(t),
            TermKind::Linear(l) => l.clone(),
            k => panic!("not an int term: {k:?}"),
        }
    }

    fn intern_linear(&mut self, l: LinExpr) -> TermId {
        // A bare base term stays itself (preserves sharing).
        if l.constant == 0 && l.terms.len() == 1 && l.terms[0].1 == 1 {
            return l.terms[0].0;
        }
        self.intern(TermKind::Linear(l))
    }

    pub fn add(&mut self, ts: &[TermId]) -> TermId {
        let mut acc = LinExpr::constant(0);
        for &t in ts {
            let l = self.as_linear(t);
            acc = acc.add_scaled(&l, 1);
        }
        self.intern_linear(acc)
    }

    pub fn sub(&mut self, a: TermId, b: TermId) -> TermId {
        let la = self.as_linear(a);
        let lb = self.as_linear(b);
        let l = la.add_scaled(&lb, -1);
        self.intern_linear(l)
    }

    pub fn mul_const(&mut self, k: i64, t: TermId) -> TermId {
        let l = self.as_linear(t).scale(k);
        self.intern_linear(l)
    }

    pub fn neg(&mut self, t: TermId) -> TermId {
        self.mul_const(-1, t)
    }

    /// Integer-valued `ite`; folds constant conditions.
    pub fn ite(&mut self, cond: TermId, then: TermId, els: TermId) -> TermId {
        debug_assert_eq!(self.sort(cond), Sort::Bool);
        debug_assert_eq!(self.sort(then), Sort::Int);
        debug_assert_eq!(self.sort(els), Sort::Int);
        if cond == self.true_id {
            return then;
        }
        if cond == self.false_id {
            return els;
        }
        if then == els {
            return then;
        }
        self.intern(TermKind::Ite(cond, then, els))
    }

    // ---- atoms ----

    /// `a ≤ b`, normalized to `a − b ≤ 0`.
    pub fn le(&mut self, a: TermId, b: TermId) -> TermId {
        let la = self.as_linear(a);
        let lb = self.as_linear(b);
        self.le_zero(la.add_scaled(&lb, -1))
    }

    /// `expr ≤ 0` with constant folding and coefficient gcd tightening.
    pub fn le_zero(&mut self, mut expr: LinExpr) -> TermId {
        if expr.is_constant() {
            return if expr.constant <= 0 {
                self.true_id
            } else {
                self.false_id
            };
        }
        // Integer tightening: (Σ g·aᵢxᵢ) + c ≤ 0  ⇔  Σ aᵢxᵢ ≤ floor(−c/g).
        let g = expr
            .terms
            .iter()
            .fold(0i64, |acc, &(_, c)| gcd64(acc, c.abs()));
        if g > 1 {
            let bound = (-(expr.constant as i128)).div_euclid(g as i128) as i64;
            for t in &mut expr.terms {
                t.1 /= g;
            }
            expr.constant = -bound;
        }
        self.intern(TermKind::Le(expr))
    }

    pub fn ge(&mut self, a: TermId, b: TermId) -> TermId {
        self.le(b, a)
    }

    /// `a < b` over the integers: `a + 1 ≤ b`.
    pub fn lt(&mut self, a: TermId, b: TermId) -> TermId {
        let la = self.as_linear(a);
        let lb = self.as_linear(b);
        let mut e = la.add_scaled(&lb, -1);
        e.constant += 1;
        self.le_zero(e)
    }

    pub fn gt(&mut self, a: TermId, b: TermId) -> TermId {
        self.lt(b, a)
    }

    /// Integer equality, desugared to a conjunction of two inequalities so
    /// that its *negation* stays within the atom language.
    pub fn eq(&mut self, a: TermId, b: TermId) -> TermId {
        let le = self.le(a, b);
        let ge = self.ge(a, b);
        self.and(&[le, ge])
    }

    // ---- boolean structure ----

    pub fn not(&mut self, t: TermId) -> TermId {
        match self.kind(t) {
            TermKind::True => self.false_id,
            TermKind::False => self.true_id,
            TermKind::Not(inner) => *inner,
            _ => self.intern(TermKind::Not(t)),
        }
    }

    pub fn and(&mut self, ts: &[TermId]) -> TermId {
        let mut flat = Vec::new();
        for &t in ts {
            match self.kind(t) {
                TermKind::True => {}
                TermKind::False => return self.false_id,
                TermKind::And(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        // x ∧ ¬x = false
        for &t in &flat {
            if let TermKind::Not(inner) = self.kind(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.false_id;
                }
            }
        }
        match flat.len() {
            0 => self.true_id,
            1 => flat[0],
            _ => self.intern(TermKind::And(flat)),
        }
    }

    pub fn or(&mut self, ts: &[TermId]) -> TermId {
        let mut flat = Vec::new();
        for &t in ts {
            match self.kind(t) {
                TermKind::False => {}
                TermKind::True => return self.true_id,
                TermKind::Or(inner) => flat.extend(inner.iter().copied()),
                _ => flat.push(t),
            }
        }
        flat.sort_unstable();
        flat.dedup();
        for &t in &flat {
            if let TermKind::Not(inner) = self.kind(t) {
                if flat.binary_search(inner).is_ok() {
                    return self.true_id;
                }
            }
        }
        match flat.len() {
            0 => self.false_id,
            1 => flat[0],
            _ => self.intern(TermKind::Or(flat)),
        }
    }

    pub fn implies(&mut self, a: TermId, b: TermId) -> TermId {
        let na = self.not(a);
        self.or(&[na, b])
    }

    pub fn iff(&mut self, a: TermId, b: TermId) -> TermId {
        let ab = self.implies(a, b);
        let ba = self.implies(b, a);
        self.and(&[ab, ba])
    }

    /// Display a term for diagnostics.
    pub fn display(&self, t: TermId) -> String {
        match self.kind(t) {
            TermKind::True => "true".into(),
            TermKind::False => "false".into(),
            TermKind::BoolVar(i) | TermKind::IntVar(i) => self.var_name(*i).to_string(),
            TermKind::Not(x) => format!("(not {})", self.display(*x)),
            TermKind::And(xs) => {
                format!(
                    "(and {})",
                    xs.iter()
                        .map(|&x| self.display(x))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
            TermKind::Or(xs) => {
                format!(
                    "(or {})",
                    xs.iter()
                        .map(|&x| self.display(x))
                        .collect::<Vec<_>>()
                        .join(" ")
                )
            }
            TermKind::Le(e) => format!("({} <= 0)", self.display_linexpr(e)),
            TermKind::Linear(e) => self.display_linexpr(e),
            TermKind::Ite(c, a, b) => format!(
                "(ite {} {} {})",
                self.display(*c),
                self.display(*a),
                self.display(*b)
            ),
        }
    }

    fn display_linexpr(&self, e: &LinExpr) -> String {
        let mut parts: Vec<String> = e
            .terms
            .iter()
            .map(|&(v, c)| {
                if c == 1 {
                    self.display(v)
                } else {
                    format!("{}*{}", c, self.display(v))
                }
            })
            .collect();
        if e.constant != 0 || parts.is_empty() {
            parts.push(e.constant.to_string());
        }
        parts.join(" + ")
    }
}

fn gcd64(mut a: i64, mut b: i64) -> i64 {
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_consing_dedups() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let a = tm.add(&[x, y]);
        let b = tm.add(&[y, x]);
        assert_eq!(a, b, "commutative sums must intern to one node");
    }

    #[test]
    fn linear_normalization() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        // x + y - x = y (bare var, not a Linear node)
        let s = tm.add(&[x, y]);
        let d = tm.sub(s, x);
        assert_eq!(d, y);
        // 2x - 2x = 0
        let two_x = tm.mul_const(2, x);
        let z = tm.sub(two_x, two_x);
        assert_eq!(z, tm.int(0));
    }

    #[test]
    fn atom_constant_folding() {
        let mut tm = TermManager::new();
        let three = tm.int(3);
        let five = tm.int(5);
        assert_eq!(tm.le(three, five), tm.true_());
        assert_eq!(tm.le(five, three), tm.false_());
        assert_eq!(tm.lt(three, three), tm.false_());
        let e = tm.eq(five, five);
        assert_eq!(e, tm.true_());
    }

    #[test]
    fn gcd_tightening_of_atoms() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        // 2x ≤ 5 tightens to x ≤ 2, identical node to x ≤ 2.
        let two_x = tm.mul_const(2, x);
        let five = tm.int(5);
        let a = tm.le(two_x, five);
        let two = tm.int(2);
        let b = tm.le(x, two);
        assert_eq!(a, b);
    }

    #[test]
    fn boolean_simplifications() {
        let mut tm = TermManager::new();
        let p = tm.bool_var("p");
        let q = tm.bool_var("q");
        let np = tm.not(p);
        assert_eq!(tm.not(np), p, "double negation");
        assert_eq!(tm.and(&[p, np]), tm.false_());
        assert_eq!(tm.or(&[p, np]), tm.true_());
        let t = tm.true_();
        assert_eq!(tm.and(&[p, t]), p);
        assert_eq!(tm.or(&[q, t]), t);
        assert_eq!(tm.and(&[]), tm.true_());
        assert_eq!(tm.or(&[]), tm.false_());
        // Nested conjunction flattens and dedups.
        let pq = tm.and(&[p, q]);
        assert_eq!(tm.and(&[pq, p]), pq);
    }

    #[test]
    fn ite_folds_trivial_cases() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let y = tm.int_var("y");
        let t = tm.true_();
        let f = tm.false_();
        assert_eq!(tm.ite(t, x, y), x);
        assert_eq!(tm.ite(f, x, y), y);
        let p = tm.bool_var("p");
        assert_eq!(tm.ite(p, x, x), x);
        let i = tm.ite(p, x, y);
        assert_eq!(tm.sort(i), Sort::Int);
    }

    #[test]
    fn eq_desugars_to_conjunction() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let c = tm.int(4);
        let e = tm.eq(x, c);
        match tm.kind(e) {
            TermKind::And(parts) => assert_eq!(parts.len(), 2),
            k => panic!("expected And, got {k:?}"),
        }
    }

    #[test]
    fn display_roundtrips_basic_shapes() {
        let mut tm = TermManager::new();
        let x = tm.int_var("x");
        let c = tm.int(4);
        let le = tm.le(x, c);
        assert_eq!(tm.display(le), "(x + -4 <= 0)");
    }
}
