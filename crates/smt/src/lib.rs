//! # fmml-smt — an SMT-lite solver for quantifier-free linear integer arithmetic
//!
//! A from-scratch stand-in for the fragment of Z3 that the paper uses: SMT
//! over **QF_LIA** (boolean combinations of linear integer constraints,
//! including `ite`) plus **optimization** of a linear objective (the
//! CEM's minimal-change correction, §3.2).
//!
//! Architecture (classic lazy SMT):
//!
//! ```text
//!   formula ──► [term]  hash-consed AST, light constant folding
//!           ──► [lower] ite elimination, Eq desugaring, atom extraction
//!           ──► [cnf]   Tseitin conversion to clauses over atom literals
//!           ──► [sat]   CDCL: watched literals, VSIDS, 1-UIP learning
//!           ──► [lia]   bounded-variable simplex + branch & bound,
//!                       Farkas-style conflict explanations fed back as
//!                       blocking clauses
//!           ──► [solver] the lazy refinement loop + binary-search minimize
//! ```
//!
//! The solver is deliberately budgeted: [`Solver::set_budget`] bounds both
//! wall-clock time and SAT conflicts, and exhausting the budget yields
//! [`SatResult::Unknown`] — which is itself a *result* for the paper's
//! §2.3 scalability experiment (packet-level switch models blow up; the
//! solver must fail gracefully, not hang).
//!
//! ## Example
//!
//! ```
//! use fmml_smt::{Solver, SatResult};
//!
//! let mut s = Solver::new();
//! let x = s.int_var("x");
//! let y = s.int_var("y");
//! // x + y == 7, x <= 3, y <= 3 is unsatisfiable over the integers…
//! let sum = s.add(&[x, y]);
//! let seven = s.int(7);
//! let eq = s.eq(sum, seven);
//! s.assert(eq);
//! let three = s.int(3);
//! let c1 = s.le(x, three);
//! let c2 = s.le(y, three);
//! s.assert(c1);
//! s.assert(c2);
//! assert_eq!(s.check(), SatResult::Unsat);
//! ```

pub mod cnf;
pub mod dimacs;
pub mod lia;
pub mod rational;
pub mod sat;
pub mod simplex;
pub mod solver;
pub mod stats;
pub mod term;

pub use sat::{Lit, SatSolver};
pub use solver::{Model, SatResult, Solver};
pub use stats::SolverStats;
pub use term::{Sort, TermId, TermKind, TermManager};
