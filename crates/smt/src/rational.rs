//! Exact rational arithmetic for the simplex core.
//!
//! Numerator/denominator over `i128` with eager gcd reduction. The CEM and
//! switch-model encodings only use small coefficients (±1, small
//! constants), so `i128` headroom is ample; arithmetic panics on overflow
//! in debug builds and saturates deliberately nowhere — an overflow is a
//! bug, not an input condition.

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub};

/// An exact rational number, always kept in lowest terms with a positive
/// denominator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Rat {
    num: i128,
    den: i128, // > 0
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let t = a % b;
        a = b;
        b = t;
    }
    a.max(1)
}

impl Rat {
    pub const ZERO: Rat = Rat { num: 0, den: 1 };
    pub const ONE: Rat = Rat { num: 1, den: 1 };

    pub fn new(num: i128, den: i128) -> Rat {
        assert!(den != 0, "zero denominator");
        let sign = if den < 0 { -1 } else { 1 };
        let g = gcd(num, den);
        Rat {
            num: sign * num / g,
            den: sign * den / g,
        }
    }

    pub fn int(v: i64) -> Rat {
        Rat {
            num: v as i128,
            den: 1,
        }
    }

    pub fn is_integer(&self) -> bool {
        self.den == 1
    }

    pub fn is_zero(&self) -> bool {
        self.num == 0
    }

    pub fn is_negative(&self) -> bool {
        self.num < 0
    }

    pub fn is_positive(&self) -> bool {
        self.num > 0
    }

    /// Largest integer ≤ self.
    pub fn floor(&self) -> i64 {
        let q = self.num.div_euclid(self.den);
        i64::try_from(q).expect("floor out of i64 range")
    }

    /// Smallest integer ≥ self.
    pub fn ceil(&self) -> i64 {
        let q = -(-self.num).div_euclid(self.den);
        i64::try_from(q).expect("ceil out of i64 range")
    }

    /// Exact integer value; panics if not an integer.
    pub fn to_int(&self) -> i64 {
        assert!(self.is_integer(), "{self} is not an integer");
        i64::try_from(self.num).expect("value out of i64 range")
    }

    pub fn recip(&self) -> Rat {
        assert!(self.num != 0, "reciprocal of zero");
        Rat::new(self.den, self.num)
    }

    pub fn to_f64(&self) -> f64 {
        self.num as f64 / self.den as f64
    }
}

impl Add for Rat {
    type Output = Rat;
    fn add(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den + o.num * self.den, self.den * o.den)
    }
}

impl AddAssign for Rat {
    fn add_assign(&mut self, o: Rat) {
        *self = *self + o;
    }
}

impl Sub for Rat {
    type Output = Rat;
    fn sub(self, o: Rat) -> Rat {
        Rat::new(self.num * o.den - o.num * self.den, self.den * o.den)
    }
}

impl Mul for Rat {
    type Output = Rat;
    fn mul(self, o: Rat) -> Rat {
        Rat::new(self.num * o.num, self.den * o.den)
    }
}

impl Div for Rat {
    type Output = Rat;
    fn div(self, o: Rat) -> Rat {
        assert!(o.num != 0, "division by zero");
        Rat::new(self.num * o.den, self.den * o.num)
    }
}

impl Neg for Rat {
    type Output = Rat;
    fn neg(self) -> Rat {
        Rat {
            num: -self.num,
            den: self.den,
        }
    }
}

impl PartialOrd for Rat {
    fn partial_cmp(&self, o: &Rat) -> Option<Ordering> {
        Some(self.cmp(o))
    }
}

impl Ord for Rat {
    fn cmp(&self, o: &Rat) -> Ordering {
        (self.num * o.den).cmp(&(o.num * self.den))
    }
}

impl fmt::Display for Rat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den == 1 {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_normalizes() {
        assert_eq!(Rat::new(2, 4), Rat::new(1, 2));
        assert_eq!(Rat::new(-2, -4), Rat::new(1, 2));
        assert_eq!(Rat::new(2, -4), Rat::new(-1, 2));
        assert_eq!(Rat::new(0, 5), Rat::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Rat::new(1, 3);
        let b = Rat::new(1, 6);
        assert_eq!(a + b, Rat::new(1, 2));
        assert_eq!(a - b, Rat::new(1, 6));
        assert_eq!(a * b, Rat::new(1, 18));
        assert_eq!(a / b, Rat::int(2));
        assert_eq!(-a, Rat::new(-1, 3));
    }

    #[test]
    fn floor_ceil_on_negatives() {
        assert_eq!(Rat::new(-7, 2).floor(), -4);
        assert_eq!(Rat::new(-7, 2).ceil(), -3);
        assert_eq!(Rat::new(7, 2).floor(), 3);
        assert_eq!(Rat::new(7, 2).ceil(), 4);
        assert_eq!(Rat::int(5).floor(), 5);
        assert_eq!(Rat::int(5).ceil(), 5);
    }

    #[test]
    fn ordering() {
        assert!(Rat::new(1, 3) < Rat::new(1, 2));
        assert!(Rat::new(-1, 2) < Rat::ZERO);
        assert!(Rat::int(2) > Rat::new(3, 2));
    }

    #[test]
    fn integrality() {
        assert!(Rat::new(4, 2).is_integer());
        assert_eq!(Rat::new(4, 2).to_int(), 2);
        assert!(!Rat::new(1, 2).is_integer());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        Rat::new(1, 0);
    }
}
