//! Cross-validation of the full SMT stack against brute-force enumeration.
//!
//! Random small QF_LIA formulas (bounded integer variables, boolean
//! structure over linear atoms) are decided both by the lazy CDCL(T)
//! solver and by exhaustive enumeration of the variable domain. The
//! verdicts must agree, and every model the solver returns must evaluate
//! to true. This pins down soundness *and* completeness of the whole
//! pipeline (term normalization → Tseitin → CDCL → simplex → B&B) on a
//! space where ground truth is computable.

use fmml_smt::solver::SatResult;
use fmml_smt::{Solver, TermId};
use proptest::prelude::*;

/// A formula AST we can both encode and evaluate.
#[derive(Debug, Clone)]
enum F {
    Atom { coefs: Vec<i64>, rhs: i64 }, // Σ coefs·x ≤ rhs
    Not(Box<F>),
    And(Box<F>, Box<F>),
    Or(Box<F>, Box<F>),
}

fn arb_formula(num_vars: usize, depth: u32) -> impl Strategy<Value = F> {
    let atom = (prop::collection::vec(-3i64..=3, num_vars), -6i64..=6)
        .prop_map(|(coefs, rhs)| F::Atom { coefs, rhs });
    atom.prop_recursive(depth, 16, 2, |inner| {
        prop_oneof![
            inner.clone().prop_map(|f| F::Not(Box::new(f))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| F::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner).prop_map(|(a, b)| F::Or(Box::new(a), Box::new(b))),
        ]
    })
}

fn encode(f: &F, s: &mut Solver, vars: &[TermId]) -> TermId {
    match f {
        F::Atom { coefs, rhs } => {
            let terms: Vec<TermId> = coefs
                .iter()
                .zip(vars)
                .map(|(&c, &v)| s.mul_const(c, v))
                .collect();
            let sum = s.add(&terms);
            let r = s.int(*rhs);
            s.le(sum, r)
        }
        F::Not(x) => {
            let e = encode(x, s, vars);
            s.not(e)
        }
        F::And(a, b) => {
            let ea = encode(a, s, vars);
            let eb = encode(b, s, vars);
            s.and(&[ea, eb])
        }
        F::Or(a, b) => {
            let ea = encode(a, s, vars);
            let eb = encode(b, s, vars);
            s.or(&[ea, eb])
        }
    }
}

fn eval(f: &F, assignment: &[i64]) -> bool {
    match f {
        F::Atom { coefs, rhs } => {
            coefs
                .iter()
                .zip(assignment)
                .map(|(&c, &x)| c * x)
                .sum::<i64>()
                <= *rhs
        }
        F::Not(x) => !eval(x, assignment),
        F::And(a, b) => eval(a, assignment) && eval(b, assignment),
        F::Or(a, b) => eval(a, assignment) || eval(b, assignment),
    }
}

/// Exhaustively search the domain [-B, B]^n.
fn brute_force_sat(f: &F, num_vars: usize, bound: i64) -> bool {
    let mut assignment = vec![-bound; num_vars];
    loop {
        if eval(f, &assignment) {
            return true;
        }
        // Odometer increment.
        let mut i = 0;
        loop {
            if i == num_vars {
                return false;
            }
            assignment[i] += 1;
            if assignment[i] > bound {
                assignment[i] = -bound;
                i += 1;
            } else {
                break;
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn solver_agrees_with_brute_force(f in arb_formula(3, 3)) {
        const B: i64 = 2;
        let mut s = Solver::new();
        let vars: Vec<TermId> = (0..3).map(|i| s.int_var(&format!("x{i}"))).collect();
        // Domain bounds (same box the brute force searches).
        let lo = s.int(-B);
        let hi = s.int(B);
        for &v in &vars {
            let c1 = s.ge(v, lo);
            s.assert(c1);
            let c2 = s.le(v, hi);
            s.assert(c2);
        }
        let enc = encode(&f, &mut s, &vars);
        s.assert(enc);

        let expected = brute_force_sat(&f, 3, B);
        match s.check() {
            SatResult::Sat => {
                prop_assert!(expected, "solver sat, brute force unsat: {f:?}");
                // The model must actually satisfy the formula.
                let assignment: Vec<i64> = vars.iter().map(|&v| s.model_int(v)).collect();
                prop_assert!(
                    assignment.iter().all(|&x| (-B..=B).contains(&x)),
                    "model out of domain: {assignment:?}"
                );
                prop_assert!(eval(&f, &assignment), "model does not satisfy: {assignment:?} for {f:?}");
            }
            SatResult::Unsat => {
                prop_assert!(!expected, "solver unsat, brute force sat: {f:?}");
            }
            SatResult::Unknown => prop_assert!(false, "budget exhausted on a tiny formula"),
        }
    }
}
