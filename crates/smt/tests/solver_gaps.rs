//! Unit-test gaps backing the CEM solution cache's correctness story.
//!
//! The cache (`fmml_fm::cem::cache`) memoizes *solver verdicts*, so the
//! layers it short-circuits must be independently trustworthy:
//!
//! 1. **DIMACS round-trip** on generated CNFs — `dimacs::format` ⇄
//!    `dimacs::parse_clauses` is verbatim, and the round-tripped text
//!    decides identically to a solver fed the original clauses (and to
//!    brute-force enumeration of the ≤ 2⁶ assignments);
//! 2. **simplex vs brute-force rational enumeration** on ≤ 3-var LIA
//!    instances — feasible assignments are verified exactly in rational
//!    arithmetic; infeasibility verdicts are cross-checked against an
//!    exhaustive half-integer grid over the variable box;
//! 3. **`Budget::escalate`** — monotone in the factor, identity at 1,
//!    saturating instead of overflowing at the top of the range.

use fmml_smt::dimacs;
use fmml_smt::rational::Rat;
use fmml_smt::sat::SolveResult;
use fmml_smt::simplex::{Simplex, SpxResult};
use fmml_smt::solver::Budget;
use fmml_smt::{Lit, SatSolver};
use proptest::prelude::*;
use std::time::Duration;

// ---------------------------------------------------------------- DIMACS

/// Random CNF: up to 6 variables, up to 12 clauses of up to 4 literals
/// (empty clauses included — they must round-trip and force unsat).
fn arb_cnf() -> impl Strategy<Value = (usize, Vec<Vec<Lit>>)> {
    (1usize..=6).prop_flat_map(|nvars| {
        prop::collection::vec(
            prop::collection::vec((0..nvars as u32, 0u8..2), 0..4),
            0..12,
        )
        .prop_map(move |clauses| {
            let clauses: Vec<Vec<Lit>> = clauses
                .into_iter()
                .map(|c| {
                    c.into_iter()
                        .map(|(v, neg)| Lit::new(v, neg == 1))
                        .collect()
                })
                .collect();
            (nvars, clauses)
        })
    })
}

/// Exhaustively decide a CNF over its ≤ 2⁶ assignments.
fn brute_force_cnf(nvars: usize, clauses: &[Vec<Lit>]) -> bool {
    (0u64..1 << nvars).any(|bits| {
        clauses.iter().all(|clause| {
            clause.iter().any(|lit| {
                let val = bits >> lit.var() & 1 == 1;
                val != lit.is_neg()
            })
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn dimacs_round_trip_preserves_clauses_and_verdict(
        (nvars, clauses) in arb_cnf()
    ) {
        // Writer ⇄ parser is verbatim and idempotent.
        let text = dimacs::format(nvars, &clauses);
        let (n2, back) = match dimacs::parse_clauses(&text) {
            Ok(p) => p,
            Err(e) => return Err(format!("parse failed on {text:?}: {e}")),
        };
        prop_assert_eq!(n2, nvars, "var count changed: {} != {}", n2, nvars);
        prop_assert_eq!(
            &back, &clauses,
            "clauses changed over the round-trip:\n{}", text
        );
        prop_assert_eq!(
            dimacs::format(n2, &back), text.clone(),
            "format(parse(format)) is not a fixed point:\n{}", text
        );

        // The round-tripped text decides like the original clause list…
        let mut direct = SatSolver::new();
        for _ in 0..nvars {
            direct.new_var();
        }
        for c in &clauses {
            direct.add_clause(c);
        }
        let expect = direct.solve();
        let (mut parsed, _) = dimacs::parse(&text).expect("just formatted");
        let got = parsed.solve();
        prop_assert_eq!(got, expect, "verdict changed over round-trip:\n{}", text);

        // …and both agree with ground truth.
        let truth = brute_force_cnf(nvars, &clauses);
        prop_assert_eq!(
            got == SolveResult::Sat, truth,
            "solver {:?} vs brute force {} on:\n{}", got, truth, text
        );
    }
}

// --------------------------------------------------------------- simplex

/// One `lo ≤ Σ cᵢ·xᵢ ≤ lo + width` constraint with half-integer
/// coefficients.
#[derive(Debug, Clone)]
struct LinRow {
    /// Coefficient numerators; the common denominator is `den`.
    nums: Vec<i64>,
    den: i64,
    lo: i64,
    width: i64,
}

fn arb_rows() -> impl Strategy<Value = Vec<LinRow>> {
    prop::collection::vec(
        (
            prop::collection::vec(-3i64..=3, 3),
            1i64..=2,
            -8i64..=8,
            0i64..=6,
        )
            .prop_map(|(nums, den, lo, width)| LinRow {
                nums,
                den,
                lo,
                width,
            }),
        1..=3,
    )
}

/// Box bound for the 3 problem variables: xᵢ ∈ [-B, B].
const B: i64 = 3;

fn row_value(row: &LinRow, xs: &[Rat]) -> Rat {
    row.nums.iter().zip(xs).fold(Rat::ZERO, |acc, (&n, &x)| {
        acc + Rat::new(n as i128, row.den as i128) * x
    })
}

fn row_holds(row: &LinRow, xs: &[Rat]) -> bool {
    let v = row_value(row, xs);
    Rat::int(row.lo) <= v && v <= Rat::int(row.lo + row.width)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn simplex_agrees_with_rational_enumeration(rows in arb_rows()) {
        let mut spx = Simplex::new();
        let xs: Vec<_> = (0..3).map(|_| spx.new_var()).collect();
        let mut next_tag = 0usize;
        let mut tag = || {
            next_tag += 1;
            next_tag - 1
        };
        let mut infeasible: Option<Vec<usize>> = None;
        let mut note = |r: SpxResult| {
            if let (SpxResult::Infeasible(tags), None) = (r, infeasible.as_ref()) {
                infeasible = Some(tags);
            }
        };
        for &x in &xs {
            let r = spx.assert_lower(x, Rat::int(-B), tag());
            note(r);
            let r = spx.assert_upper(x, Rat::int(B), tag());
            note(r);
        }
        let mut slacks = Vec::new();
        for row in &rows {
            let def: Vec<_> = row
                .nums
                .iter()
                .zip(&xs)
                .map(|(&n, &x)| (x, Rat::new(n as i128, row.den as i128)))
                .collect();
            let s = spx.add_row(&def);
            slacks.push(s);
            let r = spx.assert_lower(s, Rat::int(row.lo), tag());
            note(r);
            let r = spx.assert_upper(s, Rat::int(row.lo + row.width), tag());
            note(r);
        }
        let verdict = match infeasible {
            Some(tags) => SpxResult::Infeasible(tags),
            None => spx.check(),
        };

        match verdict {
            SpxResult::Feasible => {
                // Exact rational witness check: box, row bounds, and the
                // tableau's row/definition identity.
                let vals: Vec<Rat> = xs.iter().map(|&x| spx.value(x)).collect();
                for (i, &v) in vals.iter().enumerate() {
                    prop_assert!(
                        Rat::int(-B) <= v && v <= Rat::int(B),
                        "x{i} = {v} out of box for {rows:?}"
                    );
                }
                for (row, &s) in rows.iter().zip(&slacks) {
                    prop_assert!(
                        row_holds(row, &vals),
                        "row {row:?} violated by {vals:?}"
                    );
                    prop_assert_eq!(
                        spx.value(s), row_value(row, &vals),
                        "slack desynced from definition on {:?}", row
                    );
                }
            }
            SpxResult::Infeasible(tags) => {
                prop_assert!(!tags.is_empty(), "empty conflict for {rows:?}");
                prop_assert!(
                    tags.iter().all(|&t| t < next_tag),
                    "unknown tag in {tags:?} (asserted {next_tag}) for {rows:?}"
                );
                // Completeness spot check: no half-integer grid point in
                // the box satisfies every row. (Half-integers cover every
                // denominator the coefficients can produce… not every
                // rational, but any hit here is a definite simplex bug.)
                for bits in 0..(4 * B as i128 + 1).pow(3) {
                    let mut k = bits;
                    let mut point = Vec::with_capacity(3);
                    for _ in 0..3 {
                        let step = k % (4 * B as i128 + 1);
                        k /= 4 * B as i128 + 1;
                        point.push(Rat::new(step - 2 * B as i128, 2));
                    }
                    prop_assert!(
                        !rows.iter().all(|row| row_holds(row, &point)),
                        "simplex said infeasible but {point:?} satisfies {rows:?}"
                    );
                }
            }
        }
    }
}

// ---------------------------------------------------------------- Budget

#[test]
fn escalate_is_monotone_in_the_factor() {
    for base in [Budget::tight(), Budget::default()] {
        let mut prev = base;
        for factor in 1..=6u32 {
            let cur = base.escalate(factor);
            assert!(cur.max_bb_nodes >= prev.max_bb_nodes, "factor {factor}");
            assert!(
                cur.max_sat_conflicts.unwrap() >= prev.max_sat_conflicts.unwrap(),
                "factor {factor}"
            );
            prev = cur;
        }
    }
}

#[test]
fn escalate_by_one_and_zero_are_identity() {
    let base = Budget {
        timeout: Some(Duration::from_millis(125)),
        max_sat_conflicts: Some(4321),
        max_bb_nodes: 999,
    };
    for factor in [0u32, 1] {
        let b = base.escalate(factor);
        assert_eq!(b.timeout, base.timeout, "factor {factor}");
        assert_eq!(b.max_sat_conflicts, base.max_sat_conflicts);
        assert_eq!(b.max_bb_nodes, base.max_bb_nodes);
    }
}

#[test]
fn escalate_scales_every_limit_and_saturates() {
    let base = Budget {
        timeout: Some(Duration::from_secs(2)),
        max_sat_conflicts: Some(50_000),
        max_bb_nodes: 10_000,
    };
    let b = base.escalate(4);
    assert_eq!(b.timeout, Some(Duration::from_secs(8)));
    assert_eq!(b.max_sat_conflicts, Some(200_000));
    assert_eq!(b.max_bb_nodes, 40_000);

    // Repeated escalation saturates instead of wrapping.
    let mut huge = Budget {
        timeout: None,
        max_sat_conflicts: Some(u64::MAX / 2),
        max_bb_nodes: u64::MAX / 2,
    };
    for _ in 0..4 {
        huge = huge.escalate(u32::MAX);
    }
    assert_eq!(huge.max_sat_conflicts, Some(u64::MAX));
    assert_eq!(huge.max_bb_nodes, u64::MAX);
    assert_eq!(huge.timeout, None, "absent limits stay absent");

    // An unbounded conflict budget stays unbounded.
    let unbounded = Budget {
        timeout: None,
        max_sat_conflicts: None,
        max_bb_nodes: 1,
    };
    assert_eq!(unbounded.escalate(7).max_sat_conflicts, None);
}
